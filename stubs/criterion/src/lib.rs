//! Offline stand-in for `criterion`. Runs each benchmark a fixed small
//! number of iterations and prints mean wall-clock time — enough to
//! keep `cargo bench` compiling and producing comparable numbers
//! without the real statistics engine.

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // One warm-up pass, then `sample_size` timed iterations.
    let mut warm = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    let mean_ns = b.elapsed_ns / b.iters as u128;
    println!("bench {label}: {} iters, mean {} ns/iter", b.iters, mean_ns);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
