//! Offline stand-in for `rand` covering the surface this workspace
//! uses: `SmallRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen_bool`, and `gen_ratio`. Deterministic SplitMix64 generator.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling; bias is negligible for a stub.
    let x = rng.next_u64();
    ((x as u128 * span as u128) >> 64) as u64
}

/// Types samplable from a uniform range (the pivot that lets integer
/// literal types infer from the surrounding expression, as with the
/// real crate's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = sample_below(rng, span as u64);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Range types usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_range(rng, start, end, true)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio: invalid ratio"
        );
        sample_below(self, denominator as u64) < numerator as u64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: simple, fast, full-period, never sticks (even at seed 0).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            assert_eq!(x, b.gen_range(-5i64..5));
        }
        let mut zero = SmallRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..4).map(|_| zero.next_u64()).collect();
        assert!(
            vals.windows(2).any(|w| w[0] != w[1]),
            "seed 0 must not stick"
        );
    }

    #[test]
    fn gen_bool_and_ratio_extremes() {
        let mut r = SmallRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_ratio(0, 10));
        assert!(r.gen_ratio(10, 10));
    }
}
