//! Offline stand-in for `parking_lot`: thin non-poisoning wrappers
//! around `std::sync` primitives.

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}
