//! Offline stand-in for `crossbeam`, covering the `deque` API used by
//! the runtime's work-stealing executor. Backed by a mutexed
//! `VecDeque` — correct, if not lock-free.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// LIFO pop from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// FIFO steal from the opposite end.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Steal, Worker};

    #[test]
    fn lifo_pop_fifo_steal() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }
}
