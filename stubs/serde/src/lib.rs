//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `Serialize` / `Deserialize` traits (with derive
//! macros), a `Serializer` bound for manual impls, and a JSON-like
//! [`Value`] tree as the data model. The real crates-io `serde` is not
//! vendorable in this build environment; `.cargo/config.toml` patches
//! `serde` to this implementation.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree. Maps preserve
/// insertion order so derived structs serialize fields in declaration
/// order (and output is byte-stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| __find(m, key))
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

/// Map-entry lookup used by derived `Deserialize` impls.
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Receives a completed [`Value`] tree. The associated-type shape
/// matches real serde closely enough that manual
/// `fn serialize<S: Serializer>` impls compile unchanged.
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Serializer that hands the value tree back.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;
    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

/// Types that can serialize themselves into the data model. Implement
/// either [`Serialize::to_value`] (what the derive generates) or
/// [`Serialize::serialize`] (manual impls delegating to another type).
pub trait Serialize {
    fn to_value(&self) -> Value {
        match self.serialize(ValueSerializer) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Types reconstructible from the data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Hook for absent map keys: `Option` yields `None`, everything
    /// else reports the missing field.
    fn from_missing(key: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{key}`")))
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_key: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut iter = items.iter();
                let out = ($(
                    $t::from_value(
                        iter.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+);
                if iter.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::Int(self.as_secs() as i64)),
            (
                "nanos".to_owned(),
                Value::Int(i64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("expected duration secs"))?;
        let nanos = value
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("expected duration nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

/// Case conversion used by `#[serde(rename_all = "snake_case")]`.
pub fn __snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}
