//! Offline stand-in for `serde_json`, backed by the stub `serde::Value`
//! tree. Provides `to_string` / `to_string_pretty` / `to_writer` /
//! `from_str` / `from_value` / `json!`-free construction via `Value`.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` gives the shortest representation that round-trips and
        // always keeps a decimal point or exponent (e.g. "2.0", "1e300"),
        // which is what keeps untagged Int/Float enums stable.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            let ch = if (0xd800..0xdc00).contains(&code) {
                                // surrogate pair
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("bad surrogate"))?;
                                    self.pos += 4;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.err("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("bad surrogate"))?;
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                b => {
                    // multi-byte UTF-8: copy the full sequence through
                    let len = if b >= 0xf0 {
                        4
                    } else if b >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("bad utf8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("bad utf8"))?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("{e}")))?;
    from_str(s)
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: Value = from_str("{\"a\": 1, \"b\": 2.5, \"c\": [true, null, \"x\\n\"]}").unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"].as_f64(), Some(2.5));
        assert_eq!(v["c"][2].as_str(), Some("x\n"));
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: Value = from_str("2.0").unwrap();
        assert_eq!(back, Value::Float(2.0));
    }
}
