//! Offline stand-in for `proptest`. Deterministic value generation
//! (no shrinking) behind the same `Strategy` / `proptest!` surface
//! this workspace uses.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x243f_6a88_85a3_08d3,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish sample in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure carried out of a `proptest!` case body by `prop_assert*`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::*;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strat: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { strat: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Depth-limited recursion: unrolls `recurse` `depth` times over
        /// the base strategy. No size tracking — depth alone bounds the
        /// generated trees, which is enough for deterministic coverage.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }
    }

    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strat.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        strat: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.strat.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

pub mod arbitrary {
    use super::strategy::{BoxedStrategy, Strategy};

    pub trait Arbitrary: Sized + 'static {
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            struct AnyBool;
            impl Strategy for AnyBool {
                type Value = bool;
                fn generate(&self, rng: &mut super::TestRng) -> bool {
                    rng.next_u64() & 1 == 1
                }
            }
            AnyBool.boxed()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    struct AnyInt;
                    impl Strategy for AnyInt {
                        type Value = $t;
                        fn generate(&self, rng: &mut super::TestRng) -> $t {
                            rng.next_u64() as $t
                        }
                    }
                    AnyInt.boxed()
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);
}

pub fn any<T: arbitrary::Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::Arbitrary;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {} of {} failed: {}", __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
