//! Derive macros for the offline `serde` stand-in. Parses the item
//! token stream by hand (no `syn`/`quote` in this build environment)
//! and generates `to_value` / `from_value` impls over the stub's
//! JSON-shaped `serde::Value` data model.
//!
//! Supported shapes: non-generic named structs, tuple structs, and
//! enums with unit / newtype / tuple / struct variants.
//! Supported attributes: `#[serde(untagged)]`, `#[serde(tag = "...")]`,
//! `#[serde(rename_all = "snake_case")]`, `#[serde(rename = "...")]`,
//! `#[serde(flatten)]`, `#[serde(default)]`,
//! `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct Opts {
    untagged: bool,
    tag: Option<String>,
    rename_all: Option<String>,
    rename: Option<String>,
    flatten: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Field {
    opts: Opts,
    name: String,
    ty: String,
}

enum VariantKind {
    Unit,
    Newtype(String),
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    opts: Opts,
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    opts: Opts,
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn strip_quotes(lit: &str) -> String {
    let t = lit.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        t[1..t.len() - 1].to_owned()
    } else {
        t.to_owned()
    }
}

/// Parse the comma-separated entries of one `#[serde(...)]` list.
fn parse_serde_list(stream: TokenStream, opts: &mut Opts) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let mut value: Option<String> = None;
        if i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == '=' {
                    i += 1;
                    if i < toks.len() {
                        value = Some(strip_quotes(&toks[i].to_string()));
                        i += 1;
                    }
                }
            }
        }
        match key.as_str() {
            "untagged" => opts.untagged = true,
            "tag" => opts.tag = value.clone(),
            "rename_all" => opts.rename_all = value.clone(),
            "rename" => opts.rename = value.clone(),
            "flatten" => opts.flatten = true,
            "default" => opts.default = true,
            "skip_serializing_if" => opts.skip_serializing_if = value.clone(),
            _ => {} // unknown/unsupported options are ignored
        }
        // skip to past the next comma
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
}

/// Consume leading `#[...]` attributes, folding `serde` options in.
fn parse_attrs(toks: &[TokenTree], i: &mut usize) -> Opts {
    let mut opts = Opts::default();
    while *i + 1 < toks.len() {
        let is_attr = matches!(
            (&toks[*i], &toks[*i + 1]),
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket
        );
        if !is_attr {
            break;
        }
        if let TokenTree::Group(g) = &toks[*i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(list)) = inner.get(1) {
                        parse_serde_list(list.stream(), &mut opts);
                    }
                }
            }
        }
        *i += 2;
    }
    opts
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Collect a type's tokens up to a top-level `,` (angle-bracket aware);
/// consumes the trailing comma if present.
fn collect_type(toks: &[TokenTree], i: &mut usize) -> String {
    let mut depth: i32 = 0;
    let mut ty: Vec<TokenTree> = Vec::new();
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    break;
                }
                _ => {}
            }
        }
        ty.push(toks[*i].clone());
        *i += 1;
    }
    ty.into_iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let opts = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // expect ':'
        i += 1;
        let ty = collect_type(&toks, &mut i);
        fields.push(Field { opts, name, ty });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut tys = Vec::new();
    while i < toks.len() {
        let _opts = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let ty = collect_type(&toks, &mut i);
        if !ty.is_empty() {
            tys.push(ty);
        }
    }
    tys
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let opts = parse_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = parse_tuple_fields(g.stream());
                i += 1;
                if tys.len() == 1 {
                    VariantKind::Newtype(tys.into_iter().next().unwrap())
                } else {
                    VariantKind::Tuple(tys)
                }
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { opts, name, kind });
        // consume trailing comma
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let opts = parse_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_owned()),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".to_owned()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generics on `{name}` unsupported"
            ));
        }
    }
    let body = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => return Err("expected enum body".to_owned()),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { opts, name, body })
}

// ---------------------------------------------------------------------
// Shared codegen helpers
// ---------------------------------------------------------------------

fn apply_case(opts: &Opts, container: &Opts, name: &str) -> String {
    if let Some(renamed) = &opts.rename {
        return renamed.clone();
    }
    match container.rename_all.as_deref() {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some("UPPERCASE") => name.to_ascii_uppercase(),
        _ => name.to_owned(),
    }
}

/// Push map entries for a struct's fields, reading from `{access}{name}`.
fn ser_fields_into(out: &mut String, fields: &[Field], self_prefix: bool) {
    for f in fields {
        let access = if self_prefix {
            format!("&self.{}", f.name)
        } else {
            f.name.clone()
        };
        let key = f.opts.rename.clone().unwrap_or_else(|| f.name.clone());
        let push = if f.opts.flatten {
            format!(
                "match ::serde::Serialize::to_value({access}) {{ \
                   ::serde::Value::Map(__e) => __m.extend(__e), \
                   __other => __m.push((\"{key}\".to_string(), __other)), \
                 }}\n"
            )
        } else {
            format!("__m.push((\"{key}\".to_string(), ::serde::Serialize::to_value({access})));\n")
        };
        if let Some(pred) = &f.opts.skip_serializing_if {
            out.push_str(&format!("if !({pred})({access}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
        }
    }
}

/// Emit field initializers reading from the map slice expr `__map`
/// (with the full value available as `__v` for flattened fields).
fn de_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let key = f.opts.rename.clone().unwrap_or_else(|| f.name.clone());
        let ty = &f.ty;
        if f.opts.flatten {
            out.push_str(&format!(
                "{name}: <{ty} as ::serde::Deserialize>::from_value(__v)?,\n",
                name = f.name
            ));
        } else if f.opts.default {
            out.push_str(&format!(
                "{name}: match ::serde::__find(__map, \"{key}\") {{ \
                   Some(__fv) => <{ty} as ::serde::Deserialize>::from_value(__fv)?, \
                   None => ::std::default::Default::default(), \
                 }},\n",
                name = f.name
            ));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::__find(__map, \"{key}\") {{ \
                   Some(__fv) => <{ty} as ::serde::Deserialize>::from_value(__fv)?, \
                   None => <{ty} as ::serde::Deserialize>::from_missing(\"{key}\")?, \
                 }},\n",
                name = f.name
            ));
        }
    }
    out
}

fn field_pattern(fields: &[Field]) -> String {
    let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
    names.join(", ")
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut b = String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            ser_fields_into(&mut b, fields, true);
            b.push_str("::serde::Value::Map(__m)\n");
            b
        }
        Body::TupleStruct(tys) if tys.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_owned()
        }
        Body::TupleStruct(tys) => {
            let items: Vec<String> = (0..tys.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vkey = apply_case(&v.opts, &item.opts, &v.name);
                let arm = if item.opts.untagged {
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{v} => ::serde::Value::Null,\n", v = v.name)
                        }
                        VariantKind::Newtype(_) => format!(
                            "{name}::{v}(__x) => ::serde::Serialize::to_value(__x),\n",
                            v = v.name
                        ),
                        VariantKind::Tuple(tys) => {
                            let binds: Vec<String> =
                                (0..tys.len()).map(|i| format!("__x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({binds}) => ::serde::Value::Seq(vec![{items}]),\n",
                                v = v.name,
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let mut b = String::from(
                                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                            );
                            ser_fields_into(&mut b, fields, false);
                            format!(
                                "{name}::{v} {{ {pat} }} => {{ {b} ::serde::Value::Map(__m) }}\n",
                                v = v.name,
                                pat = field_pattern(fields)
                            )
                        }
                    }
                } else if let Some(tag) = &item.opts.tag {
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{v} => ::serde::Value::Map(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{vkey}\".to_string()))]),\n",
                            v = v.name
                        ),
                        VariantKind::Struct(fields) => {
                            let mut b = format!(
                                "let mut __m: Vec<(String, ::serde::Value)> = vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{vkey}\".to_string()))];\n"
                            );
                            ser_fields_into(&mut b, fields, false);
                            format!(
                                "{name}::{v} {{ {pat} }} => {{ {b} ::serde::Value::Map(__m) }}\n",
                                v = v.name,
                                pat = field_pattern(fields)
                            )
                        }
                        _ => format!(
                            "{name}::{v}(..) => panic!(\"serde stub: internally tagged newtype/tuple variants unsupported\"),\n",
                            v = v.name
                        ),
                    }
                } else {
                    // externally tagged (serde default)
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(\"{vkey}\".to_string()),\n",
                            v = v.name
                        ),
                        VariantKind::Newtype(_) => format!(
                            "{name}::{v}(__x) => ::serde::Value::Map(vec![(\"{vkey}\".to_string(), ::serde::Serialize::to_value(__x))]),\n",
                            v = v.name
                        ),
                        VariantKind::Tuple(tys) => {
                            let binds: Vec<String> =
                                (0..tys.len()).map(|i| format!("__x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({binds}) => ::serde::Value::Map(vec![(\"{vkey}\".to_string(), ::serde::Value::Seq(vec![{items}]))]),\n",
                                v = v.name,
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let mut b = String::from(
                                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                            );
                            ser_fields_into(&mut b, fields, false);
                            format!(
                                "{name}::{v} {{ {pat} }} => {{ {b} ::serde::Value::Map(vec![(\"{vkey}\".to_string(), ::serde::Value::Map(__m))]) }}\n",
                                v = v.name,
                                pat = field_pattern(fields)
                            )
                        }
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => format!(
            "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = de_fields(fields)
        ),
        Body::TupleStruct(tys) if tys.len() == 1 => format!(
            "::std::result::Result::Ok({name}(<{ty} as ::serde::Deserialize>::from_value(__v)?))",
            ty = tys[0]
        ),
        Body::TupleStruct(tys) => {
            let mut b = format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n",
                n = tys.len()
            );
            let items: Vec<String> = tys
                .iter()
                .enumerate()
                .map(|(i, ty)| {
                    format!("<{ty} as ::serde::Deserialize>::from_value(&__items[{i}])?")
                })
                .collect();
            b.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            b
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            if item.opts.untagged {
                let mut b = String::new();
                for v in variants {
                    match &v.kind {
                        VariantKind::Unit => b.push_str(&format!(
                            "if __v.is_null() {{ return ::std::result::Result::Ok({name}::{v}); }}\n",
                            v = v.name
                        )),
                        VariantKind::Newtype(ty) => b.push_str(&format!(
                            "if let ::std::result::Result::Ok(__x) = <{ty} as ::serde::Deserialize>::from_value(__v) {{ return ::std::result::Result::Ok({name}::{v}(__x)); }}\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(tys) => b.push_str(&format!(
                            "if let ::std::result::Result::Ok(__x) = <({tys},) as ::serde::Deserialize>::from_value(__v) {{ let ({binds},) = __x; return ::std::result::Result::Ok({name}::{v}({binds})); }}\n",
                            tys = tys.join(", "),
                            binds = (0..tys.len())
                                .map(|i| format!("__x{i}"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            v = v.name
                        )),
                        VariantKind::Struct(fields) => b.push_str(&format!(
                            "if let Some(__map) = __v.as_map() {{\n\
                               let __try = || -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {fields} }})\n\
                               }};\n\
                               if let ::std::result::Result::Ok(__x) = __try() {{ return ::std::result::Result::Ok(__x); }}\n\
                             }}\n",
                            v = v.name,
                            fields = de_fields(fields)
                        )),
                    }
                }
                b.push_str(&format!(
                    "::std::result::Result::Err(::serde::Error::custom(\"no untagged variant of {name} matched\"))"
                ));
                b
            } else if let Some(tag) = &item.opts.tag {
                let mut arms = String::new();
                for v in variants {
                    let vkey = apply_case(&v.opts, &item.opts, &v.name);
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "\"{vkey}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantKind::Struct(fields) => arms.push_str(&format!(
                            "\"{vkey}\" => ::std::result::Result::Ok({name}::{v} {{ {fields} }}),\n",
                            v = v.name,
                            fields = de_fields(fields)
                        )),
                        _ => arms.push_str(&format!(
                            "\"{vkey}\" => ::std::result::Result::Err(::serde::Error::custom(\"unsupported variant shape\")),\n"
                        )),
                    }
                }
                format!(
                    "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     let __tag = ::serde::__find(__map, \"{tag}\").and_then(::serde::Value::as_str).ok_or_else(|| ::serde::Error::custom(\"missing tag `{tag}`\"))?;\n\
                     match __tag {{\n{arms}\
                       __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} tag `{{__other}}`\"))),\n\
                     }}"
                )
            } else {
                // externally tagged
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let vkey = apply_case(&v.opts, &item.opts, &v.name);
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{vkey}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantKind::Newtype(ty) => keyed_arms.push_str(&format!(
                            "\"{vkey}\" => ::std::result::Result::Ok({name}::{v}(<{ty} as ::serde::Deserialize>::from_value(__payload)?)),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(tys) => keyed_arms.push_str(&format!(
                            "\"{vkey}\" => {{ let ({binds},) = <({tys},) as ::serde::Deserialize>::from_value(__payload)?; ::std::result::Result::Ok({name}::{v}({binds})) }}\n",
                            tys = tys.join(", "),
                            binds = (0..tys.len())
                                .map(|i| format!("__x{i}"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            v = v.name
                        )),
                        VariantKind::Struct(fields) => keyed_arms.push_str(&format!(
                            "\"{vkey}\" => {{ let __v = __payload; let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected object payload\"))?; ::std::result::Result::Ok({name}::{v} {{ {fields} }}) }}\n",
                            v = v.name,
                            fields = de_fields(fields)
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                       ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                       }},\n\
                       ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __payload) = &__entries[0];\n\
                         match __key.as_str() {{\n{keyed_arms}\
                           __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                       }}\n\
                       _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

fn run(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().unwrap_or_else(|e| {
            format!("compile_error!(\"serde stub derive: {e}\");")
                .parse()
                .unwrap()
        }),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
