#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo clippy parsynt-serve incl. tests (-D warnings) =="
cargo clippy -p parsynt-serve --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

# The workspace test run includes the parsynt-serve suites: the HTTP
# parser unit tests, the handler/status-mapping unit tests, and the
# live-daemon e2e tests (ephemeral port; cache miss/hit, 504/422/400,
# restart persistence).
echo "== cargo test =="
cargo test --workspace -q

echo "== cargo test (fault injection) =="
cargo test --features fault-inject -q

echo "CI gate passed."
