#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo clippy parsynt-serve incl. tests (-D warnings) =="
cargo clippy -p parsynt-serve --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

# The workspace test run includes the parsynt-serve suites: the HTTP
# parser unit tests, the handler/status-mapping unit tests, and the
# live-daemon e2e tests (ephemeral port; cache miss/hit, 504/422/400,
# restart persistence).
echo "== cargo test =="
cargo test --workspace -q

echo "== cargo test (fault injection) =="
cargo test --features fault-inject -q

# Streaming soundness: the any-chunking property suite plus the
# fault-injected variant (seeded sweeps, snapshot prefix-equality).
echo "== cargo test streaming (incl. fault injection) =="
cargo test --test stream_props -q
cargo test --test stream_props --features fault-inject -q
cargo test -p parsynt-runtime stream -q
cargo test -p parsynt-core stream -q

# The nine pre-0.4 executor free functions are deprecated shims over
# `Executor`; workspace code must not call them. The definitions and
# their compatibility test live in crates/runtime/src/executor.rs,
# which is excluded. Method calls (`.run_sequential(`, `exec.run(`...)
# are fine — only free-function call syntax is gated.
echo "== deprecated executor free functions =="
# Six of the names are unique to the deprecated API and gated in any
# call position (not preceded by `.` or an identifier character). The
# other three (run_sequential, run_map_only, reduce_tree) collide with
# `Executor` methods and `core::exec` functions, so only their
# runtime-qualified paths are gated.
deprecated_free_fns='(^|[^.[:alnum:]_])(run_parallel|try_run_parallel|run_parallel_with_faults|try_run_map_only|run_map_only_with_faults|try_reduce_tree)[[:space:]]*\('
qualified_free_fns='(parsynt_)?runtime::(run_sequential|run_map_only|reduce_tree)[[:space:]]*\('
offenders=$( (grep -rnE "$deprecated_free_fns" --include='*.rs' crates src tests ;
              grep -rnE "$qualified_free_fns" --include='*.rs' crates src tests) \
                | grep -v 'crates/runtime/src/executor.rs' || true )
if [ -n "$offenders" ]; then
    echo "error: workspace code calls deprecated executor free functions:" >&2
    echo "$offenders" >&2
    exit 1
fi

echo "CI gate passed."
