//! Property-based agreement between the memoized interned evaluator
//! ([`parsynt_synth::intern`]) and the reference interpreter's
//! `eval_expr` — including on ill-typed and failing expressions, where
//! both sides must agree that evaluation fails (`None` vs `Err`). The
//! enumerator's observational-equivalence signatures depend on this
//! agreement being exact.

use parsynt_lang::ast::{BinOp, Expr, Sym, UnOp};
use parsynt_lang::interp::{eval_expr, Env};
use parsynt_lang::Value;
use parsynt_synth::{EvalCache, TermPool};
use proptest::prelude::*;

/// Environment with `Sym(0)`/`Sym(1)` ints, `Sym(2)` a sequence, and
/// `Sym(3)` a bool; `Sym(9)` is deliberately left unbound.
fn env_with(x: i64, y: i64, seq: &[i64], flag: bool) -> Env {
    let p = parsynt_lang::parse(
        "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
    )
    .unwrap();
    let mut env = Env::for_program(&p);
    env.set(Sym(0), Value::Int(x));
    env.set(Sym(1), Value::Int(y));
    env.set(
        Sym(2),
        Value::Seq(seq.iter().map(|&n| Value::Int(n)).collect()),
    );
    env.set(Sym(3), Value::Bool(flag));
    env
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Arbitrary expression trees over the fixed vocabulary. Deliberately
/// untyped: ill-typed combinations (e.g. `flag + 1`, `len(x)`) are
/// valuable cases, because both evaluators must agree they fail.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-6i64..=6).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::var(Sym(0))),
        Just(Expr::var(Sym(1))),
        Just(Expr::var(Sym(2))),
        Just(Expr::var(Sym(3))),
        Just(Expr::var(Sym(9))), // unbound
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, x)| Expr::Unary(op, Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::index(b, i)),
            inner.clone().prop_map(|x| Expr::Len(Box::new(x))),
            inner.clone().prop_map(|x| Expr::Zeros(Box::new(x))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::ite(c, t, e)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interned, memoized evaluation agrees with `eval_expr` on every
    /// expression and environment — values and failures alike.
    #[test]
    fn interned_eval_agrees_with_interpreter(
        e in arb_expr(),
        x in -5i64..=5,
        y in -5i64..=5,
        seq in proptest::collection::vec(-5i64..=5, 0..4),
        flag in any::<bool>(),
    ) {
        let env = env_with(x, y, &seq, flag);
        let mut pool = TermPool::new();
        let mut cache = EvalCache::new(1);
        let id = pool.intern_expr(&e);
        let expected = eval_expr(&env, &e).ok();
        // First evaluation computes, second must serve from cache.
        prop_assert_eq!(cache.eval(&pool, 0, &env, id), expected.clone(), "fresh eval: {:?}", e);
        let misses = cache.misses();
        prop_assert_eq!(cache.eval(&pool, 0, &env, id), expected, "cached eval: {:?}", e);
        prop_assert_eq!(cache.misses(), misses, "second eval recomputed: {:?}", e);
    }

    /// Interning is faithful: reconstructing the tree gives back an
    /// identical expression.
    #[test]
    fn intern_round_trips(e in arb_expr()) {
        let mut pool = TermPool::new();
        let id = pool.intern_expr(&e);
        prop_assert_eq!(pool.to_expr(id), e);
    }
}
