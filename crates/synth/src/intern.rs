//! Hash-consed term interning with per-case memoized evaluation.
//!
//! The bottom-up enumerator builds candidate terms out of previously
//! retained subterms, so structurally shared subtrees appear in many
//! candidates. Interning every term into a [`TermPool`] gives each
//! distinct subtree a single [`TermId`]; an [`EvalCache`] then memoizes
//! the value of every `(probe case, term)` pair, so a shared subterm is
//! executed once per probe instead of once per candidate that contains
//! it.
//!
//! Evaluation semantics mirror [`parsynt_lang::interp::eval_expr`]
//! exactly (wrapping arithmetic, short-circuit `&&`/`||`, lazily
//! evaluated `?:` branches); evaluation *errors* (unbound variables,
//! out-of-bounds indexing, division by zero, …) are represented as
//! `None`, matching how the enumerator's observational signatures treat
//! them.

use parsynt_lang::ast::{BinOp, Expr, Sym, UnOp};
use parsynt_lang::interp::{eval_binop, Env};
use parsynt_lang::Value;
use std::collections::HashMap;

/// Identity of an interned term inside a [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// Position of the term's node in the pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One structural node. Children are [`TermId`]s, so a node is a flat,
/// `Copy` value and structurally equal subterms share storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(Sym),
    /// `base[idx]`.
    Index(TermId, TermId),
    /// `len(seq)`.
    Len(TermId),
    /// `zeros(n)`.
    Zeros(TermId),
    /// Unary operation.
    Unary(UnOp, TermId),
    /// Binary operation.
    Binary(BinOp, TermId, TermId),
    /// `cond ? then : else`.
    Ite(TermId, TermId, TermId),
}

// Distinct per-constructor seeds plus a SplitMix64-style finalizer give
// the content hash good avalanche behavior without pulling in an
// external hashing crate. The constants are fixed forever: the disk
// cache keys on these values, so changing them is a cache-format break
// (bump `parsynt_core::cache::CACHE_VERSION` if you must).
const SEED_INT: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_BOOL: u64 = 0xbf58_476d_1ce4_e5b9;
const SEED_VAR: u64 = 0x94d0_49bb_1331_11eb;
const SEED_INDEX: u64 = 0xd6e8_feb8_6659_fd93;
const SEED_LEN: u64 = 0xa076_1d64_78bd_642f;
const SEED_ZEROS: u64 = 0xe703_7ed1_a0b4_28db;
const SEED_UNARY: u64 = 0x8ebc_6af0_9c88_c6e3;
const SEED_BINARY: u64 = 0x5896_29d4_689e_3f0d;
const SEED_ITE: u64 = 0x1d8e_4e27_c47d_124f;

/// One SplitMix64 mixing round folding `word` into `acc`.
fn fold(acc: u64, word: u64) -> u64 {
    let mut z = acc.wrapping_add(word).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Explicit, order-independent operator codes. Matching on every
/// variant (no `_` arm) makes adding an operator a compile error here,
/// which is the reminder to think about cache-key compatibility.
fn binop_code(op: BinOp) -> u64 {
    match op {
        BinOp::Add => 1,
        BinOp::Sub => 2,
        BinOp::Mul => 3,
        BinOp::Div => 4,
        BinOp::Rem => 5,
        BinOp::Min => 6,
        BinOp::Max => 7,
        BinOp::And => 8,
        BinOp::Or => 9,
        BinOp::Eq => 10,
        BinOp::Ne => 11,
        BinOp::Lt => 12,
        BinOp::Le => 13,
        BinOp::Gt => 14,
        BinOp::Ge => 15,
    }
}

fn unop_code(op: UnOp) -> u64 {
    match op {
        UnOp::Neg => 1,
        UnOp::Not => 2,
    }
}

/// A hash-consing pool: each distinct [`Node`] is stored once and
/// addressed by its [`TermId`].
#[derive(Debug, Default)]
pub struct TermPool {
    nodes: Vec<Node>,
    ids: HashMap<Node, TermId>,
    hits: u64,
}

impl TermPool {
    /// An empty pool.
    pub fn new() -> Self {
        TermPool::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// How many `intern` calls found an existing node (structural
    /// sharing actually exploited).
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }

    /// The node behind `id`.
    pub fn node(&self, id: TermId) -> Node {
        self.nodes[id.index()]
    }

    /// Intern a node, returning the id of the existing copy if one is
    /// already present.
    pub fn intern(&mut self, node: Node) -> TermId {
        if let Some(&id) = self.ids.get(&node) {
            self.hits += 1;
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("term pool overflow"));
        self.nodes.push(node);
        self.ids.insert(node, id);
        id
    }

    /// Intern a whole expression tree bottom-up.
    pub fn intern_expr(&mut self, e: &Expr) -> TermId {
        let node = match e {
            Expr::Int(n) => Node::Int(*n),
            Expr::Bool(b) => Node::Bool(*b),
            Expr::Var(s) => Node::Var(*s),
            Expr::Index(base, idx) => {
                let b = self.intern_expr(base);
                let i = self.intern_expr(idx);
                Node::Index(b, i)
            }
            Expr::Len(inner) => {
                let x = self.intern_expr(inner);
                Node::Len(x)
            }
            Expr::Zeros(n) => {
                let x = self.intern_expr(n);
                Node::Zeros(x)
            }
            Expr::Unary(op, inner) => {
                let x = self.intern_expr(inner);
                Node::Unary(*op, x)
            }
            Expr::Binary(op, a, b) => {
                let x = self.intern_expr(a);
                let y = self.intern_expr(b);
                Node::Binary(*op, x, y)
            }
            Expr::Ite(c, t, e2) => {
                let c = self.intern_expr(c);
                let t = self.intern_expr(t);
                let e2 = self.intern_expr(e2);
                Node::Ite(c, t, e2)
            }
        };
        self.intern(node)
    }

    /// Stable 64-bit content hash of the term behind `id`.
    ///
    /// The hash depends only on the term's *structure* — node kinds,
    /// operators, literals, and symbol numbers — never on interning
    /// order, pool layout, or platform. Two pools that interned the
    /// same tree through any insertion history produce the same value,
    /// which is what makes it usable as a content-addressed cache key
    /// that survives process restarts.
    pub fn content_hash(&self, id: TermId) -> u64 {
        // Memoize per call: terms are DAG-shaped, so shared subtrees
        // would otherwise be rehashed once per parent.
        let mut memo: HashMap<TermId, u64> = HashMap::new();
        self.content_hash_memo(id, &mut memo)
    }

    fn content_hash_memo(&self, id: TermId, memo: &mut HashMap<TermId, u64>) -> u64 {
        if let Some(&h) = memo.get(&id) {
            return h;
        }
        let h = match self.node(id) {
            Node::Int(n) => fold(fold(SEED_INT, 0), n as u64),
            Node::Bool(b) => fold(fold(SEED_BOOL, 1), b as u64),
            Node::Var(s) => fold(fold(SEED_VAR, 2), s.0 as u64),
            Node::Index(b, i) => {
                let bh = self.content_hash_memo(b, memo);
                let ih = self.content_hash_memo(i, memo);
                fold(fold(fold(SEED_INDEX, 3), bh), ih)
            }
            Node::Len(x) => fold(fold(SEED_LEN, 4), self.content_hash_memo(x, memo)),
            Node::Zeros(x) => fold(fold(SEED_ZEROS, 5), self.content_hash_memo(x, memo)),
            Node::Unary(op, x) => {
                let xh = self.content_hash_memo(x, memo);
                fold(fold(fold(SEED_UNARY, 6), unop_code(op)), xh)
            }
            Node::Binary(op, a, b) => {
                let ah = self.content_hash_memo(a, memo);
                let bh = self.content_hash_memo(b, memo);
                fold(fold(fold(fold(SEED_BINARY, 7), binop_code(op)), ah), bh)
            }
            Node::Ite(c, t, e) => {
                let ch = self.content_hash_memo(c, memo);
                let th = self.content_hash_memo(t, memo);
                let eh = self.content_hash_memo(e, memo);
                fold(fold(fold(fold(SEED_ITE, 8), ch), th), eh)
            }
        };
        memo.insert(id, h);
        h
    }

    /// Reconstruct the expression tree behind `id`.
    pub fn to_expr(&self, id: TermId) -> Expr {
        match self.node(id) {
            Node::Int(n) => Expr::Int(n),
            Node::Bool(b) => Expr::Bool(b),
            Node::Var(s) => Expr::Var(s),
            Node::Index(b, i) => Expr::Index(Box::new(self.to_expr(b)), Box::new(self.to_expr(i))),
            Node::Len(x) => Expr::Len(Box::new(self.to_expr(x))),
            Node::Zeros(x) => Expr::Zeros(Box::new(self.to_expr(x))),
            Node::Unary(op, x) => Expr::Unary(op, Box::new(self.to_expr(x))),
            Node::Binary(op, a, b) => {
                Expr::Binary(op, Box::new(self.to_expr(a)), Box::new(self.to_expr(b)))
            }
            Node::Ite(c, t, e) => Expr::Ite(
                Box::new(self.to_expr(c)),
                Box::new(self.to_expr(t)),
                Box::new(self.to_expr(e)),
            ),
        }
    }
}

/// Memoized evaluation of interned terms over a fixed set of probe
/// cases. Case `k` must always be paired with the same environment —
/// the cache trusts the caller on this, exactly like the enumerator's
/// probe list, whose indices it mirrors.
///
/// The cache is bounded: once the total number of stored entries
/// (across all cases) exceeds its capacity, every row is cleared
/// wholesale and an eviction is counted. Wholesale clearing keeps the
/// common path branch-free (no per-entry LRU bookkeeping) and is safe
/// because entries are pure memoization — the next lookup recomputes.
#[derive(Debug)]
pub struct EvalCache {
    /// `slots[case][term]`: `None` = not yet computed, `Some(None)` =
    /// evaluation failed, `Some(Some(v))` = evaluated to `v`.
    slots: Vec<Vec<Option<Option<Value>>>>,
    hits: u64,
    misses: u64,
    /// Entries currently stored across all rows.
    stored: usize,
    /// Stored-entry bound that triggers a wholesale clear.
    capacity: usize,
    evictions: u64,
}

/// Default bound on stored cache entries, across all probe cases.
/// Sized for the enumerator's worst case (`max_terms = 60_000` retained
/// terms × ~30 probes ≈ 1.8M lookups of mostly-small values) while
/// capping memory at low hundreds of MB even for sequence-valued terms.
const DEFAULT_EVAL_CACHE_CAPACITY: usize = 2_000_000;

impl EvalCache {
    /// A cache over `cases` probe environments with the default
    /// capacity bound.
    pub fn new(cases: usize) -> Self {
        EvalCache::with_capacity(cases, DEFAULT_EVAL_CACHE_CAPACITY)
    }

    /// A cache over `cases` probe environments holding at most
    /// `capacity` entries before a wholesale clear (clamped to ≥ 1).
    pub fn with_capacity(cases: usize, capacity: usize) -> Self {
        EvalCache {
            slots: vec![Vec::new(); cases],
            hits: 0,
            misses: 0,
            stored: 0,
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Memoized lookups that found a cached value.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to evaluate the term.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Times the cache overflowed its capacity and was cleared.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries currently stored across all cases.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Evaluate `id` in probe case `case` with environment `env`,
    /// memoizing the result. `None` means evaluation failed (matching
    /// `eval_expr(env, e).ok()`).
    pub fn eval(&mut self, pool: &TermPool, case: usize, env: &Env, id: TermId) -> Option<Value> {
        if let Some(cached) = self.slots[case].get(id.index()).and_then(Clone::clone) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let value = self.compute(pool, case, env, pool.node(id));
        if self.stored >= self.capacity {
            for row in &mut self.slots {
                row.clear();
                row.shrink_to_fit();
            }
            self.stored = 0;
            self.evictions += 1;
        }
        let row = &mut self.slots[case];
        if row.len() <= id.index() {
            row.resize(id.index() + 1, None);
        }
        if row[id.index()].is_none() {
            self.stored += 1;
        }
        row[id.index()] = Some(value.clone());
        value
    }

    fn compute(&mut self, pool: &TermPool, case: usize, env: &Env, node: Node) -> Option<Value> {
        match node {
            Node::Int(n) => Some(Value::Int(n)),
            Node::Bool(b) => Some(Value::Bool(b)),
            Node::Var(s) => env.get(s).ok().cloned(),
            Node::Index(b, i) => {
                let base = self.eval(pool, case, env, b)?;
                let idx = self.eval(pool, case, env, i)?.as_int()?;
                let items = base.as_seq()?;
                usize::try_from(idx)
                    .ok()
                    .and_then(|k| items.get(k))
                    .cloned()
            }
            Node::Len(x) => {
                let v = self.eval(pool, case, env, x)?;
                v.len().map(|n| Value::Int(n as i64))
            }
            Node::Zeros(x) => {
                let n = self.eval(pool, case, env, x)?.as_int()?;
                let n = usize::try_from(n).ok()?;
                Some(Value::Seq(vec![Value::Int(0); n]))
            }
            Node::Unary(op, x) => match (op, self.eval(pool, case, env, x)?) {
                (UnOp::Neg, Value::Int(n)) => Some(Value::Int(n.wrapping_neg())),
                (UnOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                _ => None,
            },
            Node::Binary(op, a, b) => {
                // Short-circuit boolean operators: a type error or
                // failure on the right operand must not leak through
                // when the left operand already decides the result.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let av = self.eval(pool, case, env, a)?.as_bool()?;
                    return match (op, av) {
                        (BinOp::And, false) => Some(Value::Bool(false)),
                        (BinOp::Or, true) => Some(Value::Bool(true)),
                        _ => self.eval(pool, case, env, b)?.as_bool().map(Value::Bool),
                    };
                }
                let av = self.eval(pool, case, env, a)?;
                let bv = self.eval(pool, case, env, b)?;
                eval_binop(op, &av, &bv).ok()
            }
            Node::Ite(c, t, e) => {
                if self.eval(pool, case, env, c)?.as_bool()? {
                    self.eval(pool, case, env, t)
                } else {
                    self.eval(pool, case, env, e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::interp::eval_expr;

    fn env_with(bindings: &[(u32, Value)]) -> Env {
        let p = parsynt_lang::parse(
            "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
        )
        .unwrap();
        let mut env = Env::for_program(&p);
        for (s, v) in bindings {
            env.set(Sym(*s), v.clone());
        }
        env
    }

    #[test]
    fn hash_consing_shares_structurally_equal_subterms() {
        let mut pool = TermPool::new();
        let x = Expr::var(Sym(0));
        let a = pool.intern_expr(&Expr::add(x.clone(), x.clone()));
        let b = pool.intern_expr(&Expr::add(x.clone(), x.clone()));
        assert_eq!(a, b);
        // `x`, `x + x` — the second `x` and the repeat interning are hits.
        assert_eq!(pool.len(), 2);
        assert!(pool.dedup_hits() >= 2);
    }

    #[test]
    fn to_expr_round_trips() {
        let mut pool = TermPool::new();
        let e = Expr::ite(
            Expr::bin(BinOp::Le, Expr::var(Sym(0)), Expr::int(3)),
            Expr::add(Expr::var(Sym(0)), Expr::int(1)),
            Expr::max(Expr::var(Sym(1)), Expr::int(0)),
        );
        let id = pool.intern_expr(&e);
        assert_eq!(pool.to_expr(id), e);
    }

    #[test]
    fn cached_eval_matches_interpreter_on_error_cases() {
        let env = env_with(&[(0, Value::Int(7)), (1, Value::Seq(vec![Value::Int(5)]))]);
        let exprs = [
            Expr::bin(BinOp::Div, Expr::var(Sym(0)), Expr::int(0)), // div by zero
            Expr::index(Expr::var(Sym(1)), Expr::int(9)),           // out of bounds
            Expr::var(Sym(3)),                                      // unbound
            Expr::and(Expr::Bool(false), Expr::var(Sym(3))),        // short-circuit hides error
            Expr::or(Expr::Bool(true), Expr::var(Sym(3))),
            Expr::ite(Expr::Bool(true), Expr::int(1), Expr::var(Sym(3))),
            Expr::Zeros(Box::new(Expr::int(-1))),
            Expr::Len(Box::new(Expr::var(Sym(1)))),
        ];
        let mut pool = TermPool::new();
        let mut cache = EvalCache::new(1);
        for e in &exprs {
            let id = pool.intern_expr(e);
            assert_eq!(
                cache.eval(&pool, 0, &env, id),
                eval_expr(&env, e).ok(),
                "mismatch on {e:?}"
            );
        }
    }

    #[test]
    fn second_eval_is_a_cache_hit() {
        let env = env_with(&[(0, Value::Int(2))]);
        let mut pool = TermPool::new();
        let mut cache = EvalCache::new(1);
        let id = pool.intern_expr(&Expr::add(Expr::var(Sym(0)), Expr::int(1)));
        assert_eq!(cache.eval(&pool, 0, &env, id), Some(Value::Int(3)));
        let misses = cache.misses();
        assert_eq!(cache.eval(&pool, 0, &env, id), Some(Value::Int(3)));
        assert_eq!(cache.misses(), misses, "no recomputation expected");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn overflow_clears_wholesale_and_counts_evictions() {
        let env = env_with(&[(0, Value::Int(2))]);
        let mut pool = TermPool::new();
        // Capacity 3: the fourth distinct stored entry triggers a clear.
        let mut cache = EvalCache::with_capacity(1, 3);
        let ids: Vec<TermId> = (0..5)
            .map(|n| pool.intern_expr(&Expr::add(Expr::var(Sym(0)), Expr::int(n))))
            .collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(
                cache.eval(&pool, 0, &env, *id),
                Some(Value::Int(2 + n as i64))
            );
        }
        assert!(cache.evictions() >= 1, "capacity 3 must evict by entry 5");
        assert!(cache.stored() <= 3);
        // Values survive eviction semantically: recomputation agrees.
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(
                cache.eval(&pool, 0, &env, *id),
                Some(Value::Int(2 + n as i64))
            );
        }
    }

    #[test]
    fn content_hash_is_pool_independent() {
        let e = Expr::ite(
            Expr::bin(BinOp::Le, Expr::var(Sym(0)), Expr::int(3)),
            Expr::add(Expr::var(Sym(0)), Expr::int(1)),
            Expr::max(Expr::var(Sym(1)), Expr::int(0)),
        );
        // Pool A interns the tree directly.
        let mut a = TermPool::new();
        let ida = a.intern_expr(&e);
        // Pool B interns unrelated garbage first, shifting every TermId.
        let mut b = TermPool::new();
        for n in 0..10 {
            b.intern_expr(&Expr::add(Expr::var(Sym(9)), Expr::int(n)));
        }
        let idb = b.intern_expr(&e);
        assert_ne!(ida, idb, "ids must differ for the test to be meaningful");
        assert_eq!(a.content_hash(ida), b.content_hash(idb));
    }

    #[test]
    fn content_hash_separates_distinct_terms() {
        let mut pool = TermPool::new();
        let exprs = [
            Expr::add(Expr::var(Sym(0)), Expr::int(1)),
            Expr::add(Expr::var(Sym(0)), Expr::int(2)),
            Expr::add(Expr::var(Sym(1)), Expr::int(1)),
            Expr::bin(BinOp::Sub, Expr::var(Sym(0)), Expr::int(1)),
            Expr::max(Expr::var(Sym(0)), Expr::int(1)),
            Expr::int(0),
            Expr::Bool(false),
            Expr::var(Sym(0)),
        ];
        let hashes: Vec<u64> = exprs
            .iter()
            .map(|e| {
                let id = pool.intern_expr(e);
                pool.content_hash(id)
            })
            .collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{:?} vs {:?}", exprs[i], exprs[j]);
            }
        }
    }

    #[test]
    fn content_hash_is_a_fixed_function() {
        // Pin one concrete value: the disk cache format depends on this
        // function never changing silently.
        let mut pool = TermPool::new();
        let id = pool.intern_expr(&Expr::add(Expr::var(Sym(0)), Expr::int(1)));
        let h = pool.content_hash(id);
        assert_eq!(h, pool.content_hash(id), "hash must be deterministic");
        assert_ne!(h, 0);
    }

    #[test]
    fn cases_are_cached_independently() {
        let e0 = env_with(&[(0, Value::Int(1))]);
        let e1 = env_with(&[(0, Value::Int(5))]);
        let mut pool = TermPool::new();
        let mut cache = EvalCache::new(2);
        let id = pool.intern_expr(&Expr::var(Sym(0)));
        assert_eq!(cache.eval(&pool, 0, &e0, id), Some(Value::Int(1)));
        assert_eq!(cache.eval(&pool, 1, &e1, id), Some(Value::Int(5)));
        assert_eq!(cache.eval(&pool, 0, &e0, id), Some(Value::Int(1)));
    }
}
