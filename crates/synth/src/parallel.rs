//! First-verified-solution-wins parallel candidate screening.
//!
//! [`screen_batch`] fans a slice of candidates out over a scoped thread
//! pool and returns the **minimum index** that passes the test — the
//! same candidate a sequential left-to-right scan would return, so
//! parallel synthesis stays byte-for-byte deterministic. Workers claim
//! indices in ascending order from a shared counter and cooperatively
//! cancel as soon as every index they could still claim is larger than
//! the best hit found so far.
//!
//! [`BatchScreen`] adapts this to the synthesizer's streaming
//! `check(&Expr) -> bool` protocol: candidates are buffered in
//! generation order and flushed in geometrically growing batches (small
//! first, so an early winner costs little wasted work; large later, so
//! thread startup amortizes over long fruitless searches).

use crate::solver::CaseSet;
use parsynt_lang::ast::{Expr, Stmt, Sym};
use parsynt_trace as trace;
use parsynt_trace::Deadline;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// What one [`screen_batch`] call observed.
#[derive(Debug)]
pub struct ScreenOutcome {
    /// Minimum passing index, if any candidate passed.
    pub winner: Option<usize>,
    /// Candidates actually tested, per worker.
    pub per_worker: Vec<u64>,
    /// Time between the first hit and the last worker stopping — how
    /// long cooperative cancellation took to drain the pool.
    pub cancel_latency_us: u64,
    /// Candidates whose test closure panicked (each is treated as
    /// rejected, so a panicking candidate can never become the winner).
    pub panics: u64,
}

/// Run `test` on one item, converting a panic into a rejection.
///
/// Screening closures evaluate synthesized candidate code through the
/// interpreter; a pathological candidate must only disqualify itself,
/// never tear down the worker pool (a panic crossing `thread::scope`
/// would abort the whole synthesis run).
fn test_isolated<T>(test: &(dyn Fn(&T) -> bool + Sync), item: &T, panics: &AtomicU64) -> bool {
    match catch_unwind(AssertUnwindSafe(|| test(item))) {
        Ok(passed) => passed,
        Err(_) => {
            panics.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Test every item and return the smallest passing index, sharding the
/// work over `threads` scoped workers.
///
/// Determinism: workers claim indices in ascending order and only skip
/// an index when a *smaller* one has already passed, so every index
/// below the final winner is tested and the result equals a sequential
/// scan's. A panicking test rejects its candidate; an expired
/// `deadline` makes every worker stop at its next claim.
pub fn screen_batch<T: Sync>(
    threads: usize,
    items: &[T],
    test: &(dyn Fn(&T) -> bool + Sync),
) -> ScreenOutcome {
    screen_batch_deadline(threads, items, &Deadline::none(), test)
}

/// [`screen_batch`] with a cooperative wall-clock deadline.
pub fn screen_batch_deadline<T: Sync>(
    threads: usize,
    items: &[T],
    deadline: &Deadline,
    test: &(dyn Fn(&T) -> bool + Sync),
) -> ScreenOutcome {
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    let panics = AtomicU64::new(0);
    if threads <= 1 {
        let mut tested = 0u64;
        for (i, item) in items.iter().enumerate() {
            if deadline.is_expired() {
                break;
            }
            tested += 1;
            if test_isolated(test, item, &panics) {
                return ScreenOutcome {
                    winner: Some(i),
                    per_worker: vec![tested],
                    cancel_latency_us: 0,
                    panics: panics.into_inner(),
                };
            }
        }
        return ScreenOutcome {
            winner: None,
            per_worker: vec![tested],
            cancel_latency_us: 0,
            panics: panics.into_inner(),
        };
    }

    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    let counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let first_win_us = AtomicU64::new(u64::MAX);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for tally in &counts {
            let (next, best, first_win_us, started) = (&next, &best, &first_win_us, &started);
            let panics = &panics;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // `next` is monotone, so once a claimed index exceeds
                // the best hit every later claim will too: stop.
                if i > best.load(Ordering::Acquire) {
                    break;
                }
                if deadline.is_expired() {
                    break;
                }
                tally.fetch_add(1, Ordering::Relaxed);
                if test_isolated(test, &items[i], panics) {
                    best.fetch_min(i, Ordering::AcqRel);
                    first_win_us.fetch_min(
                        u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                        Ordering::Relaxed,
                    );
                }
            });
        }
    });
    let total_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let win = best.load(Ordering::Acquire);
    ScreenOutcome {
        winner: (win != usize::MAX).then_some(win),
        per_worker: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        cancel_latency_us: if win != usize::MAX {
            total_us.saturating_sub(first_win_us.load(Ordering::Relaxed))
        } else {
            0
        },
        panics: panics.into_inner(),
    }
}

/// Streaming adapter between a sequential candidate generator and
/// [`screen_batch`].
///
/// The generator offers candidates one at a time (in its deterministic
/// order); the screen buffers them and flushes batches to the pool.
/// Because batches are screened in offer order and a flush returns the
/// minimum passing index, the recorded winner is exactly the candidate
/// the sequential path would have accepted first.
pub struct BatchScreen<'a> {
    threads: usize,
    batch_cap: usize,
    pending: Vec<Expr>,
    winner: Option<Expr>,
    cases: &'a CaseSet,
    target: Sym,
    build: &'a (dyn Fn(&Expr) -> Stmt + Sync),
    per_worker: Vec<u64>,
    flushes: u64,
    cancel_latency_us: u64,
    panics: u64,
    deadline: Deadline,
}

/// First flush after this many candidates per worker; doubles per flush.
const INITIAL_BATCH_PER_THREAD: usize = 4;
/// Batch growth ceiling.
const MAX_BATCH: usize = 4096;

impl<'a> BatchScreen<'a> {
    /// A screen testing candidates with
    /// [`CaseSet::accepts_pure`]`(&[build(e)], target)` on `threads`
    /// workers.
    pub fn new(
        threads: usize,
        cases: &'a CaseSet,
        target: Sym,
        build: &'a (dyn Fn(&Expr) -> Stmt + Sync),
    ) -> Self {
        let threads = threads.max(1);
        BatchScreen {
            threads,
            batch_cap: (threads * INITIAL_BATCH_PER_THREAD).min(MAX_BATCH),
            pending: Vec::new(),
            winner: None,
            cases,
            target,
            build,
            per_worker: vec![0; threads],
            flushes: 0,
            cancel_latency_us: 0,
            panics: 0,
            deadline: Deadline::none(),
        }
    }

    /// Attach a wall-clock deadline: once expired, [`BatchScreen::offer`]
    /// tells the generator to stop and the tail is never flushed.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Offer the next candidate. Returns `true` once a winner is known
    /// (the generator should stop and the caller read it from
    /// [`BatchScreen::finish`]) or the deadline has expired (the caller
    /// distinguishes the two by checking the deadline).
    pub fn offer(&mut self, e: &Expr) -> bool {
        if self.winner.is_some() {
            return true;
        }
        if self.deadline.is_expired() {
            return true;
        }
        self.pending.push(e.clone());
        if self.pending.len() >= self.batch_cap {
            self.flush();
            self.batch_cap = (self.batch_cap * 2).min(MAX_BATCH);
        }
        self.winner.is_some()
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let (cases, target, build) = (self.cases, self.target, self.build);
        let outcome =
            screen_batch_deadline(self.threads, &self.pending, &self.deadline, &|e: &Expr| {
                cases.accepts_pure(&[build(e)], target)
            });
        for (total, tested) in self.per_worker.iter_mut().zip(&outcome.per_worker) {
            *total += tested;
        }
        self.flushes += 1;
        self.cancel_latency_us += outcome.cancel_latency_us;
        self.panics += outcome.panics;
        if let Some(i) = outcome.winner {
            self.winner = Some(self.pending[i].clone());
        }
        self.pending.clear();
    }

    /// Flush any buffered candidates and return the winning expression,
    /// emitting the `synthesize` screening counters (the workers
    /// themselves cannot: the ambient tracer is thread-local to the
    /// synthesis thread). A screen whose deadline expired skips the
    /// tail flush and returns `None` immediately.
    pub fn finish(mut self) -> Option<Expr> {
        if self.winner.is_none() && !self.deadline.is_expired() {
            self.flush();
        }
        let screened: u64 = self.per_worker.iter().sum();
        if trace::enabled() && self.panics > 0 {
            trace::counter("synthesize", "screen_panic", self.panics);
        }
        if trace::enabled() && screened > 0 {
            trace::counter("synthesize", "par_screened", screened);
            for (worker, tested) in self.per_worker.iter().enumerate() {
                if *tested > 0 {
                    trace::point(
                        "synthesize",
                        "screen_worker",
                        &[("worker", worker.into()), ("screened", (*tested).into())],
                    );
                }
            }
            trace::point(
                "synthesize",
                "parallel_screen",
                &[
                    ("workers", self.threads.into()),
                    ("flushes", self.flushes.into()),
                    ("screened", screened.into()),
                    ("cancel_latency_us", self.cancel_latency_us.into()),
                    ("winner", self.winner.is_some().into()),
                ],
            );
        }
        self.winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Case;
    use parsynt_lang::interp::{Env, StateVec};
    use parsynt_lang::Value;

    #[test]
    fn screen_batch_returns_minimum_passing_index() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            let out = screen_batch(threads, &items, &|i: &usize| *i % 7 == 0 && *i >= 91);
            assert_eq!(out.winner, Some(91), "threads = {threads}");
            assert_eq!(out.per_worker.len(), threads);
        }
    }

    #[test]
    fn screen_batch_handles_no_winner_and_empty_input() {
        let items: Vec<usize> = (0..64).collect();
        let out = screen_batch(4, &items, &|_| false);
        assert_eq!(out.winner, None);
        assert_eq!(out.per_worker.iter().sum::<u64>(), 64);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(screen_batch(4, &empty, &|_| true).winner, None);
    }

    #[test]
    fn screen_batch_all_pass_picks_index_zero() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [2, 4] {
            assert_eq!(screen_batch(threads, &items, &|_| true).winner, Some(0));
        }
    }

    #[test]
    fn batch_screen_finds_the_first_sequential_winner() {
        // One case: `w` must end up 5; candidates are constants.
        let p = parsynt_lang::parse(
            "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
        )
        .unwrap();
        let w = p.sym("w").unwrap();
        let case = Case {
            env: Env::for_program(&p),
            expected: StateVec::new(vec![(w, Value::Int(5))]),
        };
        let cases = CaseSet::new(vec![case], Vec::new());
        let build = |e: &Expr| Stmt::Assign {
            target: parsynt_lang::ast::LValue::var(w),
            value: e.clone(),
        };
        let mut screen = BatchScreen::new(4, &cases, w, &build);
        let mut stopped_at = None;
        for n in 0..200 {
            // 5 and 5+0-style equivalents: the first hit is `5` itself.
            if screen.offer(&Expr::int(n)) {
                stopped_at = Some(n);
                break;
            }
        }
        let winner = screen.finish().expect("a constant matches");
        assert_eq!(winner, Expr::int(5));
        // The generator was cancelled at a batch boundary at or after 5.
        assert!(stopped_at.is_none() || stopped_at.unwrap() >= 5);
    }

    #[test]
    fn batch_screen_flushes_the_tail_on_finish() {
        let p = parsynt_lang::parse(
            "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
        )
        .unwrap();
        let w = p.sym("w").unwrap();
        let case = Case {
            env: Env::for_program(&p),
            expected: StateVec::new(vec![(w, Value::Int(3))]),
        };
        let cases = CaseSet::new(vec![case], Vec::new());
        let build = |e: &Expr| Stmt::Assign {
            target: parsynt_lang::ast::LValue::var(w),
            value: e.clone(),
        };
        let mut screen = BatchScreen::new(4, &cases, w, &build);
        // Fewer candidates than the first batch boundary: nothing
        // flushes until `finish`.
        for n in 0..3 {
            assert!(!screen.offer(&Expr::int(n)));
        }
        assert_eq!(screen.finish(), None);

        let mut screen = BatchScreen::new(4, &cases, w, &build);
        for n in 0..3 {
            screen.offer(&Expr::int(n));
        }
        screen.offer(&Expr::int(3));
        assert_eq!(screen.finish(), Some(Expr::int(3)));
    }
}
