//! Post-synthesis cleanup of joins and merges: constant folding and
//! unit simplification over every expression, so the reported operators
//! read like hand-written code (`s && true` → `s`, `x + 0` → `x`).
//! Simplification runs *before* final verification, so a simplifier bug
//! cannot silently change the operator's semantics.

use parsynt_lang::ast::{LValue, Stmt};
use parsynt_rewrite::rules::constant_fold;

/// Simplify every expression in a statement list.
pub fn simplify_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts.iter().map(simplify_stmt).collect()
}

fn simplify_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Let { name, ty, init } => Stmt::Let {
            name: *name,
            ty: ty.clone(),
            init: constant_fold(init),
        },
        Stmt::Assign { target, value } => Stmt::Assign {
            target: LValue {
                base: target.base,
                indices: target.indices.iter().map(constant_fold).collect(),
            },
            value: constant_fold(value),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: constant_fold(cond),
            then_branch: simplify_stmts(then_branch),
            else_branch: simplify_stmts(else_branch),
        },
        Stmt::For { var, bound, body } => Stmt::For {
            var: *var,
            bound: constant_fold(bound),
            body: simplify_stmts(body),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::{Expr, Interner};

    #[test]
    fn folds_units_inside_statements() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let stmt = Stmt::Assign {
            target: LValue::var(s),
            value: Expr::and(Expr::var(s), Expr::Bool(true)),
        };
        let out = simplify_stmts(&[stmt]);
        assert_eq!(
            out,
            vec![Stmt::Assign {
                target: LValue::var(s),
                value: Expr::var(s)
            }]
        );
    }

    #[test]
    fn recurses_into_loops_and_ifs() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let j = i.intern("j");
        let stmt = Stmt::For {
            var: j,
            bound: Expr::add(Expr::int(2), Expr::int(3)),
            body: vec![Stmt::If {
                cond: Expr::Bool(true),
                then_branch: vec![Stmt::Assign {
                    target: LValue::var(s),
                    value: Expr::add(Expr::var(s), Expr::int(0)),
                }],
                else_branch: vec![],
            }],
        };
        let out = simplify_stmts(&[stmt]);
        let Stmt::For { bound, body, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(bound, &Expr::Int(5));
        let Stmt::If { then_branch, .. } = &body[0] else {
            panic!()
        };
        let Stmt::Assign { value, .. } = &then_branch[0] else {
            panic!()
        };
        assert_eq!(value, &Expr::var(s));
    }
}
