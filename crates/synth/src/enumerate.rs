//! Bottom-up enumerative synthesis with observational-equivalence
//! pruning — the fallback grammar when no sketch matches (e.g. for
//! freshly lifted auxiliary accumulators that have no original update
//! statement to imitate).
//!
//! Terms are hash-consed into a [`TermPool`] as they are built, and
//! their observational signatures are computed through an [`EvalCache`]
//! — a composite term's signature costs one node evaluation per probe,
//! with all subterm values served from the cache instead of re-walking
//! the whole tree per candidate.

use crate::intern::{EvalCache, Node, TermId, TermPool};
use crate::vocab::VocabEntry;
use parsynt_lang::ast::{BinOp, Expr, UnOp};
use parsynt_lang::interp::Env;
use parsynt_lang::{Ty, Value};
use parsynt_trace as trace;
use parsynt_trace::Deadline;
use std::cell::Cell;
use std::collections::HashSet;

/// Counts enumeration work and reports it to the ambient trace on drop,
/// so every exit path of [`Enumerator::solve`] emits the
/// `synthesize.enum_candidates` / `synthesize.enum_pruned` counters.
#[derive(Default)]
struct EnumTraceGuard {
    /// Terms constructed (before junk/equivalence filtering).
    built: Cell<u64>,
    /// Terms retained as observationally distinct.
    retained: Cell<u64>,
}

impl EnumTraceGuard {
    fn built(&self) {
        self.built.set(self.built.get() + 1);
    }
    fn retained(&self) {
        self.retained.set(self.retained.get() + 1);
    }
}

impl Drop for EnumTraceGuard {
    fn drop(&mut self) {
        if trace::enabled() && self.built.get() > 0 {
            trace::counter("synthesize", "enum_candidates", self.built.get());
            trace::counter(
                "synthesize",
                "enum_pruned",
                self.built.get().saturating_sub(self.retained.get()),
            );
        }
    }
}

/// Configuration of the bottom-up enumerator.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Maximum term size (number of construction levels).
    pub max_size: usize,
    /// Cap on the total number of retained (observationally distinct)
    /// terms; the search stops when exceeded.
    pub max_terms: usize,
    /// Whether to build `c ? t : e` terms (expensive; off by default).
    pub with_ite: bool,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            max_size: 9,
            max_terms: 60_000,
            with_ite: false,
        }
    }
}

/// The observational signature of a term: its value on each probe
/// environment (`None` where evaluation fails).
type Signature = Vec<Option<Value>>;

#[derive(Debug, Clone)]
struct Term {
    id: TermId,
    ty: Ty,
}

/// Bottom-up enumerator over a fixed set of probe environments.
///
/// Terms are grown by size; two terms with identical signatures on the
/// probe set are considered equivalent and only the first is kept. Every
/// retained term of the target type is offered to the caller's `check`
/// (which typically re-verifies against the real, stronger oracle).
#[derive(Debug)]
pub struct Enumerator {
    probes: Vec<Env>,
    cfg: EnumConfig,
    deadline: Deadline,
}

impl Enumerator {
    /// Create an enumerator with the given probe environments.
    pub fn new(probes: Vec<Env>, cfg: EnumConfig) -> Self {
        Enumerator {
            probes,
            cfg,
            deadline: Deadline::none(),
        }
    }

    /// Attach a wall-clock deadline; enumeration stops (returning
    /// `None`) at the next construction step after expiry.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enumerate terms of `target_ty` built from `atoms`, in size order,
    /// returning the first accepted by `check`.
    pub fn solve(
        &self,
        atoms: &[VocabEntry],
        target_ty: &Ty,
        check: &mut dyn FnMut(&Expr) -> bool,
    ) -> Option<Expr> {
        let mut pool = TermPool::new();
        let mut cache = EvalCache::new(self.probes.len());
        let result = self.solve_interned(&mut pool, &mut cache, atoms, target_ty, check);
        if trace::enabled() && cache.misses() > 0 {
            trace::counter("synthesize", "eval_cache_hits", cache.hits());
            trace::counter("synthesize", "eval_cache_misses", cache.misses());
            if cache.evictions() > 0 {
                trace::counter("synthesize", "eval_cache_evictions", cache.evictions());
            }
        }
        result
    }

    fn solve_interned(
        &self,
        pool: &mut TermPool,
        cache: &mut EvalCache,
        atoms: &[VocabEntry],
        target_ty: &Ty,
        check: &mut dyn FnMut(&Expr) -> bool,
    ) -> Option<Expr> {
        let mut by_size: Vec<Vec<Term>> = vec![Vec::new()];
        let mut seen: HashSet<(Ty, Signature)> = HashSet::new();
        let mut total = 0usize;
        let counts = EnumTraceGuard::default();

        // Size 1: the atoms.
        let mut level1 = Vec::new();
        for atom in atoms {
            if self.deadline.is_expired() {
                return None;
            }
            counts.built();
            let id = pool.intern_expr(&atom.expr);
            let sig = self.signature(pool, cache, id);
            if seen.insert((atom.ty.clone(), sig)) {
                counts.retained();
                if atom.ty == *target_ty && check(&atom.expr) {
                    return Some(atom.expr.clone());
                }
                level1.push(Term {
                    id,
                    ty: atom.ty.clone(),
                });
                total += 1;
            }
        }
        by_size.push(level1);

        for size in 2..=self.cfg.max_size {
            let mut level: Vec<Term> = Vec::new();

            // Unary: !bool
            let prev = by_size[size - 1].clone();
            for t in prev {
                if self.deadline.is_expired() {
                    return None;
                }
                if t.ty == Ty::Bool {
                    let id = pool.intern(Node::Unary(UnOp::Not, t.id));
                    if let Some(found) = self.offer(
                        pool,
                        cache,
                        &counts,
                        target_ty,
                        id,
                        Ty::Bool,
                        &mut seen,
                        &mut level,
                        &mut total,
                        check,
                    ) {
                        return Some(found);
                    }
                }
            }

            // Binary combinations: sizes s1 + s2 = size - 1.
            for s1 in 1..size - 1 {
                let s2 = size - 1 - s1;
                if s2 < 1 || s2 >= by_size.len() || s1 >= by_size.len() {
                    continue;
                }
                for i1 in 0..by_size[s1].len() {
                    if self.deadline.is_expired() {
                        return None;
                    }
                    for i2 in 0..by_size[s2].len() {
                        let (a, b) = (by_size[s1][i1].clone(), by_size[s2][i2].clone());
                        let mut results: Vec<(Node, Ty)> = Vec::new();
                        if a.ty == Ty::Int && b.ty == Ty::Int {
                            for op in [BinOp::Add, BinOp::Sub, BinOp::Min, BinOp::Max] {
                                // Commutative ops: only one orientation
                                // (s1 <= s2 side handled by the loop).
                                if op != BinOp::Sub && s1 > s2 {
                                    continue;
                                }
                                results.push((Node::Binary(op, a.id, b.id), Ty::Int));
                            }
                            for op in [BinOp::Le, BinOp::Lt, BinOp::Eq, BinOp::Ge, BinOp::Gt] {
                                results.push((Node::Binary(op, a.id, b.id), Ty::Bool));
                            }
                        } else if a.ty == Ty::Bool && b.ty == Ty::Bool && s1 <= s2 {
                            results.push((Node::Binary(BinOp::And, a.id, b.id), Ty::Bool));
                            results.push((Node::Binary(BinOp::Or, a.id, b.id), Ty::Bool));
                        }
                        for (node, ty) in results {
                            let id = pool.intern(node);
                            if let Some(found) = self.offer(
                                pool, cache, &counts, target_ty, id, ty, &mut seen, &mut level,
                                &mut total, check,
                            ) {
                                return Some(found);
                            }
                            if total > self.cfg.max_terms {
                                return None;
                            }
                        }
                    }
                }
            }

            // Conditionals: cond(bool) ? t(int) : e(int).
            if self.cfg.with_ite && size >= 4 {
                for sc in 1..size - 2 {
                    for st in 1..size - 1 - sc {
                        let se = size - 1 - sc - st;
                        if se < 1
                            || sc >= by_size.len()
                            || st >= by_size.len()
                            || se >= by_size.len()
                        {
                            continue;
                        }
                        for c in 0..by_size[sc].len() {
                            if self.deadline.is_expired() {
                                return None;
                            }
                            for t in 0..by_size[st].len() {
                                for e2 in 0..by_size[se].len() {
                                    let (vc, vt, ve) = (
                                        by_size[sc][c].clone(),
                                        by_size[st][t].clone(),
                                        by_size[se][e2].clone(),
                                    );
                                    if vc.ty != Ty::Bool || vt.ty != Ty::Int || ve.ty != Ty::Int {
                                        continue;
                                    }
                                    let id = pool.intern(Node::Ite(vc.id, vt.id, ve.id));
                                    if let Some(found) = self.offer(
                                        pool,
                                        cache,
                                        &counts,
                                        target_ty,
                                        id,
                                        Ty::Int,
                                        &mut seen,
                                        &mut level,
                                        &mut total,
                                        check,
                                    ) {
                                        return Some(found);
                                    }
                                    if total > self.cfg.max_terms {
                                        return None;
                                    }
                                }
                            }
                        }
                    }
                }
            }

            by_size.push(level);
            if total > self.cfg.max_terms {
                break;
            }
        }
        None
    }

    fn signature(&self, pool: &TermPool, cache: &mut EvalCache, id: TermId) -> Signature {
        self.probes
            .iter()
            .enumerate()
            .map(|(case, env)| cache.eval(pool, case, env, id))
            .collect()
    }

    /// Filter a freshly built term (junk / observational duplicate),
    /// retain it, and — when it has the target type — materialize the
    /// expression and offer it to `check`.
    #[allow(clippy::too_many_arguments)] // threads the whole enumeration state
    fn offer(
        &self,
        pool: &TermPool,
        cache: &mut EvalCache,
        counts: &EnumTraceGuard,
        target_ty: &Ty,
        id: TermId,
        ty: Ty,
        seen: &mut HashSet<(Ty, Signature)>,
        level: &mut Vec<Term>,
        total: &mut usize,
        check: &mut dyn FnMut(&Expr) -> bool,
    ) -> Option<Expr> {
        counts.built();
        let sig = self.signature(pool, cache, id);
        // Terms that fail on every probe are junk.
        if sig.iter().all(Option::is_none) {
            return None;
        }
        if !seen.insert((ty.clone(), sig)) {
            return None;
        }
        counts.retained();
        let hit = if ty == *target_ty {
            let expr = pool.to_expr(id);
            check(&expr).then_some(expr)
        } else {
            None
        };
        level.push(Term { id, ty });
        *total += 1;
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::{Interner, Sym};
    use parsynt_lang::interp::eval_expr;

    /// Build probe environments binding the given symbols to the given
    /// per-probe values.
    fn probe_envs(nsyms: u32, rows: &[Vec<Value>]) -> Vec<Env> {
        rows.iter()
            .map(|row| {
                let mut env = Env::for_program(
                    &parsynt_lang::parse(
                        "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
                    )
                    .unwrap(),
                );
                for (k, v) in row.iter().enumerate() {
                    assert!((k as u32) < nsyms + 10);
                    env.set(Sym(k as u32), v.clone());
                }
                env
            })
            .collect()
    }

    #[test]
    fn finds_max_of_sum_and_var() {
        // Target: max(x + y, z). Probes chosen to pin it down.
        let mut i = Interner::new();
        let (x, y, z) = (i.intern("x"), i.intern("y"), i.intern("z"));
        let rows = vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(10)],
            vec![Value::Int(5), Value::Int(5), Value::Int(3)],
            vec![Value::Int(-1), Value::Int(-2), Value::Int(-10)],
        ];
        let expected = [Value::Int(10), Value::Int(10), Value::Int(-3)];
        let envs = probe_envs(3, &rows);
        let enumerator = Enumerator::new(envs.clone(), EnumConfig::default());
        let atoms = vec![
            VocabEntry::int(Expr::var(x)),
            VocabEntry::int(Expr::var(y)),
            VocabEntry::int(Expr::var(z)),
        ];
        let found = enumerator
            .solve(&atoms, &Ty::Int, &mut |e| {
                envs.iter()
                    .zip(&expected)
                    .all(|(env, want)| eval_expr(env, e).ok().as_ref() == Some(want))
            })
            .expect("solvable");
        // Check semantics (exact tree may be commuted).
        for (env, want) in envs.iter().zip(&expected) {
            assert_eq!(eval_expr(env, &found).unwrap(), *want);
        }
    }

    #[test]
    fn finds_boolean_guard() {
        // Target: b && (x >= 0).
        let mut i = Interner::new();
        let (b, x) = (i.intern("b"), i.intern("x"));
        let _ = (b, x);
        let rows = vec![
            vec![Value::Bool(true), Value::Int(3)],
            vec![Value::Bool(true), Value::Int(-1)],
            vec![Value::Bool(false), Value::Int(5)],
            vec![Value::Bool(false), Value::Int(-2)],
        ];
        let expected = [
            Value::Bool(true),
            Value::Bool(false),
            Value::Bool(false),
            Value::Bool(false),
        ];
        let envs = probe_envs(2, &rows);
        let enumerator = Enumerator::new(envs.clone(), EnumConfig::default());
        let atoms = vec![
            VocabEntry::boolean(Expr::Var(Sym(0))),
            VocabEntry::int(Expr::Var(Sym(1))),
            VocabEntry::int(Expr::int(0)),
        ];
        let found = enumerator
            .solve(&atoms, &Ty::Bool, &mut |e| {
                envs.iter()
                    .zip(&expected)
                    .all(|(env, want)| eval_expr(env, e).ok().as_ref() == Some(want))
            })
            .expect("solvable");
        for (env, want) in envs.iter().zip(&expected) {
            assert_eq!(eval_expr(env, &found).unwrap(), *want);
        }
    }

    #[test]
    fn dedups_observationally_equal_terms() {
        // x and x + 0 coincide on all probes; only one should be offered.
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let envs = probe_envs(1, &rows);
        let enumerator = Enumerator::new(
            envs,
            EnumConfig {
                max_size: 4,
                ..Default::default()
            },
        );
        let atoms = vec![
            VocabEntry::int(Expr::Var(Sym(0))),
            VocabEntry::int(Expr::int(0)),
        ];
        let mut offered = Vec::new();
        let _ = enumerator.solve(&atoms, &Ty::Int, &mut |e| {
            offered.push(e.clone());
            false
        });
        // No duplicate signatures: x offered once, x+0 suppressed.
        let var_like: Vec<_> = offered
            .iter()
            .filter(|e| {
                eval_expr(
                    &{
                        let mut env = Env::for_program(
                            &parsynt_lang::parse(
                                "input q : seq<int>; state w : int = 0; \
                             for i in 0 .. len(q) { w = 0; }",
                            )
                            .unwrap(),
                        );
                        env.set(Sym(0), Value::Int(7));
                        env
                    },
                    e,
                )
                .ok()
                    == Some(Value::Int(7))
            })
            .collect();
        assert_eq!(var_like.len(), 1);
    }

    #[test]
    fn ite_terms_require_opt_in() {
        // Target: c ? x : y — only reachable with `with_ite`.
        let rows = vec![
            vec![Value::Bool(true), Value::Int(3), Value::Int(7)],
            vec![Value::Bool(false), Value::Int(3), Value::Int(7)],
            vec![Value::Bool(true), Value::Int(-1), Value::Int(4)],
            vec![Value::Bool(false), Value::Int(-1), Value::Int(4)],
        ];
        let expected = [Value::Int(3), Value::Int(7), Value::Int(-1), Value::Int(4)];
        let envs = probe_envs(3, &rows);
        let atoms = vec![
            VocabEntry::boolean(Expr::Var(Sym(0))),
            VocabEntry::int(Expr::Var(Sym(1))),
            VocabEntry::int(Expr::Var(Sym(2))),
        ];
        let check = |envs: &[Env]| {
            let envs = envs.to_vec();
            let expected = expected.clone();
            move |e: &Expr| {
                envs.iter()
                    .zip(&expected)
                    .all(|(env, want)| eval_expr(env, e).ok().as_ref() == Some(want))
            }
        };
        // Without ite: a small size bound cannot express the selection.
        let without = Enumerator::new(
            envs.clone(),
            EnumConfig {
                max_size: 4,
                with_ite: false,
                ..Default::default()
            },
        );
        assert!(without.solve(&atoms, &Ty::Int, &mut check(&envs)).is_none());
        // With ite it is found at size 4.
        let with = Enumerator::new(
            envs.clone(),
            EnumConfig {
                max_size: 4,
                with_ite: true,
                ..Default::default()
            },
        );
        let found = with
            .solve(&atoms, &Ty::Int, &mut check(&envs))
            .expect("ite term found");
        assert!(matches!(found, Expr::Ite(..)));
    }

    #[test]
    fn unsolvable_returns_none() {
        let rows = vec![vec![Value::Int(1)]];
        let envs = probe_envs(1, &rows);
        let enumerator = Enumerator::new(
            envs,
            EnumConfig {
                max_size: 3,
                ..Default::default()
            },
        );
        let atoms = vec![VocabEntry::int(Expr::Var(Sym(0)))];
        assert!(enumerator.solve(&atoms, &Ty::Int, &mut |_| false).is_none());
    }
}
