//! The per-variable synthesis core shared by join (`⊙`) and merge (`⊚`)
//! synthesis — the two problems are "nearly identical" (§7.2), differing
//! only in vocabulary and example construction.
//!
//! Variables are solved one at a time in dependency order (the
//! incremental strategy of §9 "Implementation"): once the join component
//! for `D_i` is synthesized, only the components for `D_{i+1} \ D_i`
//! remain, and their candidates may reference the already-joined values.

use crate::enumerate::Enumerator;
use crate::parallel::BatchScreen;
use crate::report::{SynthConfig, VarStats};
use crate::sketch::{generic_sketches, holeify, solve_sketch_related, Sketch};
use crate::vocab::{compound_candidates, VocabEntry};
use parsynt_lang::ast::{Expr, LValue, Program, Stmt, Sym};
use parsynt_lang::interp::{exec_stmt, exec_stmts, Env, StateVec};
use parsynt_lang::{Ty, Value};
use parsynt_trace as trace;

/// One example the candidate operator must satisfy: an environment with
/// the operator's inputs bound, and the expected full output state.
#[derive(Debug, Clone)]
pub struct Case {
    /// Environment with vocabulary symbols bound and current state
    /// variables seeded.
    pub env: Env,
    /// Expected value of every state variable after the operator runs.
    pub expected: StateVec,
}

/// The search and verification example sets. Candidates must match every
/// search case; survivors are re-checked on the verify cases, and any
/// verify failure is promoted into the search set (the CEGIS loop).
#[derive(Debug, Clone, Default)]
pub struct CaseSet {
    /// Cases every candidate is screened against.
    pub search: Vec<Case>,
    /// Held-out cases for bounded verification.
    pub verify: Vec<Case>,
    /// How many verify failures have been promoted into the search set.
    pub promoted: usize,
}

impl CaseSet {
    /// Build from search and verify cases.
    pub fn new(search: Vec<Case>, verify: Vec<Case>) -> Self {
        CaseSet {
            search,
            verify,
            promoted: 0,
        }
    }

    fn check_stmts(case: &Case, stmts: &[Stmt], target: Sym) -> bool {
        let mut env = case.env.clone();
        if exec_stmts(&mut env, stmts).is_err() {
            return false;
        }
        match (env.get(target), case.expected.get(target)) {
            (Ok(got), Some(want)) => got == want,
            _ => false,
        }
    }

    /// CEGIS acceptance test for a candidate statement list.
    pub fn accepts(&mut self, stmts: &[Stmt], target: Sym) -> bool {
        if !self
            .search
            .iter()
            .all(|c| Self::check_stmts(c, stmts, target))
        {
            return false;
        }
        if let Some(pos) = self
            .verify
            .iter()
            .position(|c| !Self::check_stmts(c, stmts, target))
        {
            // Promote the counterexample into the search set (and out of
            // the verify set, so it is not re-checked twice per candidate).
            let bad = self.verify.swap_remove(pos);
            self.search.push(bad);
            self.promoted += 1;
            return false;
        }
        true
    }

    /// Side-effect-free acceptance test used by the parallel screen:
    /// the candidate must pass **every** case, search and verify alike.
    ///
    /// This returns the same verdict as [`CaseSet::accepts`] — the
    /// mutating version only *moves* cases between the two sets, never
    /// adds or removes one, so "passes all search cases and all verify
    /// cases" is invariant under promotion. Being `&self`, it is safe
    /// to call concurrently from worker threads.
    pub fn accepts_pure(&self, stmts: &[Stmt], target: Sym) -> bool {
        self.search
            .iter()
            .chain(self.verify.iter())
            .all(|c| Self::check_stmts(c, stmts, target))
    }

    /// Execute a solved statement into every case environment (so later
    /// variables see the joined values of earlier ones).
    pub fn commit(&mut self, stmt: &Stmt) {
        for case in self.search.iter_mut().chain(self.verify.iter_mut()) {
            let _ = exec_stmt(&mut case.env, stmt);
        }
    }
}

/// The evolving solver state.
pub struct VarSolver<'p> {
    program: &'p Program,
    /// Loop counter symbol for looped candidates.
    pub loop_var: Sym,
    /// Loop bound expression for looped candidates (e.g. `len(rec__l)`).
    pub loop_bound: Expr,
    /// Atoms available to scalar candidates.
    pub scalar_atoms: Vec<VocabEntry>,
    /// Atoms available inside loop bodies (scalar atoms + `x[j]`
    /// projections + the loop counter).
    pub loop_atoms: Vec<VocabEntry>,
    /// The example sets.
    pub cases: CaseSet,
    /// Loop-resident statements solved so far (executed before each
    /// in-loop candidate, sequentially per iteration).
    pub loop_body: Vec<Stmt>,
    /// Per-variable statistics.
    pub stats: Vec<VarStats>,
    /// Origin-relatedness oracle: for a hole that replaced variable `v`,
    /// candidates mentioning `related(v)` are tried first.
    pub related: std::rc::Rc<dyn Fn(Sym) -> Vec<Sym>>,
    cfg: SynthConfig,
}

impl<'p> VarSolver<'p> {
    /// Create a solver.
    #[allow(clippy::too_many_arguments)] // mirrors the operator's moving parts
    pub fn new(
        program: &'p Program,
        loop_var: Sym,
        loop_bound: Expr,
        scalar_atoms: Vec<VocabEntry>,
        loop_atoms: Vec<VocabEntry>,
        cases: CaseSet,
        related: std::rc::Rc<dyn Fn(Sym) -> Vec<Sym>>,
        cfg: SynthConfig,
    ) -> Self {
        VarSolver {
            program,
            loop_var,
            loop_bound,
            scalar_atoms,
            loop_atoms,
            cases,
            loop_body: Vec::new(),
            stats: Vec::new(),
            related,
            cfg,
        }
    }

    /// The program the operator is being synthesized for.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Total candidates tried across all variables so far.
    pub fn total_tries(&self) -> usize {
        self.stats.iter().map(|s| s.tries).sum()
    }

    /// Attempt to solve `target` as a plain (non-looped) assignment.
    /// `templates` are sketch sources (update expressions from the loop
    /// body); the fallback is bottom-up enumeration. On success the
    /// statement is appended to `solved` and executed into every case
    /// environment.
    pub fn solve_scalar(
        &mut self,
        target: Sym,
        templates: &[Expr],
        ty_of: &dyn Fn(Sym) -> Option<Ty>,
        solved: &mut Vec<Stmt>,
    ) -> bool {
        let target_ty = ty_of(target).unwrap_or(Ty::Int);
        let make_stmt = move |expr: &Expr| Stmt::Assign {
            target: LValue::var(target),
            value: expr.clone(),
        };
        let mut tries = 0usize;

        // 1. Sketch-guided search.
        if self.cfg.use_sketches {
            let candidates: Vec<VocabEntry> = self
                .scalar_atoms
                .iter()
                .cloned()
                .chain(compound_candidates(&self.scalar_atoms, true))
                .collect();
            for template in templates {
                let mut interner = self.program.interner.clone();
                let sketch = holeify(template, &mut interner, ty_of, &|_| false);
                if let Some(expr) = drive_sketch(
                    &mut self.cases,
                    &self.cfg,
                    &sketch,
                    &candidates,
                    &self.related,
                    target,
                    &make_stmt,
                    &mut tries,
                ) {
                    return self.accept_scalar(target, expr, tries, true, solved);
                }
            }

            // 2. Type-directed generic sketches (for variables with no
            // usable template, e.g. state written only inside the inner
            // nest, or freshly lifted accumulators).
            let mut interner = self.program.interner.clone();
            let generic: Vec<Sketch> = generic_sketches(&target_ty, &mut interner);
            for sketch in &generic {
                if let Some(expr) = drive_sketch(
                    &mut self.cases,
                    &self.cfg,
                    sketch,
                    &candidates,
                    &self.related,
                    target,
                    &make_stmt,
                    &mut tries,
                ) {
                    return self.accept_scalar(target, expr, tries, true, solved);
                }
            }
        }

        // 3. Enumerative fallback.
        let probes: Vec<Env> = self
            .cases
            .search
            .iter()
            .take(24)
            .map(|c| c.env.clone())
            .collect();
        let enumerator = Enumerator::new(probes, self.cfg.enum_cfg.clone())
            .with_deadline(self.cfg.deadline.clone());
        if let Some(expr) = drive_enum(
            &mut self.cases,
            &self.cfg,
            &enumerator,
            &self.scalar_atoms,
            &target_ty,
            target,
            &make_stmt,
            &mut tries,
        ) {
            return self.accept_scalar(target, expr, tries, false, solved);
        }
        self.record_failure(target, tries, false);
        false
    }

    /// Record the candidates burned on a variable that was never solved
    /// (search exhausted or deadline expired), so failure reports and
    /// "candidates tried" totals account for abandoned searches too.
    fn record_failure(&mut self, target: Sym, tries: usize, in_loop: bool) {
        self.stats.push(VarStats {
            name: self.program.name(target).to_owned(),
            tries,
            from_sketch: false,
            in_loop,
        });
    }

    fn accept_scalar(
        &mut self,
        target: Sym,
        expr: Expr,
        tries: usize,
        from_sketch: bool,
        solved: &mut Vec<Stmt>,
    ) -> bool {
        let stmt = Stmt::Assign {
            target: LValue::var(target),
            value: expr,
        };
        if self.cfg.incremental {
            self.cases.commit(&stmt);
        }
        let stats = VarStats {
            name: self.program.name(target).to_owned(),
            tries,
            from_sketch,
            in_loop: false,
        };
        emit_var_solved(&stats);
        self.stats.push(stats);
        solved.push(stmt);
        true
    }

    /// Attempt to solve `target` inside the loop skeleton: the candidate
    /// loop executes all previously solved loop-resident assignments and
    /// the new one, sequentially per iteration (the extended sketch of
    /// §7.1 where "variables may have to be referenced on the right-hand
    /// side ... to effectively implement recursion").
    ///
    /// `is_array` selects between `target[j] = e` and `target = e`.
    pub fn solve_in_loop(
        &mut self,
        target: Sym,
        is_array: bool,
        templates: &[Expr],
        ty_of: &dyn Fn(Sym) -> Option<Ty>,
    ) -> bool {
        let elem_ty = if is_array {
            match ty_of(target) {
                Some(Ty::Seq(elem)) => *elem,
                _ => Ty::Int,
            }
        } else {
            ty_of(target).unwrap_or(Ty::Int)
        };
        let loop_var = self.loop_var;
        let loop_bound = self.loop_bound.clone();
        // Monolithic mode: each variable's loop stands alone, so its
        // candidates cannot lean on already-solved loop-resident updates.
        let prior_body = if self.cfg.incremental {
            self.loop_body.clone()
        } else {
            Vec::new()
        };
        let make_loop = |expr: &Expr| {
            let assign = if is_array {
                Stmt::Assign {
                    target: LValue::indexed(target, Expr::var(loop_var)),
                    value: expr.clone(),
                }
            } else {
                Stmt::Assign {
                    target: LValue::var(target),
                    value: expr.clone(),
                }
            };
            let mut body = prior_body.clone();
            body.push(assign);
            Stmt::For {
                var: loop_var,
                bound: loop_bound.clone(),
                body,
            }
        };
        let mut tries = 0usize;

        // 1. Sketch-guided search.
        if self.cfg.use_sketches {
            let candidates: Vec<VocabEntry> = self
                .loop_atoms
                .iter()
                .cloned()
                .chain(compound_candidates(&self.loop_atoms, true))
                .collect();
            for template in templates {
                let mut interner = self.program.interner.clone();
                let sketch = holeify(template, &mut interner, ty_of, &|_| false);
                if let Some(expr) = drive_sketch(
                    &mut self.cases,
                    &self.cfg,
                    &sketch,
                    &candidates,
                    &self.related,
                    target,
                    &make_loop,
                    &mut tries,
                ) {
                    return self.accept_in_loop(target, is_array, expr, tries, true);
                }
            }

            // 2. Type-directed generic sketches.
            let mut interner = self.program.interner.clone();
            let generic: Vec<Sketch> = generic_sketches(&elem_ty, &mut interner);
            for sketch in &generic {
                if let Some(expr) = drive_sketch(
                    &mut self.cases,
                    &self.cfg,
                    sketch,
                    &candidates,
                    &self.related,
                    target,
                    &make_loop,
                    &mut tries,
                ) {
                    return self.accept_in_loop(target, is_array, expr, tries, true);
                }
            }
        }

        // 3. Enumerative fallback: probes bind the loop counter to a few
        // concrete indices so indexed atoms evaluate.
        let mut probes = Vec::new();
        for case in self.cases.search.iter().take(10) {
            for j in 0..3i64 {
                let mut env = case.env.clone();
                env.set(self.loop_var, Value::Int(j));
                probes.push(env);
            }
        }
        let enumerator = Enumerator::new(probes, self.cfg.enum_cfg.clone())
            .with_deadline(self.cfg.deadline.clone());
        if let Some(expr) = drive_enum(
            &mut self.cases,
            &self.cfg,
            &enumerator,
            &self.loop_atoms,
            &elem_ty,
            target,
            &make_loop,
            &mut tries,
        ) {
            return self.accept_in_loop(target, is_array, expr, tries, false);
        }
        self.record_failure(target, tries, true);
        false
    }

    fn accept_in_loop(
        &mut self,
        target: Sym,
        is_array: bool,
        expr: Expr,
        tries: usize,
        from_sketch: bool,
    ) -> bool {
        let assign = if is_array {
            Stmt::Assign {
                target: LValue::indexed(target, Expr::var(self.loop_var)),
                value: expr,
            }
        } else {
            Stmt::Assign {
                target: LValue::var(target),
                value: expr,
            }
        };
        self.loop_body.push(assign);
        let stats = VarStats {
            name: self.program.name(target).to_owned(),
            tries,
            from_sketch,
            in_loop: true,
        };
        emit_var_solved(&stats);
        self.stats.push(stats);
        true
    }

    /// Finalize the loop phase: build the combined loop statement, append
    /// it to `solved`, and execute it into every case environment.
    pub fn finish_loop(&mut self, solved: &mut Vec<Stmt>) {
        if self.loop_body.is_empty() {
            return;
        }
        let stmt = Stmt::For {
            var: self.loop_var,
            bound: self.loop_bound.clone(),
            body: std::mem::take(&mut self.loop_body),
        };
        self.cases.commit(&stmt);
        solved.push(stmt);
    }
}

/// Screen one sketch's hole fillings against the case set, dispatching
/// on `cfg.threads`.
///
/// Sequential mode calls the mutating [`CaseSet::accepts`] per
/// candidate (promoting verify counterexamples as it goes). Parallel
/// mode streams the same candidates, in the same order, through a
/// [`BatchScreen`] using the side-effect-free [`CaseSet::accepts_pure`]
/// — the two return the same winning expression (see `accepts_pure`).
/// `tries` counts offered candidates either way.
#[allow(clippy::too_many_arguments)] // one site per knob of the search
fn drive_sketch(
    cases: &mut CaseSet,
    cfg: &SynthConfig,
    sketch: &Sketch,
    candidates: &[VocabEntry],
    related: &std::rc::Rc<dyn Fn(Sym) -> Vec<Sym>>,
    target: Sym,
    build: &(dyn Fn(&Expr) -> Stmt + Sync),
    tries: &mut usize,
) -> Option<Expr> {
    if cfg.threads > 1 {
        let mut screen =
            BatchScreen::new(cfg.threads, cases, target, build).with_deadline(cfg.deadline.clone());
        let _ = solve_sketch_related(
            sketch,
            candidates,
            cfg.max_sketch_tries,
            &cfg.deadline,
            &|s| related(s),
            &mut |e| {
                *tries += 1;
                screen.offer(e)
            },
        );
        // The tail batch must flush before this sketch is declared
        // fruitless — and when the generator was cancelled mid-batch,
        // the *screen's* winner (minimum passing index) is the result,
        // not whatever candidate the generator stopped at.
        screen.finish()
    } else {
        solve_sketch_related(
            sketch,
            candidates,
            cfg.max_sketch_tries,
            &cfg.deadline,
            &|s| related(s),
            &mut |e| {
                *tries += 1;
                cases.accepts(&[build(e)], target)
            },
        )
        .map(|(expr, _)| expr)
    }
}

/// Screen the bottom-up enumerator's terms against the case set,
/// dispatching on `cfg.threads` exactly like [`drive_sketch`].
#[allow(clippy::too_many_arguments)]
fn drive_enum(
    cases: &mut CaseSet,
    cfg: &SynthConfig,
    enumerator: &Enumerator,
    atoms: &[VocabEntry],
    target_ty: &Ty,
    target: Sym,
    build: &(dyn Fn(&Expr) -> Stmt + Sync),
    tries: &mut usize,
) -> Option<Expr> {
    if cfg.threads > 1 {
        let mut screen =
            BatchScreen::new(cfg.threads, cases, target, build).with_deadline(cfg.deadline.clone());
        let _ = enumerator.solve(atoms, target_ty, &mut |e| {
            *tries += 1;
            screen.offer(e)
        });
        screen.finish()
    } else {
        enumerator.solve(atoms, target_ty, &mut |e| {
            *tries += 1;
            cases.accepts(&[build(e)], target)
        })
    }
}

/// Trace a solved variable: name, candidates tried, and whether the
/// winning candidate came from a sketch hole or lives in a loop body.
fn emit_var_solved(stats: &VarStats) {
    if trace::enabled() {
        trace::point(
            "synthesize",
            "var_solved",
            &[
                ("var", stats.name.as_str().into()),
                ("tries", stats.tries.into()),
                ("from_sketch", stats.from_sketch.into()),
                ("in_loop", stats.in_loop.into()),
            ],
        );
    }
}
