//! Synthesis configuration and statistics.

use crate::enumerate::EnumConfig;

/// Tuning knobs for the synthesis engine.
///
/// The defaults reproduce the paper's setup: sketch-guided search with
/// the weak-inverse vocabulary restriction, bounded verification on
/// randomized splits, and an enumerative fallback. `use_sketches = false`
/// reproduces the "straightforward syntax-guided synthesis scheme"
/// ablation of §9 (which took 40+ minutes where the guided search takes
/// seconds).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of examples every candidate must match during search.
    pub search_examples: usize,
    /// Number of additional examples used to (boundedly) verify a
    /// candidate that survived the search set; failures are fed back
    /// into the search set (CEGIS).
    pub verify_examples: usize,
    /// Cap on sketch hole-filling attempts per variable.
    pub max_sketch_tries: usize,
    /// Bottom-up enumerator configuration (fallback grammar).
    pub enum_cfg: EnumConfig,
    /// Use loop-body sketches (the weak-inverse syntactic restriction of
    /// §7.1). Disable to measure the unrestricted-search ablation.
    pub use_sketches: bool,
    /// RNG seed for example generation (determinism in tests/benches).
    pub seed: u64,
    /// Incremental synthesis over the dependency partition D₁ ⊂ D₂ ⊂ …
    /// (§9 "Implementation"). When disabled, variables are solved
    /// independently: solutions may not reference already-joined values
    /// and looped joins do not share a loop body — the monolithic
    /// baseline the paper compares against (mtls: >1000 s vs 116.3 s).
    pub incremental: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            search_examples: 36,
            verify_examples: 280,
            max_sketch_tries: 400_000,
            enum_cfg: EnumConfig::default(),
            use_sketches: true,
            seed: 0xC0FFEE,
            incremental: true,
        }
    }
}

impl SynthConfig {
    /// A configuration with the sketch/weak-inverse restriction disabled
    /// (pure bottom-up enumeration) — the §9 ablation.
    pub fn without_sketches(mut self) -> Self {
        self.use_sketches = false;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable incremental (dependency-ordered) synthesis — the
    /// monolithic ablation of §9.
    pub fn monolithic(mut self) -> Self {
        self.incremental = false;
        self
    }
}

/// Per-variable synthesis statistics.
#[derive(Debug, Clone, Default)]
pub struct VarStats {
    /// Variable name.
    pub name: String,
    /// Candidates tried before success (sketch + enumeration).
    pub tries: usize,
    /// Whether the solution came from a sketch (vs the fallback grammar).
    pub from_sketch: bool,
    /// Whether the variable had to be solved inside a loop skeleton.
    pub in_loop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_sketches() {
        let cfg = SynthConfig::default();
        assert!(cfg.use_sketches);
        assert!(cfg.search_examples > 0 && cfg.verify_examples > 0);
    }

    #[test]
    fn ablation_toggle() {
        let cfg = SynthConfig::default().without_sketches();
        assert!(!cfg.use_sketches);
    }
}
