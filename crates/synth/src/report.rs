//! Synthesis configuration and statistics.

use crate::enumerate::EnumConfig;
use parsynt_trace::Deadline;

/// Tuning knobs for the synthesis engine.
///
/// The defaults reproduce the paper's setup: sketch-guided search with
/// the weak-inverse vocabulary restriction, bounded verification on
/// randomized splits, and an enumerative fallback. `use_sketches = false`
/// reproduces the "straightforward syntax-guided synthesis scheme"
/// ablation of §9 (which took 40+ minutes where the guided search takes
/// seconds).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of examples every candidate must match during search.
    pub search_examples: usize,
    /// Number of additional examples used to (boundedly) verify a
    /// candidate that survived the search set; failures are fed back
    /// into the search set (CEGIS).
    pub verify_examples: usize,
    /// Cap on sketch hole-filling attempts per variable.
    pub max_sketch_tries: usize,
    /// Bottom-up enumerator configuration (fallback grammar).
    pub enum_cfg: EnumConfig,
    /// Use loop-body sketches (the weak-inverse syntactic restriction of
    /// §7.1). Disable to measure the unrestricted-search ablation.
    pub use_sketches: bool,
    /// RNG seed for example generation (determinism in tests/benches).
    pub seed: u64,
    /// Incremental synthesis over the dependency partition D₁ ⊂ D₂ ⊂ …
    /// (§9 "Implementation"). When disabled, variables are solved
    /// independently: solutions may not reference already-joined values
    /// and looped joins do not share a loop body — the monolithic
    /// baseline the paper compares against (mtls: >1000 s vs 116.3 s).
    pub incremental: bool,
    /// Worker threads for candidate screening. `1` (the default) keeps
    /// the fully sequential CEGIS loop; `> 1` shards screening over a
    /// scoped pool with a first-verified-solution-wins protocol whose
    /// minimum-index tie-break makes the result identical to the
    /// sequential path's.
    pub threads: usize,
    /// Wall-clock budget for the whole synthesis search. The default
    /// is unlimited; an expired deadline makes every search loop
    /// (sketch hole-filling, enumeration, parallel screening, CEGIS
    /// rounds) unwind cooperatively so the caller can report a typed
    /// deadline-exceeded outcome instead of hanging.
    pub deadline: Deadline,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            search_examples: 36,
            verify_examples: 280,
            max_sketch_tries: 400_000,
            enum_cfg: EnumConfig::default(),
            use_sketches: true,
            seed: 0xC0FFEE,
            incremental: true,
            threads: 1,
            deadline: Deadline::none(),
        }
    }
}

impl SynthConfig {
    /// A configuration with the sketch/weak-inverse restriction disabled
    /// (pure bottom-up enumeration) — the §9 ablation.
    pub fn without_sketches(mut self) -> Self {
        self.use_sketches = false;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable incremental (dependency-ordered) synthesis — the
    /// monolithic ablation of §9.
    pub fn monolithic(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Set the candidate-screening thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the maximum term size of the enumerative fallback (clamped
    /// to at least 1).
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.enum_cfg.max_size = depth.max(1);
        self
    }

    /// Set the search / bounded-verification example counts. At least
    /// one search example is kept; `verify` may be 0 to disable the
    /// CEGIS feedback set.
    pub fn with_examples(mut self, search: usize, verify: usize) -> Self {
        self.search_examples = search.max(1);
        self.verify_examples = verify;
        self
    }

    /// Set the wall-clock deadline for the synthesis search.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Convenience: expire the search `ms` milliseconds from now.
    pub fn with_timeout_ms(self, ms: u64) -> Self {
        self.with_deadline(Deadline::after(std::time::Duration::from_millis(ms)))
    }
}

/// Per-variable synthesis statistics.
#[derive(Debug, Clone, Default)]
pub struct VarStats {
    /// Variable name.
    pub name: String,
    /// Candidates tried before success (sketch + enumeration).
    pub tries: usize,
    /// Whether the solution came from a sketch (vs the fallback grammar).
    pub from_sketch: bool,
    /// Whether the variable had to be solved inside a loop skeleton.
    pub in_loop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_sketches() {
        let cfg = SynthConfig::default();
        assert!(cfg.use_sketches);
        assert!(cfg.search_examples > 0 && cfg.verify_examples > 0);
    }

    #[test]
    fn ablation_toggle() {
        let cfg = SynthConfig::default().without_sketches();
        assert!(!cfg.use_sketches);
    }

    #[test]
    fn builders_clamp_and_compose() {
        let cfg = SynthConfig::default()
            .with_threads(0)
            .with_depth(0)
            .with_examples(0, 0)
            .with_seed(7);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.enum_cfg.max_size, 1);
        assert_eq!(cfg.search_examples, 1);
        assert_eq!(cfg.verify_examples, 0);
        assert_eq!(cfg.seed, 7);
        assert_eq!(SynthConfig::default().with_threads(4).threads, 4);
    }
}
