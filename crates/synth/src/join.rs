//! Synthesis of the parallel join operator `⊙` (§7.1) — step (I) of the
//! Figure-7 schema.
//!
//! Specification: `∀x, y. h(x • y) = h(x) ⊙ h(y)`, checked boundedly on
//! random inputs and split points. The synthesized join is a statement
//! list over the program's state variables plus fresh `v__l` / `v__r`
//! projections of the two incoming states; array-shaped state yields a
//! looped join within the `O(m^{k-1})` budget of Definition 6.2.

use crate::examples::{join_examples, InputProfile, JoinExample};
use crate::report::{SynthConfig, VarStats};
use crate::solver::{Case, CaseSet, VarSolver};
use crate::templates::collect_templates;
use crate::vocab::{constant_atoms, VocabEntry};
use parsynt_lang::analysis::analyze;
use parsynt_lang::ast::{Expr, Program, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::{exec_stmts, read_state, Env, StateVec};
use parsynt_lang::pretty::stmt_to_string;
use parsynt_lang::Ty;
use parsynt_trace as trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One state variable's projections in the join vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinVar {
    /// The state variable.
    pub sym: Sym,
    /// Symbol bound to the left state's value.
    pub l: Sym,
    /// Symbol bound to the right state's value.
    pub r: Sym,
    /// The variable's type.
    pub ty: Ty,
}

/// The join's vocabulary: left/right projections for every state
/// variable, and a loop counter for looped joins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinVocab {
    /// Per-state-variable projections.
    pub vars: Vec<JoinVar>,
    /// Loop counter for looped joins.
    pub loop_var: Sym,
}

impl JoinVocab {
    /// Intern the vocabulary symbols into `program` (fresh `name__l`,
    /// `name__r` and a loop counter).
    pub fn install(program: &mut Program) -> JoinVocab {
        let names: Vec<(Sym, Ty, String)> = program
            .state
            .iter()
            .map(|d| (d.name, d.ty.clone(), program.name(d.name).to_owned()))
            .collect();
        let vars = names
            .into_iter()
            .map(|(sym, ty, name)| JoinVar {
                sym,
                l: program.interner.fresh(&format!("{name}__l")),
                r: program.interner.fresh(&format!("{name}__r")),
                ty,
            })
            .collect();
        let loop_var = program.interner.fresh("__jj");
        JoinVocab { vars, loop_var }
    }

    /// The projection entry for a state variable.
    pub fn var(&self, sym: Sym) -> Option<&JoinVar> {
        self.vars.iter().find(|v| v.sym == sym)
    }
}

/// A synthesized join: a statement list executed with the convention
/// that every state variable starts at its *left* value and the
/// `v__l` / `v__r` symbols are bound to the incoming states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizedJoin {
    /// The join body.
    pub stmts: Vec<Stmt>,
}

impl SynthesizedJoin {
    /// Render the join as surface syntax (for reports and debugging).
    pub fn render(&self, program: &Program) -> String {
        self.stmts
            .iter()
            .map(|s| stmt_to_string(&program.interner, s))
            .collect()
    }
}

/// Execute a synthesized join on two states.
///
/// # Errors
///
/// Propagates interpreter errors (a malformed join).
pub fn apply_join(
    program: &Program,
    vocab: &JoinVocab,
    join: &SynthesizedJoin,
    left: &StateVec,
    right: &StateVec,
) -> Result<StateVec> {
    let mut env = Env::for_program(program);
    for v in &vocab.vars {
        let lval = left
            .get(v.sym)
            .ok_or_else(|| LangError::eval("join: missing left value"))?;
        let rval = right
            .get(v.sym)
            .ok_or_else(|| LangError::eval("join: missing right value"))?;
        env.set(v.l, lval.clone());
        env.set(v.r, rval.clone());
        env.set(v.sym, lval.clone());
    }
    exec_stmts(&mut env, &join.stmts)?;
    read_state(program, &env)
}

/// Outcome of join synthesis.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// The synthesized join, or `None` when no join exists in the search
    /// space (the nominal "not a homomorphism" verdict of §6.2).
    pub join: Option<SynthesizedJoin>,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Per-variable statistics.
    pub stats: Vec<VarStats>,
    /// The first variable that could not be solved, if any.
    pub failed_var: Option<String>,
    /// Whether the join required a loop (array-shaped state).
    pub looped: bool,
    /// Whether the search stopped because the configured deadline
    /// expired (rather than because the space was exhausted).
    pub timed_out: bool,
}

impl JoinResult {
    fn failure(
        elapsed: Duration,
        stats: Vec<VarStats>,
        var: String,
        timed_out: bool,
    ) -> JoinResult {
        JoinResult {
            join: None,
            elapsed,
            stats,
            failed_var: Some(var),
            looped: false,
            timed_out,
        }
    }
}

fn join_case(program: &Program, vocab: &JoinVocab, ex: &JoinExample) -> Result<Case> {
    let mut env = Env::for_program(program);
    for v in &vocab.vars {
        let lval = ex
            .left
            .get(v.sym)
            .ok_or_else(|| LangError::eval("example missing state value"))?;
        let rval = ex
            .right
            .get(v.sym)
            .ok_or_else(|| LangError::eval("example missing state value"))?;
        env.set(v.l, lval.clone());
        env.set(v.r, rval.clone());
        env.set(v.sym, lval.clone());
    }
    Ok(Case {
        env,
        expected: ex.whole.clone(),
    })
}

fn join_atoms(vocab: &JoinVocab) -> (Vec<VocabEntry>, Vec<VocabEntry>) {
    use parsynt_synth_side::Side;
    let mut scalar = constant_atoms();
    for v in &vocab.vars {
        if v.ty.is_scalar() {
            for (sym, side) in [
                (v.l, Side::Left),
                (v.r, Side::Right),
                (v.sym, Side::Current),
            ] {
                scalar.push(
                    VocabEntry::new(Expr::var(sym), v.ty.clone())
                        .with_side(side)
                        .with_var(v.sym),
                );
            }
        }
    }
    let mut looped = scalar.clone();
    looped.push(VocabEntry::int(Expr::var(vocab.loop_var)));
    for v in &vocab.vars {
        if let Ty::Seq(elem) = &v.ty {
            for (sym, side) in [
                (v.l, Side::Left),
                (v.r, Side::Right),
                (v.sym, Side::Current),
            ] {
                looped.push(
                    VocabEntry::new(
                        Expr::index(Expr::var(sym), Expr::var(vocab.loop_var)),
                        (**elem).clone(),
                    )
                    .with_side(side)
                    .with_var(v.sym),
                );
            }
        }
    }
    (scalar, looped)
}

use crate::vocab as parsynt_synth_side;

/// Origin-relatedness for join holes: a hole that replaced `s` prefers
/// candidates over the state variables `s` *is* or *flows into*
/// (dataflow adjacency), projected to their `__l`/`__r`/current symbols.
fn join_related(program: &Program, vocab: &JoinVocab) -> impl Fn(Sym) -> Vec<Sym> {
    let flow = parsynt_lang::analysis::assigned_from(program);
    let vocab = vocab.clone();
    move |s: Sym| {
        let mut out: Vec<Sym> = Vec::new();
        let push_var = |v: Sym, out: &mut Vec<Sym>| {
            if let Some(jv) = vocab.var(v) {
                for sym in [jv.sym, jv.l, jv.r] {
                    if !out.contains(&sym) {
                        out.push(sym);
                    }
                }
            }
        };
        push_var(s, &mut out);
        // Vocabulary symbols map back to their state variable.
        if let Some(jv) = vocab.vars.iter().find(|v| v.l == s || v.r == s) {
            push_var(jv.sym, &mut out);
        }
        if let Some(targets) = flow.get(&s) {
            for &v in targets {
                push_var(v, &mut out);
            }
        }
        out
    }
}

/// Synthesize a join for `program` (step (I) of Figure 7).
///
/// The vocabulary symbols are interned into `program`; on success the
/// returned join can be executed with [`apply_join`].
///
/// Looped joins currently assume all array-shaped state variables share
/// one width (the loop bound is the first array's length) — true for
/// every benchmark in the suite, where arrays are sized by the row
/// width; programs mixing array widths would need per-array loops.
///
/// # Errors
///
/// Fails only on interpreter/program errors (example generation); an
/// unsynthesizable join is reported in [`JoinResult::join`] as `None`.
pub fn synthesize_join(
    program: &mut Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<(JoinResult, JoinVocab)> {
    let start = Instant::now();
    let mut join_span = trace::span("synthesize", "join");
    join_span.record("threads", cfg.threads);
    let vocab = JoinVocab::install(program);
    let program: &Program = program;
    let f = RightwardFn::new(program)?;
    let analysis = analyze(program);
    let allow_loops = analysis.summarized_depth >= 2;

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let search = join_examples(&f, profile, &mut rng, cfg.search_examples)?;
    let verify = join_examples(&f, profile, &mut rng, cfg.verify_examples)?;
    let search_cases = search
        .iter()
        .map(|ex| join_case(program, &vocab, ex))
        .collect::<Result<Vec<_>>>()?;
    let verify_cases = verify
        .iter()
        .map(|ex| join_case(program, &vocab, ex))
        .collect::<Result<Vec<_>>>()?;

    let templates = collect_templates(&f);
    let template_of = |sym: Sym| {
        templates
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, t)| t.clone())
            .unwrap_or_default()
    };
    let ty_map: Vec<(Sym, Ty)> = program
        .state
        .iter()
        .map(|d| (d.name, d.ty.clone()))
        .chain(f.inner_vars().iter().cloned())
        .collect();
    let ty_of = move |sym: Sym| -> Option<Ty> {
        ty_map
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, t)| t.clone())
    };

    let loop_bound = vocab
        .vars
        .iter()
        .find(|v| v.ty.is_seq())
        .map(|v| Expr::Len(Box::new(Expr::var(v.l))))
        .unwrap_or(Expr::Int(0));
    let (scalar_atoms, loop_atoms) = join_atoms(&vocab);
    let related = std::rc::Rc::new(join_related(program, &vocab));

    // Outer CEGIS loop: a join that survives the per-variable search and
    // verify sets but fails the final whole-join verification feeds its
    // counterexamples back into the search set and re-solves.
    let mut extra_cases: Vec<Case> = Vec::new();
    let mut last_failure: Option<(Vec<VarStats>, String)> = None;
    for attempt in 0..3u32 {
        if cfg.deadline.is_expired() {
            let (stats, _) = last_failure.unwrap_or_default();
            join_span.record("timed_out", true);
            return Ok((
                JoinResult::failure(start.elapsed(), stats, "<deadline>".to_owned(), true),
                vocab,
            ));
        }
        trace::point(
            "synthesize",
            "cegis_round",
            &[
                ("operator", "join".into()),
                ("round", attempt.into()),
                ("extra_examples", extra_cases.len().into()),
            ],
        );
        let mut search = search_cases.clone();
        search.extend(extra_cases.iter().cloned());
        let mut solver = VarSolver::new(
            program,
            vocab.loop_var,
            loop_bound.clone(),
            scalar_atoms.clone(),
            loop_atoms.clone(),
            CaseSet::new(search, verify_cases.clone()),
            related.clone(),
            cfg.clone(),
        );

        let mut solved: Vec<Stmt> = Vec::new();
        let mut deferred: Vec<Sym> = Vec::new();
        let mut failed: Option<String> = None;
        for sym in analysis.state_in_dependency_order() {
            let var_templates = template_of(sym);
            let is_array = program.state_decl(sym).is_some_and(|d| d.ty.is_seq());
            if is_array {
                deferred.push(sym);
                continue;
            }
            if !solver.solve_scalar(sym, &var_templates.scalar, &ty_of, &mut solved) {
                deferred.push(sym);
            }
        }

        let mut looped = false;
        if !deferred.is_empty() {
            if !allow_loops {
                let name = program.name(deferred[0]).to_owned();
                join_span.record("failed_var", name.as_str());
                return Ok((
                    JoinResult::failure(
                        start.elapsed(),
                        solver.stats,
                        name,
                        cfg.deadline.is_expired(),
                    ),
                    vocab,
                ));
            }
            looped = true;
            for &sym in &deferred {
                let var_templates = template_of(sym);
                let is_array = program.state_decl(sym).is_some_and(|d| d.ty.is_seq());
                let templates: Vec<Expr> = var_templates
                    .looped
                    .iter()
                    .chain(&var_templates.scalar)
                    .cloned()
                    .collect();
                if !solver.solve_in_loop(sym, is_array, &templates, &ty_of) {
                    failed = Some(program.name(sym).to_owned());
                    break;
                }
            }
            solver.finish_loop(&mut solved);
        }
        if let Some(name) = failed {
            join_span.record("failed_var", name.as_str());
            return Ok((
                JoinResult::failure(
                    start.elapsed(),
                    solver.stats,
                    name,
                    cfg.deadline.is_expired(),
                ),
                vocab,
            ));
        }

        let join = SynthesizedJoin {
            stmts: crate::simplify::simplify_stmts(&solved),
        };

        // Final bounded verification of the assembled join on fresh
        // examples; failures become new search cases.
        let final_examples = join_examples(&f, profile, &mut rng, 150)?;
        let mut bad: Vec<Case> = Vec::new();
        {
            let mut verify_span = trace::span("verify", "join_final_check");
            for ex in &final_examples {
                let got = apply_join(program, &vocab, &join, &ex.left, &ex.right)?;
                if got != ex.whole {
                    bad.push(join_case(program, &vocab, ex)?);
                }
            }
            verify_span.record("examples", final_examples.len());
            verify_span.record("counterexamples", bad.len());
        }
        if bad.is_empty() {
            trace::counter(
                "synthesize",
                "verify_promoted",
                solver.cases.promoted as u64,
            );
            join_span.record("looped", looped);
            join_span.record("tries", solver.total_tries());
            return Ok((
                JoinResult {
                    join: Some(join),
                    elapsed: start.elapsed(),
                    stats: solver.stats,
                    failed_var: None,
                    looped,
                    timed_out: false,
                },
                vocab,
            ));
        }
        extra_cases.extend(bad);
        last_failure = Some((solver.stats, "<final-verification>".to_owned()));
    }
    let (stats, var) = last_failure.unwrap_or_default();
    join_span.record("failed_var", var.as_str());
    Ok((
        JoinResult::failure(start.elapsed(), stats, var, cfg.deadline.is_expired()),
        vocab,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;
    use parsynt_lang::Value;

    fn synth(src: &str) -> (Program, JoinResult, JoinVocab) {
        let mut p = parse(src).unwrap();
        let cfg = SynthConfig::default();
        let (result, vocab) = synthesize_join(&mut p, &InputProfile::default(), &cfg).unwrap();
        (p, result, vocab)
    }

    #[test]
    fn sum_join_is_addition() {
        let (p, result, vocab) = synth(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        );
        let join = result.join.expect("sum is a homomorphism");
        assert!(!result.looped);
        // Sanity: join([s=10], [s=5]) = [s=15].
        let s = p.sym("s").unwrap();
        let l = StateVec::new(vec![(s, Value::Int(10))]);
        let r = StateVec::new(vec![(s, Value::Int(5))]);
        let out = apply_join(&p, &vocab, &join, &l, &r).unwrap();
        assert_eq!(out.get(s), Some(&Value::Int(15)));
    }

    #[test]
    fn lifted_max_prefix_sum_join() {
        // Max top strip after lifting: m = max prefix sum, s = total sum.
        // Join: s = s_l + s_r; m = max(m_l, s_l + m_r).
        let (p, result, vocab) = synth(
            "input a : seq<int>; state m : int = 0; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; m = max(m, s); }",
        );
        let join = result.join.expect("lifted mps is a homomorphism");
        let s = p.sym("s").unwrap();
        let m = p.sym("m").unwrap();
        // left = [3, -1] -> s=2, m=3 ; right = [4] -> s=4, m=4
        let l = StateVec::new(vec![(m, Value::Int(3)), (s, Value::Int(2))]);
        let r = StateVec::new(vec![(m, Value::Int(4)), (s, Value::Int(4))]);
        let out = apply_join(&p, &vocab, &join, &l, &r).unwrap();
        assert_eq!(out.get(s), Some(&Value::Int(6)));
        assert_eq!(out.get(m), Some(&Value::Int(6))); // max(3, 2+4)
    }

    #[test]
    fn unliftable_scalar_loop_has_no_join() {
        // mbs without the sum accumulator is not a homomorphism
        // (the introduction's argument), and k = 1 forbids loops.
        let (_, result, _) = synth(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }",
        );
        assert!(result.join.is_none());
        assert!(result.failed_var.is_some());
    }

    #[test]
    fn looped_join_for_column_sums() {
        // Column sums: rec[j] += a[i][j]; join must zip-add.
        let (p, result, vocab) = synth(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; } }",
        );
        let join = result.join.expect("column sums join elementwise");
        assert!(result.looped);
        let rec = p.sym("rec").unwrap();
        let l = StateVec::new(vec![(rec, Value::seq_of_ints(&[1, 2]))]);
        let r = StateVec::new(vec![(rec, Value::seq_of_ints(&[10, 20]))]);
        let out = apply_join(&p, &vocab, &join, &l, &r).unwrap();
        assert_eq!(out.get(rec), Some(&Value::seq_of_ints(&[11, 22])));
    }

    #[test]
    fn mtls_join_matches_figure_6() {
        // Figure 5(c): rec[], max_rec[], mtl — the looped join of Figure 6.
        let (p, result, vocab) = synth(
            "input a : seq<seq<int>>;\n\
             state rec : seq<int> = zeros(len(a[0]));\n\
             state max_rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j];\n\
               max_rec[j] = max(max_rec[j], rec[j]);\n\
               mtl = max(mtl, rec[j]);\n\
             } }",
        );
        let join = result.join.expect("lifted mtls is a homomorphism");
        assert!(result.looped);
        // Cross-check against a brute-force run.
        let input = Value::seq2_of_ints(&[
            vec![3, -1, 2],
            vec![-2, 4, -1],
            vec![1, 1, 1],
            vec![-5, 2, 0],
        ]);
        let f = RightwardFn::new(&p).unwrap();
        let whole = f.apply(std::slice::from_ref(&input)).unwrap();
        let l = f.apply_slice(std::slice::from_ref(&input), 0, 2).unwrap();
        let r = f.apply_slice(&[input], 2, 4).unwrap();
        let out = apply_join(&p, &vocab, &join, &l, &r).unwrap();
        assert_eq!(out, whole);
    }
}
