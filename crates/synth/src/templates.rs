//! Sketch template extraction from loop bodies.
//!
//! §7.1: "The sketch is constructed by replacing every variable in the
//! body of `h_L` by a hole." This module recovers, per state variable,
//! the update expressions of the body — via symbolic execution when the
//! body is loop-free (so conditional updates fold into `?:` templates),
//! and via guarded-assignment collection inside loops.

use parsynt_lang::ast::{Expr, Program, Stmt, Sym};
use parsynt_lang::functional::RightwardFn;
use parsynt_rewrite::symbolic::{sym_exec_all, SymEnv, SymVal};

/// Templates available for one state variable.
#[derive(Debug, Clone, Default)]
pub struct VarTemplates {
    /// Templates usable for a plain (non-looped) candidate.
    pub scalar: Vec<Expr>,
    /// Templates usable inside a loop skeleton.
    pub looped: Vec<Expr>,
}

/// Collect templates for every state variable of the program.
///
/// * Scalar templates come from symbolically executing the loop-free
///   outer phase (all variables bound to themselves as leaves), falling
///   back to raw right-hand sides.
/// * Looped templates are guard-wrapped right-hand sides of assignments
///   occurring under any `for` in the body.
pub fn collect_templates(f: &RightwardFn<'_>) -> Vec<(Sym, VarTemplates)> {
    let program = f.program();
    let mut out: Vec<(Sym, VarTemplates)> = program
        .state_syms()
        .into_iter()
        .map(|s| (s, VarTemplates::default()))
        .collect();

    // 1. Symbolic execution of the outer phase.
    if let Some(env) = outer_phase_symbolic(f) {
        for (sym, templates) in &mut out {
            if let Ok(SymVal::Scalar(e)) = env.get(*sym) {
                // Only record if the variable actually changed.
                if *e != Expr::Var(*sym) {
                    templates.scalar.push(e.clone());
                }
            }
        }
    }

    // 2. Raw and guard-wrapped right-hand sides, split by loop context.
    // The walk starts inside the outermost loop's body: only loops nested
    // within it count as "loop context" for template bucketing.
    for (sym, templates) in &mut out {
        let mut guards: Vec<Expr> = Vec::new();
        collect_rhs(
            program,
            f.inner_phase(),
            *sym,
            false,
            &mut guards,
            templates,
        );
        collect_rhs(
            program,
            f.outer_phase(),
            *sym,
            false,
            &mut guards,
            templates,
        );
    }
    out
}

/// Symbolically execute the outer phase with every referenced variable
/// bound to itself as a leaf. `None` if the phase contains loops or any
/// other construct symbolic execution cannot handle.
fn outer_phase_symbolic(f: &RightwardFn<'_>) -> Option<SymEnv> {
    let program = f.program();
    let mut env = SymEnv::new();
    for decl in &program.state {
        if !decl.ty.is_scalar() {
            // Array state cannot be a scalar leaf; outer phases touching
            // it are handled by looped templates instead.
            continue;
        }
        env.set(decl.name, SymVal::leaf(decl.name));
    }
    for (sym, ty) in f.inner_vars() {
        if ty.is_scalar() {
            env.set(*sym, SymVal::leaf(*sym));
        }
    }
    for input in &program.inputs {
        env.set(input.name, SymVal::leaf(input.name));
    }
    env.set(f.loop_var(), SymVal::leaf(f.loop_var()));
    sym_exec_all(&mut env, f.outer_phase()).ok()?;
    Some(env)
}

#[allow(clippy::only_used_in_recursion)]
fn collect_rhs(
    program: &Program,
    stmts: &[Stmt],
    target: Sym,
    in_loop: bool,
    guards: &mut Vec<Expr>,
    templates: &mut VarTemplates,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target: lv, value } if lv.base == target => {
                let prev = if lv.indices.is_empty() {
                    Expr::Var(target)
                } else {
                    // Inside a loop the previous value is the indexed cell.
                    Expr::index(Expr::Var(target), lv.indices[0].clone())
                };
                let wrapped = guards.iter().rev().fold(value.clone(), |acc, g| {
                    Expr::ite(g.clone(), acc, prev.clone())
                });
                let bucket = if in_loop {
                    &mut templates.looped
                } else {
                    &mut templates.scalar
                };
                let guarded = wrapped != *value;
                if !bucket.contains(&wrapped) {
                    bucket.push(wrapped);
                }
                if guarded && !bucket.contains(value) {
                    bucket.push(value.clone());
                }
            }
            Stmt::Assign { .. } | Stmt::Let { .. } => {}
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                guards.push(cond.clone());
                collect_rhs(program, then_branch, target, in_loop, guards, templates);
                guards.pop();
                guards.push(Expr::Unary(
                    parsynt_lang::ast::UnOp::Not,
                    Box::new(cond.clone()),
                ));
                collect_rhs(program, else_branch, target, in_loop, guards, templates);
                guards.pop();
            }
            Stmt::For { body, .. } => {
                collect_rhs(program, body, target, true, guards, templates);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    #[test]
    fn scalar_template_from_symbolic_outer_phase() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               s = max(s + row, 0);\n\
             }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let templates = collect_templates(&f);
        let s = p.sym("s").unwrap();
        let t = &templates.iter().find(|(sym, _)| *sym == s).unwrap().1;
        assert!(!t.scalar.is_empty());
        // The symbolic template mirrors the update max(s + row, 0).
        let expected = Expr::max(
            Expr::add(Expr::Var(s), Expr::Var(p.sym("row").unwrap())),
            Expr::int(0),
        );
        assert!(t.scalar.contains(&expected), "templates: {t:?}");
    }

    #[test]
    fn guarded_update_becomes_ite_template() {
        let p = parse(
            "input a : seq<int>; state cnt : int = 0;\n\
             for i in 0 .. len(a) { if (a[i] > 0) { cnt = cnt + 1; } }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let templates = collect_templates(&f);
        let cnt = p.sym("cnt").unwrap();
        let t = &templates.iter().find(|(sym, _)| *sym == cnt).unwrap().1;
        // Both the symbolic ite-form and the guard-wrapped RHS exist.
        assert!(
            t.scalar.iter().any(|e| matches!(e, Expr::Ite(..))),
            "templates: {t:?}"
        );
    }

    #[test]
    fn looped_updates_land_in_looped_bucket() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let templates = collect_templates(&f);
        let rec = p.sym("rec").unwrap();
        let mtl = p.sym("mtl").unwrap();
        let t_rec = &templates.iter().find(|(s, _)| *s == rec).unwrap().1;
        let t_mtl = &templates.iter().find(|(s, _)| *s == mtl).unwrap().1;
        assert!(!t_rec.looped.is_empty());
        assert!(!t_mtl.looped.is_empty());
        assert!(t_rec.scalar.is_empty());
    }
}
