//! Sketches: loop-body templates with holes (§7.1).
//!
//! "The sketch is constructed by replacing every variable in the body of
//! `h_L` by a hole." A [`Sketch`] keeps the operator structure of the
//! original update and marks variable positions with fresh hole symbols;
//! [`solve_sketch`] searches hole fillings in priority order (cheap
//! candidates first) against a caller-provided check.

use crate::vocab::VocabEntry;
use parsynt_lang::ast::{BinOp, Expr, Interner, Sym};
use parsynt_lang::Ty;
use parsynt_trace::Deadline;

/// A hole in a sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hole {
    /// The placeholder symbol occurring in the template.
    pub sym: Sym,
    /// The type a filling must have.
    pub ty: Ty,
    /// The variable this hole replaced (if any): hole candidates derived
    /// from the same variable are tried first, which keeps many-hole
    /// sketches tractable.
    pub origin: Option<Sym>,
}

/// An expression template with holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    /// The template; hole positions are `Expr::Var(hole.sym)`.
    pub template: Expr,
    /// The holes, in left-to-right occurrence order.
    pub holes: Vec<Hole>,
}

impl Sketch {
    /// Substitute a filling (one expression per hole) into the template.
    pub fn fill(&self, filling: &[&Expr]) -> Expr {
        debug_assert_eq!(filling.len(), self.holes.len());
        let mut out = self.template.clone();
        for (hole, expr) in self.holes.iter().zip(filling) {
            out = out.substitute(hole.sym, expr);
        }
        out
    }
}

/// Build a sketch from an update expression: every variable occurrence
/// (and every `arr[idx]` projection whose index mentions only kept
/// variables) becomes a typed hole; constants and operators are kept.
///
/// * `ty_of` — type oracle for variables (state declarations);
/// * `keep` — variables to preserve verbatim (e.g. the loop counter of a
///   looped sketch).
pub fn holeify(
    e: &Expr,
    interner: &mut Interner,
    ty_of: &dyn Fn(Sym) -> Option<Ty>,
    keep: &dyn Fn(Sym) -> bool,
) -> Sketch {
    let mut holes = Vec::new();
    let template = go(e, interner, ty_of, keep, &mut holes);
    Sketch { template, holes }
}

fn fresh_hole(interner: &mut Interner, holes: &mut Vec<Hole>, ty: Ty, origin: Option<Sym>) -> Expr {
    let sym = interner.fresh("__hole");
    holes.push(Hole { sym, ty, origin });
    Expr::Var(sym)
}

fn go(
    e: &Expr,
    interner: &mut Interner,
    ty_of: &dyn Fn(Sym) -> Option<Ty>,
    keep: &dyn Fn(Sym) -> bool,
    holes: &mut Vec<Hole>,
) -> Expr {
    match e {
        Expr::Var(s) if keep(*s) => e.clone(),
        Expr::Var(s) => {
            let ty = ty_of(*s).unwrap_or(Ty::Int);
            fresh_hole(interner, holes, ty, Some(*s))
        }
        Expr::Index(base, _) => {
            // A whole projection like `rec[j]` becomes a single scalar
            // hole: the filling decides which array (and side) to read.
            let ty = index_result_ty(e, ty_of).unwrap_or(Ty::Int);
            let origin = base_sym(base);
            fresh_hole(interner, holes, ty, origin)
        }
        Expr::Int(_) | Expr::Bool(_) => e.clone(),
        Expr::Len(a) => Expr::Len(Box::new(go(a, interner, ty_of, keep, holes))),
        Expr::Zeros(a) => Expr::Zeros(Box::new(go(a, interner, ty_of, keep, holes))),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(go(a, interner, ty_of, keep, holes))),
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            go(a, interner, ty_of, keep, holes),
            go(b, interner, ty_of, keep, holes),
        ),
        Expr::Ite(c, t, e2) => Expr::ite(
            go(c, interner, ty_of, keep, holes),
            go(t, interner, ty_of, keep, holes),
            go(e2, interner, ty_of, keep, holes),
        ),
    }
}

fn base_sym(e: &Expr) -> Option<Sym> {
    match e {
        Expr::Var(s) => Some(*s),
        Expr::Index(base, _) => base_sym(base),
        _ => None,
    }
}

fn index_result_ty(e: &Expr, ty_of: &dyn Fn(Sym) -> Option<Ty>) -> Option<Ty> {
    match e {
        Expr::Var(s) => ty_of(*s),
        Expr::Index(base, _) => match index_result_ty(base, ty_of)? {
            Ty::Seq(elem) => Some(*elem),
            _ => None,
        },
        _ => None,
    }
}

/// Type-directed generic sketches, tried when the loop body offers no
/// template for a variable (typically auxiliary accumulators or state
/// written only inside inner loops). Ordered cheapest-first; hole
/// candidates include depth-2 compounds, so e.g.
/// `b && (x + y >= z)` — the balanced-parentheses `bal` merge — is
/// reachable from the third boolean shape.
#[allow(clippy::type_complexity)]
pub fn generic_sketches(target_ty: &Ty, interner: &mut Interner) -> Vec<Sketch> {
    let mut out = Vec::new();
    let hole = |interner: &mut Interner, holes: &mut Vec<Hole>, ty: Ty| {
        let sym = interner.fresh("__ghole");
        holes.push(Hole {
            sym,
            ty,
            origin: None,
        });
        Expr::Var(sym)
    };
    let mut push = |interner: &mut Interner, build: &dyn Fn(&mut dyn FnMut(Ty) -> Expr) -> Expr| {
        let mut holes = Vec::new();
        let template = {
            let mut mk = |ty: Ty| hole(interner, &mut holes, ty);
            build(&mut mk)
        };
        out.push(Sketch { template, holes });
    };
    match target_ty {
        Ty::Bool => {
            // A single hole (atoms + compound comparisons).
            push(interner, &|mk| mk(Ty::Bool));
            push(interner, &|mk| Expr::and(mk(Ty::Bool), mk(Ty::Bool)));
            push(interner, &|mk| Expr::or(mk(Ty::Bool), mk(Ty::Bool)));
            for op in [BinOp::Ge, BinOp::Gt, BinOp::Le, BinOp::Eq] {
                push(interner, &move |mk| {
                    Expr::and(
                        mk(Ty::Bool),
                        Expr::bin(op, Expr::add(mk(Ty::Int), mk(Ty::Int)), mk(Ty::Int)),
                    )
                });
            }
            push(interner, &|mk| {
                Expr::and(mk(Ty::Bool), Expr::and(mk(Ty::Bool), mk(Ty::Bool)))
            });
            push(interner, &|mk| {
                Expr::and(mk(Ty::Bool), Expr::or(mk(Ty::Bool), mk(Ty::Bool)))
            });
        }
        Ty::Int => {
            push(interner, &|mk| mk(Ty::Int));
            for op in [BinOp::Max, BinOp::Min, BinOp::Add, BinOp::Sub] {
                push(interner, &move |mk| Expr::bin(op, mk(Ty::Int), mk(Ty::Int)));
            }
            push(interner, &|mk| {
                Expr::ite(mk(Ty::Bool), mk(Ty::Int), mk(Ty::Int))
            });
            push(interner, &|mk| {
                Expr::add(
                    mk(Ty::Int),
                    Expr::ite(mk(Ty::Bool), Expr::int(1), Expr::int(0)),
                )
            });
        }
        Ty::Seq(_) => {}
    }
    out
}

/// Search hole fillings for `sketch` in order of total candidate weight
/// (the sum of per-hole candidate indices), calling `check` on each
/// filled template. Returns the first accepted expression and the number
/// of candidates tried.
///
/// Candidates are matched to holes by type; a hole with no candidates of
/// its type makes the sketch unsolvable.
pub fn solve_sketch(
    sketch: &Sketch,
    candidates: &[VocabEntry],
    max_tries: usize,
    check: &mut dyn FnMut(&Expr) -> bool,
) -> Option<(Expr, usize)> {
    solve_sketch_related(
        sketch,
        candidates,
        max_tries,
        &Deadline::none(),
        &|_| Vec::new(),
        check,
    )
}

/// [`solve_sketch`] with an origin-relatedness oracle: for a hole that
/// replaced variable `v`, candidates mentioning any of `related(v)` are
/// tried first (e.g. `v__l`, `v__r` in a join). This keeps sketches with
/// many holes tractable — the natural solution assigns most holes their
/// own variable's projection.
///
/// The `deadline` is polled once per weight level and once per filled
/// candidate; expiry aborts the search as if the try budget ran out.
pub fn solve_sketch_related(
    sketch: &Sketch,
    candidates: &[VocabEntry],
    max_tries: usize,
    deadline: &Deadline,
    related: &dyn Fn(Sym) -> Vec<Sym>,
    check: &mut dyn FnMut(&Expr) -> bool,
) -> Option<(Expr, usize)> {
    let per_hole: Vec<Vec<&Expr>> = sketch
        .holes
        .iter()
        .map(|h| {
            let mut list: Vec<&Expr> = candidates
                .iter()
                .filter(|c| c.ty == h.ty)
                .map(|c| &c.expr)
                .collect();
            if let Some(origin) = h.origin {
                let rel = related(origin);
                if !rel.is_empty() {
                    // Stable partition: related-candidates first.
                    list.sort_by_key(|e| {
                        let mentions_rel = rel.iter().any(|&r| e.mentions(r));
                        // Related atoms, then related compounds, then rest.
                        match (mentions_rel, e.size()) {
                            (true, 1) => 0u8,
                            (true, _) => 1,
                            (false, 1) => 2,
                            (false, _) => 3,
                        }
                    });
                }
            }
            list
        })
        .collect();
    if per_hole.iter().any(Vec::is_empty) {
        return None;
    }
    if sketch.holes.is_empty() {
        return check(&sketch.template).then(|| (sketch.template.clone(), 1));
    }

    let max_weight: usize = per_hole.iter().map(|c| c.len() - 1).sum();
    let mut tries = 0usize;
    let mut filling: Vec<usize> = vec![0; per_hole.len()];
    for weight in 0..=max_weight {
        if tries >= max_tries || deadline.is_expired() {
            return None;
        }
        if let Some(found) = try_weight(
            sketch,
            &per_hole,
            weight,
            0,
            &mut filling,
            &mut tries,
            max_tries,
            deadline,
            check,
        ) {
            return Some((found, tries));
        }
    }
    None
}

/// Enumerate index tuples of exactly `weight` distributed over the holes
/// from `pos` onward; returns the first accepted filled template.
#[allow(clippy::too_many_arguments)]
fn try_weight(
    sketch: &Sketch,
    per_hole: &[Vec<&Expr>],
    weight: usize,
    pos: usize,
    filling: &mut Vec<usize>,
    tries: &mut usize,
    max_tries: usize,
    deadline: &Deadline,
    check: &mut dyn FnMut(&Expr) -> bool,
) -> Option<Expr> {
    if *tries >= max_tries {
        return None;
    }
    if pos == per_hole.len() {
        if weight != 0 {
            return None;
        }
        if deadline.is_expired() {
            // Spend the remaining budget so the weight loop also stops.
            *tries = max_tries;
            return None;
        }
        *tries += 1;
        let exprs: Vec<&Expr> = filling.iter().zip(per_hole).map(|(&i, c)| c[i]).collect();
        let candidate = sketch.fill(&exprs);
        return check(&candidate).then_some(candidate);
    }
    // Remaining holes can absorb at most this much weight.
    let rest_capacity: usize = per_hole[pos + 1..].iter().map(|c| c.len() - 1).sum();
    let lo = weight.saturating_sub(rest_capacity);
    let hi = weight.min(per_hole[pos].len() - 1);
    for i in lo..=hi {
        filling[pos] = i;
        if let Some(found) = try_weight(
            sketch,
            per_hole,
            weight - i,
            pos + 1,
            filling,
            tries,
            max_tries,
            deadline,
            check,
        ) {
            return Some(found);
        }
        if *tries >= max_tries {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holeify_replaces_vars_keeps_structure() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let a = i.intern("a");
        // max(s + a, 0)
        let e = Expr::max(Expr::add(Expr::var(s), Expr::var(a)), Expr::int(0));
        let sketch = holeify(&e, &mut i, &|_| Some(Ty::Int), &|_| false);
        assert_eq!(sketch.holes.len(), 2);
        assert!(matches!(sketch.template, Expr::Binary(BinOp::Max, _, _)));
        // The constant 0 survives.
        let mut zero_count = 0;
        sketch.template.walk(&mut |sub| {
            if *sub == Expr::Int(0) {
                zero_count += 1;
            }
        });
        assert_eq!(zero_count, 1);
    }

    #[test]
    fn holeify_collapses_indexed_reads() {
        let mut i = Interner::new();
        let rec = i.intern("rec");
        let j = i.intern("j");
        // rec[j] + 1 with `j` kept: one scalar hole plus the constant.
        let e = Expr::add(Expr::index(Expr::var(rec), Expr::var(j)), Expr::int(1));
        let sketch = holeify(
            &e,
            &mut i,
            &|s| (s == rec).then(|| Ty::seq(Ty::Int)),
            &|s| s == j,
        );
        assert_eq!(sketch.holes.len(), 1);
        assert_eq!(sketch.holes[0].ty, Ty::Int);
    }

    #[test]
    fn solve_sketch_finds_weighted_first_solution() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let e = Expr::add(Expr::var(s), Expr::var(s));
        let sketch = holeify(&e, &mut i, &|_| Some(Ty::Int), &|_| false);
        let c1 = VocabEntry::int(Expr::int(1));
        let c2 = VocabEntry::int(Expr::int(2));
        let c3 = VocabEntry::int(Expr::int(3));
        // Accept only 2 + 3 or 3 + 2 (total 5).
        let mut check =
            |e: &Expr| {
                parsynt_lang::interp::eval_expr(
                &parsynt_lang::interp::Env::for_program(&parsynt_lang::parse(
                    "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
                )
                .unwrap()),
                e,
            )
            .ok()
                == Some(parsynt_lang::Value::Int(5))
            };
        let (found, tries) =
            solve_sketch(&sketch, &[c1, c2, c3], 1000, &mut check).expect("solvable");
        assert_eq!(found, Expr::add(Expr::int(2), Expr::int(3)));
        // Weighted order: (1,1)w0 (1,2)(2,1)w1 (1,3)(2,2)(3,1)w2 (2,3)hit.
        assert!(tries <= 7, "tries = {tries}");
    }

    #[test]
    fn solve_sketch_respects_type_filter() {
        let mut i = Interner::new();
        let b = i.intern("b");
        let e = Expr::var(b);
        let sketch = holeify(&e, &mut i, &|_| Some(Ty::Bool), &|_| false);
        // Only int candidates available: unsolvable.
        let ints = [VocabEntry::int(Expr::int(1))];
        assert!(solve_sketch(&sketch, &ints, 100, &mut |_| true).is_none());
    }

    #[test]
    fn solve_sketch_honors_try_budget() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let e = Expr::add(Expr::var(s), Expr::var(s));
        let sketch = holeify(&e, &mut i, &|_| Some(Ty::Int), &|_| false);
        let candidates: Vec<VocabEntry> = (0..50).map(|n| VocabEntry::int(Expr::int(n))).collect();
        let mut calls = 0usize;
        let result = solve_sketch(&sketch, &candidates, 10, &mut |_| {
            calls += 1;
            false
        });
        assert!(result.is_none());
        assert!(calls <= 10);
    }
}
