//! Typed vocabularies: the atoms and small compound terms hole
//! candidates and the fallback grammar are drawn from.
//!
//! The weak-inverse insight of §7.1 shapes these: a join within the
//! complexity budget can only consume the left/right *states* (whose
//! weak-inverse images have constant length), so the vocabulary is the
//! set of state-variable projections — not arbitrary input terms.
//!
//! Two further restrictions keep many-hole sketches tractable:
//!
//! * compounds only combine atoms from *different sides* (a join term
//!   like `cur_l + sum_r` bridges the two chunks; same-side arithmetic
//!   is already expressible by the chunk's own loop), and
//! * compounds over the *same variable*'s two sides (`v_l + v_r`, the
//!   ubiquitous sum/zip join) are ordered first.

use parsynt_lang::ast::{BinOp, Expr, Sym, UnOp};
use parsynt_lang::Ty;

/// Which operand of the operator an atom projects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left chunk's state (`v__l`).
    Left,
    /// The right chunk's state (`v__r`).
    Right,
    /// The evolving current value (join) / the `d` state (merge).
    Current,
    /// A pre-operator snapshot (`v__d` in merges).
    Old,
    /// An inner-result projection (`v__t` in merges).
    TField,
    /// A literal constant.
    Const,
}

/// A typed candidate term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabEntry {
    /// The candidate expression.
    pub expr: Expr,
    /// Its type.
    pub ty: Ty,
    /// Operand side (drives compound construction).
    pub side: Side,
    /// The underlying state variable, if the term projects exactly one.
    pub var: Option<Sym>,
}

impl VocabEntry {
    /// Construct a typed candidate.
    pub fn new(expr: Expr, ty: Ty) -> Self {
        VocabEntry {
            expr,
            ty,
            side: Side::Const,
            var: None,
        }
    }

    /// An integer-typed candidate.
    pub fn int(expr: Expr) -> Self {
        Self::new(expr, Ty::Int)
    }

    /// A boolean-typed candidate.
    pub fn boolean(expr: Expr) -> Self {
        Self::new(expr, Ty::Bool)
    }

    /// Tag the operand side.
    pub fn with_side(mut self, side: Side) -> Self {
        self.side = side;
        self
    }

    /// Tag the underlying state variable.
    pub fn with_var(mut self, var: Sym) -> Self {
        self.var = Some(var);
        self
    }
}

/// The constants made available to holes and the enumerator.
pub fn constant_atoms() -> Vec<VocabEntry> {
    vec![
        VocabEntry::int(Expr::Int(0)),
        VocabEntry::int(Expr::Int(1)),
        VocabEntry::boolean(Expr::Bool(true)),
        VocabEntry::boolean(Expr::Bool(false)),
    ]
}

fn cross_side(a: &VocabEntry, b: &VocabEntry) -> bool {
    a.side == Side::Const || b.side == Side::Const || a.side != b.side
}

fn same_var(a: &VocabEntry, b: &VocabEntry) -> bool {
    matches!((a.var, b.var), (Some(x), Some(y)) if x == y)
}

/// Depth-2 compound candidates over `atoms`: `a ⊕ b` for the scalar
/// operators that appear in joins (`+`, `-`, `min`, `max`), plus
/// comparisons and boolean combinations. Only *cross-side* pairs are
/// built (see module docs); same-variable cross pairs come first.
pub fn compound_candidates(atoms: &[VocabEntry], with_comparisons: bool) -> Vec<VocabEntry> {
    let ints: Vec<&VocabEntry> = atoms.iter().filter(|a| a.ty == Ty::Int).collect();
    let mut priority: Vec<VocabEntry> = Vec::new();
    let mut rest: Vec<VocabEntry> = Vec::new();
    {
        let mut push = |entry: VocabEntry, prioritized: bool| {
            if prioritized {
                priority.push(entry);
            } else {
                rest.push(entry);
            }
        };
        for (i, a) in ints.iter().enumerate() {
            for (j, b) in ints.iter().enumerate() {
                if !cross_side(a, b) {
                    continue;
                }
                let prioritized = same_var(a, b);
                let var = if prioritized { a.var } else { None };
                // `+`, `min`, `max` are commutative: one orientation.
                if i <= j {
                    for op in [BinOp::Add, BinOp::Max, BinOp::Min] {
                        if i == j && op != BinOp::Add {
                            continue;
                        }
                        let mut e = VocabEntry::int(Expr::bin(op, a.expr.clone(), b.expr.clone()));
                        e.var = var;
                        push(e, prioritized);
                    }
                }
                if i != j {
                    let mut e = VocabEntry::int(Expr::sub(a.expr.clone(), b.expr.clone()));
                    e.var = var;
                    push(e, prioritized);
                }
            }
        }
        if with_comparisons {
            for (i, a) in ints.iter().enumerate() {
                for (j, b) in ints.iter().enumerate() {
                    // Comparisons against literal constants are banned:
                    // they are the classic bounded-verification overfit
                    // (`1 == offset__d` style "magic constants").
                    if i == j || !cross_side(a, b) || a.side == Side::Const || b.side == Side::Const
                    {
                        continue;
                    }
                    let prioritized = same_var(a, b);
                    for op in [BinOp::Ge, BinOp::Eq] {
                        let mut e =
                            VocabEntry::boolean(Expr::bin(op, a.expr.clone(), b.expr.clone()));
                        e.var = if prioritized { a.var } else { None };
                        push(e, prioritized);
                    }
                }
            }
            // Boolean combinations: negation of atoms, cross-side
            // conjunction/disjunction.
            let bools: Vec<&VocabEntry> = atoms.iter().filter(|a| a.ty == Ty::Bool).collect();
            for b in &bools {
                if !matches!(b.expr, Expr::Bool(_)) {
                    let mut e =
                        VocabEntry::boolean(Expr::Unary(UnOp::Not, Box::new(b.expr.clone())));
                    e.var = b.var;
                    push(e, false);
                }
            }
            for (i, a) in bools.iter().enumerate() {
                for b in bools.iter().skip(i + 1) {
                    if !cross_side(a, b) {
                        continue;
                    }
                    let prioritized = same_var(a, b);
                    for mk in [Expr::and, Expr::or] {
                        let mut e = VocabEntry::boolean(mk(a.expr.clone(), b.expr.clone()));
                        e.var = if prioritized { a.var } else { None };
                        push(e, prioritized);
                    }
                }
            }
        }
    }
    priority.extend(rest);
    priority
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::Interner;

    fn atom(i: &mut Interner, name: &str, side: Side, var: Option<&str>) -> VocabEntry {
        let sym = i.intern(name);
        let mut e = VocabEntry::int(Expr::var(sym)).with_side(side);
        if let Some(v) = var {
            let vsym = i.intern(v);
            e = e.with_var(vsym);
        }
        e
    }

    #[test]
    fn same_var_cross_pairs_come_first() {
        let mut i = Interner::new();
        let al = atom(&mut i, "a__l", Side::Left, Some("a"));
        let ar = atom(&mut i, "a__r", Side::Right, Some("a"));
        let bl = atom(&mut i, "b__l", Side::Left, Some("b"));
        let compounds = compound_candidates(&[al.clone(), ar.clone(), bl], false);
        // The very first compounds combine a__l with a__r.
        assert_eq!(
            compounds[0].expr,
            Expr::add(al.expr.clone(), ar.expr.clone())
        );
        assert!(compounds[0].var.is_some());
    }

    #[test]
    fn same_side_pairs_are_excluded() {
        let mut i = Interner::new();
        let al = atom(&mut i, "a__l", Side::Left, Some("a"));
        let bl = atom(&mut i, "b__l", Side::Left, Some("b"));
        let al_sym = i.lookup("a__l").unwrap();
        let bl_sym = i.lookup("b__l").unwrap();
        let compounds = compound_candidates(&[al, bl], false);
        assert!(
            !compounds
                .iter()
                .any(|c| c.expr.mentions(al_sym) && c.expr.mentions(bl_sym)),
            "same-side pair leaked: {compounds:?}"
        );
    }

    #[test]
    fn constants_pair_with_anything() {
        let mut i = Interner::new();
        let al = atom(&mut i, "a__l", Side::Left, Some("a"));
        let zero = VocabEntry::int(Expr::int(0));
        let compounds = compound_candidates(&[al.clone(), zero], false);
        assert!(compounds
            .iter()
            .any(|c| c.expr == Expr::max(al.expr.clone(), Expr::int(0))));
    }

    #[test]
    fn comparisons_and_bool_combos_when_requested() {
        let mut i = Interner::new();
        let al = atom(&mut i, "a__l", Side::Left, Some("a"));
        let br = atom(&mut i, "b__r", Side::Right, Some("b"));
        let sl = VocabEntry::boolean(Expr::var(i.intern("s__l"))).with_side(Side::Left);
        let sr = VocabEntry::boolean(Expr::var(i.intern("s__r"))).with_side(Side::Right);
        let with_cmp = compound_candidates(&[al, br, sl.clone(), sr.clone()], true);
        assert!(with_cmp
            .iter()
            .any(|c| c.ty == Ty::Bool && matches!(c.expr, Expr::Binary(BinOp::Ge, ..))));
        assert!(with_cmp
            .iter()
            .any(|c| c.expr == Expr::and(sl.expr.clone(), sr.expr.clone())));
        assert!(with_cmp
            .iter()
            .any(|c| matches!(c.expr, Expr::Unary(UnOp::Not, _))));
    }
}
