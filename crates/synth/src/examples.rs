//! Randomized example generation for bounded verification.
//!
//! The synthesizer's correctness oracle is the reference interpreter:
//! for the join we check `h(x • y) = h(x) ⊙ h(y)` on random inputs and
//! split points; for the merge we check `𝒢(d)(δ) = d ⊚ 𝒢(0̸)(δ)` with
//! `d` drawn from *reachable* states (prefix runs), the states a real
//! execution can present to the operator.

use parsynt_lang::error::Result;
use parsynt_lang::functional::{InnerResult, RightwardFn};
use parsynt_lang::interp::StateVec;
use parsynt_lang::{Ty, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Shape and value distribution for generated inputs.
///
/// Row widths (and plane depths) are uniform within one generated value,
/// matching the paper's rectangular multidimensional arrays.
#[derive(Debug, Clone)]
pub struct InputProfile {
    /// Range of the outer dimension (number of rows), inclusive.
    pub rows: (usize, usize),
    /// Range of the second dimension (row width), inclusive.
    pub cols: (usize, usize),
    /// Range of the third dimension, inclusive.
    pub depth: (usize, usize),
    /// Scalar element values are drawn from this list if non-empty …
    pub choices: Vec<i64>,
    /// … otherwise uniformly from this inclusive range.
    pub value_range: (i64, i64),
}

impl Default for InputProfile {
    fn default() -> Self {
        InputProfile {
            rows: (2, 6),
            cols: (1, 4),
            depth: (1, 3),
            choices: Vec::new(),
            value_range: (-4, 4),
        }
    }
}

impl InputProfile {
    /// Profile drawing scalar values from an explicit set (e.g. `{-1, 1}`
    /// for bracket benchmarks).
    pub fn with_choices(mut self, choices: &[i64]) -> Self {
        self.choices = choices.to_vec();
        self
    }

    /// Override the value range.
    pub fn with_value_range(mut self, lo: i64, hi: i64) -> Self {
        self.value_range = (lo, hi);
        self
    }

    /// Override the row-count range.
    pub fn with_rows(mut self, lo: usize, hi: usize) -> Self {
        self.rows = (lo, hi);
        self
    }

    /// Override the column-count range.
    pub fn with_cols(mut self, lo: usize, hi: usize) -> Self {
        self.cols = (lo, hi);
        self
    }

    fn scalar(&self, rng: &mut SmallRng) -> i64 {
        if self.choices.is_empty() {
            rng.gen_range(self.value_range.0..=self.value_range.1)
        } else {
            self.choices[rng.gen_range(0..self.choices.len())]
        }
    }

    /// Generate a random value of (sequence) type `ty` with `rows` outer
    /// elements; inner dimensions are drawn from the profile but uniform
    /// within the value.
    pub fn generate_with_rows(&self, rng: &mut SmallRng, ty: &Ty, rows: usize) -> Value {
        let m = rng.gen_range(self.cols.0..=self.cols.1);
        let l = rng.gen_range(self.depth.0..=self.depth.1);
        self.gen_dim(rng, ty, rows, m, l)
    }

    /// Generate a random value of type `ty` with all dimensions drawn
    /// from the profile.
    pub fn generate(&self, rng: &mut SmallRng, ty: &Ty) -> Value {
        let n = rng.gen_range(self.rows.0..=self.rows.1);
        self.generate_with_rows(rng, ty, n)
    }

    /// Dimensions shift one position per nesting level: the outer level
    /// gets `n` elements, the next `m`, the next `l`.
    fn gen_dim(&self, rng: &mut SmallRng, ty: &Ty, n: usize, m: usize, l: usize) -> Value {
        match ty {
            Ty::Int => Value::Int(self.scalar(rng)),
            Ty::Bool => Value::Bool(rng.gen_bool(0.5)),
            Ty::Seq(elem) => Value::Seq((0..n).map(|_| self.gen_dim(rng, elem, m, l, 1)).collect()),
        }
    }
}

/// One bounded-verification example for the join `⊙`:
/// `whole = join(left, right)` must hold.
#[derive(Debug, Clone)]
pub struct JoinExample {
    /// `h(x)` — the state after the left chunk.
    pub left: StateVec,
    /// `h(y)` — the state after the right chunk.
    pub right: StateVec,
    /// `h(x • y)` — the state after the whole input.
    pub whole: StateVec,
}

/// One bounded-verification example for the merge `⊚`:
/// `expected = merge(state, inner)` must hold.
#[derive(Debug, Clone)]
pub struct MergeExample {
    /// `d` — a reachable intermediate state of the outer loop.
    pub state: StateVec,
    /// `𝒢(0̸)(δ)` — the inner nest's result from the initial state.
    pub inner: InnerResult,
    /// `d ⊕ δ` — the state after one full outer iteration from `d`.
    pub expected: StateVec,
}

/// Generate random full inputs for a program (one value per declared
/// input, the main input with at least 2 rows so it can be split).
pub fn random_inputs(
    f: &RightwardFn<'_>,
    profile: &InputProfile,
    rng: &mut SmallRng,
) -> Vec<Value> {
    let program = f.program();
    program
        .inputs
        .iter()
        .enumerate()
        .map(|(idx, decl)| {
            if idx == f.main_input() {
                let n = rng.gen_range(profile.rows.0.max(2)..=profile.rows.1.max(2));
                profile.generate_with_rows(rng, &decl.ty, n)
            } else {
                profile.generate(rng, &decl.ty)
            }
        })
        .collect()
}

/// Build `count` join examples from random inputs and split points.
///
/// # Errors
///
/// Propagates interpreter failures (e.g. a program that indexes out of
/// bounds on some generated input).
pub fn join_examples(
    f: &RightwardFn<'_>,
    profile: &InputProfile,
    rng: &mut SmallRng,
    count: usize,
) -> Result<Vec<JoinExample>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let inputs = random_inputs(f, profile, rng);
        let n = inputs[f.main_input()].len().unwrap_or(0);
        if n < 2 {
            continue;
        }
        let p = rng.gen_range(1..n);
        let left = f.apply_slice(&inputs, 0, p)?;
        let right = f.apply_slice(&inputs, p, n)?;
        let whole = f.apply(&inputs)?;
        out.push(JoinExample { left, right, whole });
    }
    Ok(out)
}

/// Build `count` merge examples: reachable prefix states `d`, one more
/// row `δ`, its from-zero inner result, and the true next state.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn merge_examples(
    f: &RightwardFn<'_>,
    profile: &InputProfile,
    rng: &mut SmallRng,
    count: usize,
) -> Result<Vec<MergeExample>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let inputs = random_inputs(f, profile, rng);
        let n = inputs[f.main_input()].len().unwrap_or(0);
        if n < 1 {
            continue;
        }
        // Pick the row to merge and use the prefix before it as `d`.
        // For i = 0 the prefix state is the declared initial state,
        // evaluated against the full input (state initializers may read
        // input shapes, e.g. `zeros(len(a[0]))`).
        let i = rng.gen_range(0..n);
        let state = if i == 0 {
            let env = parsynt_lang::interp::init_env(f.program(), &inputs)?;
            parsynt_lang::interp::read_state(f.program(), &env)?
        } else {
            f.apply_slice(&inputs, 0, i)?
        };
        let inner = f.inner_phase_from_zero(&inputs, i)?;
        let expected = f.outer_step(&inputs, i, &state)?;
        out.push(MergeExample {
            state,
            inner,
            expected,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;
    use rand::SeedableRng;

    #[test]
    fn generates_rectangular_2d_inputs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let profile = InputProfile::default();
        let v = profile.generate(&mut rng, &Ty::seq_n(Ty::Int, 2));
        let rows = v.as_seq().unwrap();
        assert!(!rows.is_empty());
        let w = rows[0].len().unwrap();
        assert!(
            rows.iter().all(|r| r.len() == Some(w)),
            "rows must be uniform"
        );
    }

    #[test]
    fn generates_choice_values_only() {
        let mut rng = SmallRng::seed_from_u64(2);
        let profile = InputProfile::default().with_choices(&[-1, 1]);
        let v = profile.generate(&mut rng, &Ty::seq(Ty::Int));
        for item in v.as_seq().unwrap() {
            assert!(matches!(item.as_int(), Some(-1 | 1)));
        }
    }

    #[test]
    fn join_examples_satisfy_slicing_identity() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let examples = join_examples(&f, &InputProfile::default(), &mut rng, 10).unwrap();
        assert_eq!(examples.len(), 10);
        for ex in &examples {
            // For sum, whole = left + right: sanity-check the oracle.
            let l = ex.left.scalar_named(&p, "s").unwrap();
            let r = ex.right.scalar_named(&p, "s").unwrap();
            let w = ex.whole.scalar_named(&p, "s").unwrap();
            assert_eq!(l + r, w);
        }
    }

    #[test]
    fn merge_examples_expected_matches_fold_step() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               s = max(s + row, 0);\n\
             }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let examples = merge_examples(&f, &InputProfile::default(), &mut rng, 10).unwrap();
        for ex in &examples {
            let d = ex.state.scalar_named(&p, "s").unwrap();
            let row = ex
                .inner
                .get(p.sym("row").unwrap())
                .unwrap()
                .as_int()
                .unwrap();
            let expected = ex.expected.scalar_named(&p, "s").unwrap();
            assert_eq!((d + row).max(0), expected);
        }
    }
}
