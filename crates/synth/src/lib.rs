//! # parsynt-synth
//!
//! Syntax-guided synthesis of the two operators ParSynt needs (§7 of
//! *Modular Divide-and-Conquer Parallelization of Nested Loops*):
//!
//! * the **parallel join** `⊙` with `h(x • y) = h(x) ⊙ h(y)` — step (I)
//!   of the Figure-7 schema ([`join`]), and
//! * the **memoryless merge** `⊚` with `𝒢(d)(δ) = d ⊚ 𝒢(0̸)(δ)` — step
//!   (II), loop summarization ([`merge`]); Prop. 7.2 reduces it to the
//!   same synthesis problem.
//!
//! The paper uses Rosette; offline, this crate substitutes an
//! **enumerative CEGIS** engine with the same search-space shaping:
//!
//! * sketches built from the loop body with every variable replaced by a
//!   hole ([`sketch`]), including *looped* sketches for array-shaped
//!   state (§7.1's extension);
//! * the weak-inverse restriction: hole candidates are drawn from the
//!   left/right states (constant-length inverse images), not arbitrary
//!   terms ([`vocab`]);
//! * bottom-up enumeration with observational-equivalence pruning as the
//!   fallback grammar ([`enumerate`]);
//! * bounded verification against the reference interpreter on randomized
//!   split inputs ([`examples`]), mirroring Rosette's bounded checks;
//! * hash-consed terms with per-probe memoized evaluation ([`intern`]),
//!   so structurally shared subterms are executed once, not once per
//!   candidate;
//! * optional parallel candidate screening ([`parallel`]): a scoped
//!   worker pool with first-verified-solution-wins and a deterministic
//!   minimum-index tie-break, enabled via
//!   [`SynthConfig::with_threads`].

pub mod enumerate;
pub mod examples;
pub mod intern;
pub mod join;
pub mod merge;
pub mod parallel;
pub mod report;
pub mod simplify;
pub mod sketch;
pub mod solver;
pub mod templates;
pub mod vocab;

pub use examples::{InputProfile, JoinExample, MergeExample};
pub use intern::{EvalCache, TermId, TermPool};
pub use join::{apply_join, synthesize_join, JoinResult, JoinVocab, SynthesizedJoin};
pub use merge::{apply_merge, synthesize_merge, MergeResult, MergeVocab, SynthesizedMerge};
pub use report::SynthConfig;
pub use vocab::{compound_candidates, VocabEntry};
