//! Synthesis of the memoryless merge operator `⊚` (§7.2) — step (II) of
//! the Figure-7 schema, i.e. loop summarization.
//!
//! Specification (Prop. 7.2): `∀d, δ. 𝒢(d)(δ) = d ⊚ 𝒢(0̸)(δ)` — running
//! the inner loop nest from an arbitrary outer state must be expressible
//! as a merge of that state with the inner nest's *from-zero* result.
//! A successful merge certifies the loop (lifts to) memoryless, removing
//! the "black arrow" dependencies of Figure 2(a) and enabling the
//! parallel map of Prop. 4.3.

use crate::examples::{merge_examples, InputProfile, MergeExample};
use crate::report::{SynthConfig, VarStats};
use crate::solver::{Case, CaseSet, VarSolver};
use crate::templates::collect_templates;
use crate::vocab::{constant_atoms, VocabEntry};
use parsynt_lang::analysis::analyze;
use parsynt_lang::ast::{Expr, Program, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::{InnerResult, RightwardFn};
use parsynt_lang::interp::{exec_stmts, read_state, Env, StateVec};
use parsynt_lang::pretty::stmt_to_string;
use parsynt_lang::Ty;
use parsynt_trace as trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A state variable's entry in the merge vocabulary.
#[derive(Debug, Clone)]
pub struct MergeVar {
    /// The state variable (holds the *evolving* merged value).
    pub sym: Sym,
    /// Symbol bound to the variable's pre-merge ("old", `d`) value.
    pub old: Sym,
    /// The variable's type.
    pub ty: Ty,
}

/// An inner accumulator's entry: its from-zero result is bound to `t`.
#[derive(Debug, Clone)]
pub struct MergeInner {
    /// The inner accumulator in the original program.
    pub orig: Sym,
    /// Symbol bound to the from-zero result `𝒢(0̸)(δ)` projection.
    pub t: Sym,
    /// Its type.
    pub ty: Ty,
}

/// The merge vocabulary.
#[derive(Debug, Clone)]
pub struct MergeVocab {
    /// State variables with their `__d` (old value) symbols.
    pub vars: Vec<MergeVar>,
    /// Inner accumulators with their `__t` symbols.
    pub inner: Vec<MergeInner>,
    /// Loop counter for looped merges.
    pub loop_var: Sym,
}

impl MergeVocab {
    /// Intern the vocabulary into `program`. `inner_vars` are the inner
    /// accumulators reported by the program's functional form.
    pub fn install(program: &mut Program, inner_vars: &[(Sym, Ty)]) -> MergeVocab {
        let state: Vec<(Sym, Ty, String)> = program
            .state
            .iter()
            .map(|d| (d.name, d.ty.clone(), program.name(d.name).to_owned()))
            .collect();
        let vars = state
            .into_iter()
            .map(|(sym, ty, name)| MergeVar {
                sym,
                old: program.interner.fresh(&format!("{name}__d")),
                ty,
            })
            .collect();
        let inner_named: Vec<(Sym, Ty, String)> = inner_vars
            .iter()
            .map(|(s, t)| (*s, t.clone(), program.name(*s).to_owned()))
            .collect();
        let inner = inner_named
            .into_iter()
            .map(|(orig, ty, name)| MergeInner {
                orig,
                t: program.interner.fresh(&format!("{name}__t")),
                ty,
            })
            .collect();
        let loop_var = program.interner.fresh("__jm");
        MergeVocab {
            vars,
            inner,
            loop_var,
        }
    }
}

/// A synthesized merge `⊚`: statements over the state variables (seeded
/// with `d`), their `__d` snapshots, and the `__t` from-zero results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesizedMerge {
    /// The merge body.
    pub stmts: Vec<Stmt>,
}

impl SynthesizedMerge {
    /// Render as surface syntax.
    pub fn render(&self, program: &Program) -> String {
        self.stmts
            .iter()
            .map(|s| stmt_to_string(&program.interner, s))
            .collect()
    }
}

/// Execute a synthesized merge: `d ⊚ t`.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn apply_merge(
    program: &Program,
    vocab: &MergeVocab,
    merge: &SynthesizedMerge,
    state: &StateVec,
    inner: &InnerResult,
) -> Result<StateVec> {
    let mut env = Env::for_program(program);
    for v in &vocab.vars {
        let val = state
            .get(v.sym)
            .ok_or_else(|| LangError::eval("merge: missing state value"))?;
        env.set(v.sym, val.clone());
        env.set(v.old, val.clone());
    }
    for iv in &vocab.inner {
        let val = inner
            .get(iv.orig)
            .ok_or_else(|| LangError::eval("merge: missing inner value"))?;
        env.set(iv.t, val.clone());
    }
    exec_stmts(&mut env, &merge.stmts)?;
    read_state(program, &env)
}

/// Outcome of merge synthesis.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// The synthesized merge, or `None` when no merge exists in the
    /// search space (the loop is not memoryless-liftable as-is; a
    /// memoryless lift must add inner accumulators first, §5.3).
    pub merge: Option<SynthesizedMerge>,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Per-variable statistics.
    pub stats: Vec<VarStats>,
    /// First unsolvable variable, if any.
    pub failed_var: Option<String>,
    /// Whether the merge required a loop.
    pub looped: bool,
    /// Whether the search stopped because the configured deadline
    /// expired (rather than because the space was exhausted).
    pub timed_out: bool,
}

fn merge_case(program: &Program, vocab: &MergeVocab, ex: &MergeExample) -> Result<Case> {
    let mut env = Env::for_program(program);
    for v in &vocab.vars {
        let val = ex
            .state
            .get(v.sym)
            .ok_or_else(|| LangError::eval("example missing state value"))?;
        env.set(v.sym, val.clone());
        env.set(v.old, val.clone());
    }
    for iv in &vocab.inner {
        let val = ex
            .inner
            .get(iv.orig)
            .ok_or_else(|| LangError::eval("example missing inner value"))?;
        env.set(iv.t, val.clone());
    }
    Ok(Case {
        env,
        expected: ex.expected.clone(),
    })
}

fn merge_atoms(vocab: &MergeVocab) -> (Vec<VocabEntry>, Vec<VocabEntry>) {
    use crate::vocab::Side;
    let mut scalar = constant_atoms();
    for v in &vocab.vars {
        if v.ty.is_scalar() {
            for (sym, side) in [(v.sym, Side::Current), (v.old, Side::Old)] {
                scalar.push(
                    VocabEntry::new(Expr::var(sym), v.ty.clone())
                        .with_side(side)
                        .with_var(v.sym),
                );
            }
        }
    }
    for iv in &vocab.inner {
        if iv.ty.is_scalar() {
            scalar.push(
                VocabEntry::new(Expr::var(iv.t), iv.ty.clone())
                    .with_side(Side::TField)
                    .with_var(iv.orig),
            );
        }
    }
    let mut looped = scalar.clone();
    looped.push(VocabEntry::int(Expr::var(vocab.loop_var)));
    for v in &vocab.vars {
        if let Ty::Seq(elem) = &v.ty {
            for (sym, side) in [(v.sym, Side::Current), (v.old, Side::Old)] {
                looped.push(
                    VocabEntry::new(
                        Expr::index(Expr::var(sym), Expr::var(vocab.loop_var)),
                        (**elem).clone(),
                    )
                    .with_side(side)
                    .with_var(v.sym),
                );
            }
        }
    }
    for iv in &vocab.inner {
        if let Ty::Seq(elem) = &iv.ty {
            looped.push(
                VocabEntry::new(
                    Expr::index(Expr::var(iv.t), Expr::var(vocab.loop_var)),
                    (**elem).clone(),
                )
                .with_side(Side::TField)
                .with_var(iv.orig),
            );
        }
    }
    (scalar, looped)
}

/// Origin-relatedness for merge holes (see the join analogue): `s`
/// prefers the state variables it is or flows into, projected to their
/// current/`__d` symbols and the matching `__t` inner projections.
fn merge_related(program: &Program, vocab: &MergeVocab) -> impl Fn(Sym) -> Vec<Sym> {
    let flow = parsynt_lang::analysis::assigned_from(program);
    let vocab = vocab.clone();
    move |s: Sym| {
        let mut out: Vec<Sym> = Vec::new();
        let push_var = |v: Sym, out: &mut Vec<Sym>| {
            if let Some(mv) = vocab.vars.iter().find(|mv| mv.sym == v) {
                for sym in [mv.sym, mv.old] {
                    if !out.contains(&sym) {
                        out.push(sym);
                    }
                }
            }
            if let Some(iv) = vocab.inner.iter().find(|iv| iv.orig == v) {
                if !out.contains(&iv.t) {
                    out.push(iv.t);
                }
            }
        };
        push_var(s, &mut out);
        if let Some(targets) = flow.get(&s) {
            for &v in targets {
                push_var(v, &mut out);
            }
        }
        out
    }
}

/// Synthesize the merge operator `⊚` for `program` (step (II), loop
/// summarization).
///
/// # Errors
///
/// Fails only on interpreter/program errors; an unsynthesizable merge is
/// reported as `merge: None`.
pub fn synthesize_merge(
    program: &mut Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<(MergeResult, MergeVocab)> {
    let start = Instant::now();
    let mut merge_span = trace::span("synthesize", "merge");
    merge_span.record("threads", cfg.threads);
    let inner_vars: Vec<(Sym, Ty)> = {
        let f = RightwardFn::new(program)?;
        f.inner_vars().to_vec()
    };
    let vocab = MergeVocab::install(program, &inner_vars);
    let program: &Program = program;
    let f = RightwardFn::new(program)?;
    let analysis = analyze(program);
    // The ⊚ budget is set by the depth of the *original* loop nest
    // (§7.2): an inner nest of depth n-1 affords a looped merge.
    let allow_loops = analysis.loop_depth >= 2;

    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let search = merge_examples(&f, profile, &mut rng, cfg.search_examples)?;
    let verify = merge_examples(&f, profile, &mut rng, cfg.verify_examples)?;
    let search_cases = search
        .iter()
        .map(|ex| merge_case(program, &vocab, ex))
        .collect::<Result<Vec<_>>>()?;
    let verify_cases = verify
        .iter()
        .map(|ex| merge_case(program, &vocab, ex))
        .collect::<Result<Vec<_>>>()?;

    let templates = collect_templates(&f);
    let template_of = |sym: Sym| {
        templates
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, t)| t.clone())
            .unwrap_or_default()
    };
    let ty_map: Vec<(Sym, Ty)> = program
        .state
        .iter()
        .map(|d| (d.name, d.ty.clone()))
        .chain(inner_vars.iter().cloned())
        .collect();
    let ty_of = move |sym: Sym| -> Option<Ty> {
        ty_map
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, t)| t.clone())
    };

    let loop_bound = vocab
        .vars
        .iter()
        .filter(|v| v.ty.is_seq())
        .map(|v| Expr::Len(Box::new(Expr::var(v.old))))
        .chain(
            vocab
                .inner
                .iter()
                .filter(|iv| iv.ty.is_seq())
                .map(|iv| Expr::Len(Box::new(Expr::var(iv.t)))),
        )
        .next()
        .unwrap_or(Expr::Int(0));
    let (scalar_atoms, loop_atoms) = merge_atoms(&vocab);
    let related = std::rc::Rc::new(merge_related(program, &vocab));

    // Outer CEGIS loop (see the join analogue): final-verification
    // counterexamples are promoted into the search set and solving
    // restarts.
    let mut extra_cases: Vec<Case> = Vec::new();
    let mut last_failure: Option<(Vec<VarStats>, String, bool)> = None;
    for attempt in 0..3u32 {
        if cfg.deadline.is_expired() {
            let (stats, _, looped) = last_failure.unwrap_or_default();
            merge_span.record("timed_out", true);
            return Ok((
                MergeResult {
                    merge: None,
                    elapsed: start.elapsed(),
                    stats,
                    failed_var: Some("<deadline>".to_owned()),
                    looped,
                    timed_out: true,
                },
                vocab,
            ));
        }
        trace::point(
            "synthesize",
            "cegis_round",
            &[
                ("operator", "merge".into()),
                ("round", attempt.into()),
                ("extra_examples", extra_cases.len().into()),
            ],
        );
        let mut search = search_cases.clone();
        search.extend(extra_cases.iter().cloned());
        let mut solver = VarSolver::new(
            program,
            vocab.loop_var,
            loop_bound.clone(),
            scalar_atoms.clone(),
            loop_atoms.clone(),
            CaseSet::new(search, verify_cases.clone()),
            related.clone(),
            cfg.clone(),
        );

        let mut solved: Vec<Stmt> = Vec::new();
        let mut deferred: Vec<Sym> = Vec::new();
        for sym in analysis.state_in_dependency_order() {
            let var_templates = template_of(sym);
            let is_array = program.state_decl(sym).is_some_and(|d| d.ty.is_seq());
            if is_array {
                deferred.push(sym);
                continue;
            }
            if !solver.solve_scalar(sym, &var_templates.scalar, &ty_of, &mut solved) {
                deferred.push(sym);
            }
        }

        let mut looped = false;
        let mut failed: Option<String> = None;
        if !deferred.is_empty() {
            if !allow_loops {
                failed = Some(program.name(deferred[0]).to_owned());
            } else {
                looped = true;
                for &sym in &deferred {
                    let var_templates = template_of(sym);
                    let is_array = program.state_decl(sym).is_some_and(|d| d.ty.is_seq());
                    let templates: Vec<Expr> = var_templates
                        .looped
                        .iter()
                        .chain(&var_templates.scalar)
                        .cloned()
                        .collect();
                    if !solver.solve_in_loop(sym, is_array, &templates, &ty_of) {
                        failed = Some(program.name(sym).to_owned());
                        break;
                    }
                }
                solver.finish_loop(&mut solved);
            }
        }

        if let Some(var) = failed {
            merge_span.record("failed_var", var.as_str());
            return Ok((
                MergeResult {
                    merge: None,
                    elapsed: start.elapsed(),
                    stats: solver.stats,
                    failed_var: Some(var),
                    looped,
                    timed_out: cfg.deadline.is_expired(),
                },
                vocab,
            ));
        }

        let merge = SynthesizedMerge {
            stmts: crate::simplify::simplify_stmts(&solved),
        };

        // Final bounded verification on fresh examples; failures become
        // new search cases.
        let final_examples = merge_examples(&f, profile, &mut rng, 150)?;
        let mut bad: Vec<Case> = Vec::new();
        {
            let mut verify_span = trace::span("verify", "merge_final_check");
            for ex in &final_examples {
                let got = apply_merge(program, &vocab, &merge, &ex.state, &ex.inner)?;
                if got != ex.expected {
                    bad.push(merge_case(program, &vocab, ex)?);
                }
            }
            verify_span.record("examples", final_examples.len());
            verify_span.record("counterexamples", bad.len());
        }
        if bad.is_empty() {
            trace::counter(
                "synthesize",
                "verify_promoted",
                solver.cases.promoted as u64,
            );
            merge_span.record("looped", looped);
            merge_span.record("tries", solver.total_tries());
            return Ok((
                MergeResult {
                    merge: Some(merge),
                    elapsed: start.elapsed(),
                    stats: solver.stats,
                    failed_var: None,
                    looped,
                    timed_out: false,
                },
                vocab,
            ));
        }
        extra_cases.extend(bad);
        last_failure = Some((solver.stats, "<final-verification>".to_owned(), looped));
    }
    let (stats, var, looped) = last_failure.unwrap_or_default();
    merge_span.record("failed_var", var.as_str());
    Ok((
        MergeResult {
            merge: None,
            elapsed: start.elapsed(),
            stats,
            failed_var: Some(var),
            looped,
            timed_out: cfg.deadline.is_expired(),
        },
        vocab,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    fn synth(src: &str) -> (Program, MergeResult, MergeVocab) {
        let mut p = parse(src).unwrap();
        let cfg = SynthConfig::default();
        let (result, vocab) = synthesize_merge(&mut p, &InputProfile::default(), &cfg).unwrap();
        (p, result, vocab)
    }

    #[test]
    fn memoryless_mbbs_merge_is_its_outer_body() {
        let (_, result, _) = synth(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               s = max(s + row, 0);\n\
             }",
        );
        let merge = result.merge.expect("memoryless loops always merge");
        assert!(!result.looped);
        assert_eq!(merge.stmts.len(), 1);
    }

    #[test]
    fn bp_without_lift_has_no_merge() {
        // Figure 3: bal needs min_offset, which does not exist yet.
        let (_, result, _) = synth(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
                 if (offset + lo < 0) { bal = false; }\n\
               }\n\
               offset = offset + lo;\n\
               if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
             }",
        );
        assert!(result.merge.is_none());
        assert_eq!(result.failed_var.as_deref(), Some("bal"));
    }

    #[test]
    fn bp_with_min_offset_lift_merges() {
        // Figure 4: after the memoryless lift adds min_offset (mo), the
        // merge exists: bal ⇐ bal && (offset_old + mo >= 0).
        let (_, result, _) = synth(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               let mo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
                 if (offset + lo < 0) { bal = false; }\n\
                 mo = min(mo, lo);\n\
               }\n\
               offset = offset + lo;\n\
               if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
             }",
        );
        assert!(result.merge.is_some(), "failed at {:?}", result.failed_var);
    }

    #[test]
    fn mtls_merge_is_the_zip_loop_of_figure_5b() {
        let (_, result, _) = synth(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }",
        );
        let merge = result.merge.expect("mtls summarizes with a zip merge");
        assert!(result.looped);
        assert!(matches!(merge.stmts.last(), Some(Stmt::For { .. })));
    }
}
