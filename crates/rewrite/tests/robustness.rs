//! Robustness tests of the normalizer: termination within budget on
//! pathological inputs and graceful behaviour at the search caps. The
//! paper's §8 complexity analysis bounds the search by a strictly
//! decreasing cost; these tests pin the engineering counterparts
//! (expansion caps, size caps) that keep the heuristic "lightning fast".

use parsynt_lang::ast::{BinOp, Expr, Interner, Sym};
use parsynt_rewrite::cost::{Phase1Cost, RecursiveCost};
use parsynt_rewrite::normalize::Normalizer;
use std::time::Instant;

/// A deeply nested alternating min/max/add tower over one state and many
/// input variables — lots of applicable rules at every node.
fn pathological(depth: usize) -> (Expr, Sym) {
    let mut interner = Interner::new();
    let s = interner.intern("s");
    let mut e = Expr::var(s);
    for i in 0..depth {
        let x = Expr::var(interner.intern(&format!("x{i}")));
        e = match i % 3 {
            0 => Expr::max(Expr::add(e, x), Expr::int(0)),
            1 => Expr::min(Expr::add(e, x.clone()), Expr::sub(x, Expr::int(1))),
            _ => Expr::add(Expr::max(e, Expr::int(1)), x),
        };
    }
    (e, s)
}

#[test]
fn normalizer_terminates_quickly_on_deep_towers() {
    let (e, s) = pathological(24);
    let cost = Phase1Cost::new(move |x: Sym| x == s);
    let start = Instant::now();
    let out = Normalizer::new().run(&e, &cost);
    assert!(
        start.elapsed().as_secs() < 10,
        "normalization must stay fast; took {:?}",
        start.elapsed()
    );
    assert!(out.expansions <= 3000, "expansion cap respected");
}

#[test]
fn size_cap_prevents_blowup() {
    // Repeated distribution can double expression size; the size cap
    // must keep enqueued candidates bounded.
    let (e, s) = pathological(40);
    let cost = RecursiveCost::new(BinOp::Max, 3, move |x: Sym| x == s);
    let out = Normalizer::new().with_max_expansions(500).run(&e, &cost);
    assert!(out.best.size() <= 300, "result exceeds the size cap");
}

#[test]
fn zero_budget_returns_the_input() {
    let (e, s) = pathological(6);
    let cost = Phase1Cost::new(move |x: Sym| x == s);
    let out = Normalizer::new().with_max_expansions(0).run(&e, &cost);
    // With no expansions allowed, the (constant-folded) input is best.
    assert_eq!(out.expansions, 0);
    assert_eq!(out.best, parsynt_rewrite::rules::constant_fold(&e));
}

#[test]
fn determinism_across_runs_on_pathological_input() {
    let (e, s) = pathological(18);
    let cost = Phase1Cost::new(move |x: Sym| x == s);
    let a = Normalizer::new().run(&e, &cost);
    let b = Normalizer::new().run(&e, &cost);
    assert_eq!(a.best, b.best);
    assert_eq!(a.expansions, b.expansions);
}
