//! Property-based soundness tests for the rewrite engine: every rewrite
//! the normalizer performs must preserve the expression's value on all
//! environments — checked here on random expressions and random
//! valuations. A single unsound rule in `rules.rs` would make the
//! lifting algorithm synthesize wrong auxiliaries, so this is the
//! load-bearing test of the whole §8 substrate.

use parsynt_lang::ast::{BinOp, Expr, Sym};
use parsynt_lang::interp::{eval_expr, Env};
use parsynt_lang::Value;
use parsynt_rewrite::cost::{Phase1Cost, RecursiveCost};
use parsynt_rewrite::normalize::Normalizer;
use parsynt_rewrite::rules::constant_fold;
use proptest::prelude::*;

const NUM_VARS: u32 = 4;

/// Random integer expressions over variables `Sym(0..NUM_VARS)`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4i64..=4).prop_map(Expr::Int),
        (0u32..NUM_VARS).prop_map(|v| Expr::Var(Sym(v))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::min(a, b)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::ite(
                Expr::bin(BinOp::Lt, a, Expr::int(0)),
                b,
                c
            )),
        ]
    })
}

fn env_with(vals: &[i64]) -> Env {
    // A throwaway program to size the environment.
    let p = parsynt_lang::parse(
        "input q : seq<int>; state w : int = 0; for i in 0 .. len(q) { w = 0; }",
    )
    .unwrap();
    let mut env = Env::for_program(&p);
    for (i, &v) in vals.iter().enumerate() {
        env.set(Sym(i as u32), Value::Int(v));
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `constant_fold` preserves semantics.
    #[test]
    fn constant_fold_preserves_value(
        e in arb_expr(),
        vals in proptest::collection::vec(-10i64..=10, NUM_VARS as usize),
    ) {
        let env = env_with(&vals);
        let before = eval_expr(&env, &e).ok();
        let after = eval_expr(&env, &constant_fold(&e)).ok();
        prop_assert_eq!(before, after);
    }

    /// Phase-1 normalization preserves semantics (state var = Sym(0)).
    #[test]
    fn phase1_normalization_preserves_value(
        e in arb_expr(),
        vals in proptest::collection::vec(-10i64..=10, NUM_VARS as usize),
    ) {
        let cost = Phase1Cost::new(|s: Sym| s == Sym(0));
        let out = Normalizer::new().with_max_expansions(300).run(&e, &cost);
        let env = env_with(&vals);
        let before = eval_expr(&env, &e).ok();
        let after = eval_expr(&env, &out.best).ok();
        prop_assert_eq!(before, after, "normalized {:?} to {:?}", e, out.best);
    }

    /// Phase-2 normalization (max-recursive) preserves semantics.
    #[test]
    fn phase2_normalization_preserves_value(
        e in arb_expr(),
        vals in proptest::collection::vec(-10i64..=10, NUM_VARS as usize),
    ) {
        let cost = RecursiveCost::new(BinOp::Max, 3, |s: Sym| s == Sym(0));
        let out = Normalizer::new().with_max_expansions(200).run(&e, &cost);
        let env = env_with(&vals);
        let before = eval_expr(&env, &e).ok();
        let after = eval_expr(&env, &out.best).ok();
        prop_assert_eq!(before, after);
    }

    /// Normalization never increases the phase-1 cost.
    #[test]
    fn normalization_never_worsens_cost(e in arb_expr()) {
        let cost = Phase1Cost::new(|s: Sym| s == Sym(0));
        let out = Normalizer::new().with_max_expansions(300).run(&e, &cost);
        prop_assert!(out.best_cost <= parsynt_rewrite::cost::Cost::cost(&cost, &constant_fold(&e)));
    }
}
