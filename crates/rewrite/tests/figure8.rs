//! A faithful reconstruction of **Figure 8** of the paper: the
//! sequential unfolding of the (summarized) maximum top-left rectangle
//! loop, rewritten by the normalizer from the deep "sequential" tree (a)
//! into the compact max-recursive normal form (b) whose input-only
//! chunks are exactly the `max_rec[]` auxiliary values.
//!
//! The unfolding is built by actually symbolically executing the ⊚ loop
//! body over `k = 2` abstract rows of width `m = 2`, not hand-written —
//! so this test exercises symbolic execution, normalization and
//! normal-form detection together.

use parsynt_lang::ast::{BinOp, Expr, Interner, LValue, Stmt, Sym};
use parsynt_rewrite::cost::Phase1Cost;
use parsynt_rewrite::normal_form::{classify, recursive_nf, Purity};
use parsynt_rewrite::normalize::Normalizer;
use parsynt_rewrite::symbolic::{sym_exec_all, SymEnv, SymVal};

const M: usize = 2; // row width
const K: usize = 2; // unfolding depth

/// Build the summarized mtls step: `for j { rec[j] += a[j]; mtl =
/// max(mtl, rec[j]); }`, and unfold it symbolically over K abstract
/// rows.
fn unfold_mtl() -> (Expr, Vec<Sym>, Vec<Sym>) {
    let mut interner = Interner::new();
    let rec = interner.intern("rec");
    let mtl = interner.intern("mtl");
    let a = interner.intern("a");
    let j = interner.intern("j");

    let body = vec![Stmt::For {
        var: j,
        bound: Expr::Len(Box::new(Expr::var(rec))),
        body: vec![
            Stmt::Assign {
                target: LValue::indexed(rec, Expr::var(j)),
                value: Expr::add(
                    Expr::index(Expr::var(rec), Expr::var(j)),
                    Expr::index(Expr::var(a), Expr::var(j)),
                ),
            },
            Stmt::Assign {
                target: LValue::var(mtl),
                value: Expr::max(Expr::var(mtl), Expr::index(Expr::var(rec), Expr::var(j))),
            },
        ],
    }];

    // State leaves: rec[0..M] and mtl (the red variables of Figure 8).
    let mut env = SymEnv::new();
    let mut state_leaves = Vec::new();
    let rec_leaves: Vec<SymVal> = (0..M)
        .map(|l| {
            let leaf = interner.fresh(&format!("rec{l}"));
            state_leaves.push(leaf);
            SymVal::leaf(leaf)
        })
        .collect();
    env.set(rec, SymVal::Array(rec_leaves));
    let mtl_leaf = interner.fresh("mtl0");
    state_leaves.push(mtl_leaf);
    env.set(mtl, SymVal::leaf(mtl_leaf));

    // Input leaves: α_k[l] for each unfolding step.
    let mut input_leaves = Vec::new();
    for step in 1..=K {
        let alphas: Vec<SymVal> = (0..M)
            .map(|l| {
                let leaf = interner.fresh(&format!("alpha{step}_{l}"));
                input_leaves.push(leaf);
                SymVal::leaf(leaf)
            })
            .collect();
        env.set(a, SymVal::Array(alphas));
        sym_exec_all(&mut env, &body).expect("symbolic unfolding");
    }

    let SymVal::Scalar(mtl_expr) = env.get(mtl).unwrap().clone() else {
        panic!("mtl must be scalar");
    };
    (mtl_expr, state_leaves, input_leaves)
}

#[test]
fn figure8_unfolding_normalizes_to_max_recursive_form() {
    let (unfolding, state_leaves, _) = unfold_mtl();
    let is_state = move |s: Sym| state_leaves.contains(&s);

    // Tree (a): the raw unfolding is already max-recursive but with the
    // state variables buried deep (cost (0, km+1)-ish in the paper).
    let raw_chunks = recursive_nf(&unfolding, BinOp::Max, &is_state, 2);
    assert!(raw_chunks.is_some(), "raw unfolding: {unfolding:?}");

    // Phase 1 pulls the state shallow; the result must still be (or
    // re-become) a max-recursive normal form — tree (b).
    let cost = Phase1Cost::new({
        let is_state = is_state.clone();
        move |s| is_state(s)
    });
    let out = Normalizer::new().run(&unfolding, &cost);
    assert!(
        out.best_cost <= parsynt_rewrite::cost::Cost::cost(&cost, &unfolding),
        "phase 1 must not regress"
    );
    let chunks = recursive_nf(&out.best, BinOp::Max, &is_state, 3)
        .expect("normalized unfolding is max-recursive");
    // The paper's tree (b) has m+1 chunks for the 1-row case and stays
    // linear in m (not k·m) in general; with k = m = 2 the chunk count
    // must be at most the raw count.
    assert!(chunks <= raw_chunks.unwrap());
}

#[test]
fn figure8_chunks_contain_prefix_sum_auxiliaries() {
    let (unfolding, state_leaves, input_leaves) = unfold_mtl();
    let is_state = move |s: Sym| state_leaves.contains(&s);
    let cost = Phase1Cost::new({
        let is_state = is_state.clone();
        move |s| is_state(s)
    });
    let out = Normalizer::new().run(&unfolding, &cost);

    // Every maximal input-only subexpression of the normal form is a
    // term over the α leaves — the values max_rec[] must precompute.
    let mut input_only = Vec::new();
    collect_input_only(&out.best, &is_state, &mut input_only);
    assert!(
        !input_only.is_empty(),
        "the lifting needs at least one auxiliary value: {:?}",
        out.best
    );
    for e in &input_only {
        for v in e.vars() {
            assert!(input_leaves.contains(&v), "non-input leaf in {e:?}");
        }
    }
    // In particular the per-column prefix sums α₁[l] + α₂[l] appear
    // inside the chunks — in fact the normalizer produces the full
    // running maxima max(α₁[l], α₁[l] + α₂[l]), i.e. the `max_rec[l]`
    // values of Figure 8(b) themselves.
    let has_prefix_sum = input_only.iter().any(|e| {
        let mut found = false;
        e.walk(&mut |sub| {
            if matches!(sub, Expr::Binary(BinOp::Add, _, _)) && sub.vars().len() == 2 {
                found = true;
            }
        });
        found
    });
    assert!(has_prefix_sum, "input-only chunks: {input_only:?}");
}

fn collect_input_only(e: &Expr, is_state: &dyn Fn(Sym) -> bool, out: &mut Vec<Expr>) {
    match classify(e, is_state) {
        Purity::InputOnly => {
            if !matches!(e, Expr::Int(_) | Expr::Bool(_)) {
                out.push(e.clone());
            }
        }
        Purity::Mixed => match e {
            Expr::Len(a) | Expr::Zeros(a) | Expr::Unary(_, a) => {
                collect_input_only(a, is_state, out)
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                collect_input_only(a, is_state, out);
                collect_input_only(b, is_state, out);
            }
            Expr::Ite(c, t, e2) => {
                collect_input_only(c, is_state, out);
                collect_input_only(t, is_state, out);
                collect_input_only(e2, is_state, out);
            }
            _ => {}
        },
        _ => {}
    }
}
