//! The rewrite-rule set `R`: standard algebraic identities over the
//! expression language.
//!
//! Each [`Rule`] is a local transformation applicable at any subterm.
//! Rules come in both directions where useful (distribution *and*
//! factoring); the normalizer only applies a rule when it improves the
//! active cost function, which is what guarantees termination (§8.2).

use parsynt_lang::ast::{BinOp, Expr, UnOp};
use parsynt_lang::interp::eval_binop;
use parsynt_lang::Value;

/// A named local rewrite rule.
#[derive(Clone, Copy)]
pub struct Rule {
    /// Human-readable rule name (shows up in traces and tests).
    pub name: &'static str,
    /// Attempt the rewrite at the given node; `None` if inapplicable.
    pub apply: fn(&Expr) -> Vec<Expr>,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule").field("name", &self.name).finish()
    }
}

fn bin(op: BinOp, a: &Expr, b: &Expr) -> Expr {
    Expr::bin(op, a.clone(), b.clone())
}

/// Fold constant subexpressions bottom-up (`1 + 2 → 3`, `max(x, x) → x`
/// is *not* done here — only literal arithmetic and boolean identities).
pub fn constant_fold(e: &Expr) -> Expr {
    match e {
        Expr::Binary(op, a, b) => {
            let fa = constant_fold(a);
            let fb = constant_fold(b);
            let lit = |e: &Expr| -> Option<Value> {
                match e {
                    Expr::Int(n) => Some(Value::Int(*n)),
                    Expr::Bool(b) => Some(Value::Bool(*b)),
                    _ => None,
                }
            };
            if let (Some(va), Some(vb)) = (lit(&fa), lit(&fb)) {
                if let Ok(v) = eval_binop(*op, &va, &vb) {
                    return match v {
                        Value::Int(n) => Expr::Int(n),
                        Value::Bool(b) => Expr::Bool(b),
                        Value::Seq(_) => Expr::bin(*op, fa, fb),
                    };
                }
            }
            // Unit and idempotence simplifications keep rewrite products
            // from growing spuriously (e.g. `0 + a` after distribution).
            match (op, &fa, &fb) {
                (BinOp::Add, Expr::Int(0), _) => return fb,
                (BinOp::Add, _, Expr::Int(0)) | (BinOp::Sub, _, Expr::Int(0)) => return fa,
                (BinOp::Mul, Expr::Int(1), _) => return fb,
                (BinOp::Mul, _, Expr::Int(1)) => return fa,
                (BinOp::Mul, Expr::Int(0), _) | (BinOp::Mul, _, Expr::Int(0)) => {
                    return Expr::Int(0)
                }
                (BinOp::And, Expr::Bool(true), _) => return fb,
                (BinOp::And, _, Expr::Bool(true)) => return fa,
                (BinOp::And, Expr::Bool(false), _) | (BinOp::And, _, Expr::Bool(false)) => {
                    return Expr::Bool(false)
                }
                (BinOp::Or, Expr::Bool(false), _) => return fb,
                (BinOp::Or, _, Expr::Bool(false)) => return fa,
                (BinOp::Or, Expr::Bool(true), _) | (BinOp::Or, _, Expr::Bool(true)) => {
                    return Expr::Bool(true)
                }
                (BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or, a2, b2) if a2 == b2 => {
                    return fa
                }
                (BinOp::Sub, a2, b2) if a2 == b2 => return Expr::Int(0),
                _ => {}
            }
            Expr::bin(*op, fa, fb)
        }
        Expr::Unary(op, a) => {
            let fa = constant_fold(a);
            match (op, &fa) {
                (UnOp::Neg, Expr::Int(n)) => Expr::Int(n.wrapping_neg()),
                (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                _ => Expr::Unary(*op, Box::new(fa)),
            }
        }
        Expr::Ite(c, t, e2) => {
            let fc = constant_fold(c);
            match fc {
                Expr::Bool(true) => constant_fold(t),
                Expr::Bool(false) => constant_fold(e2),
                _ => Expr::ite(fc, constant_fold(t), constant_fold(e2)),
            }
        }
        Expr::Index(a, b) => Expr::index(constant_fold(a), constant_fold(b)),
        Expr::Len(a) => Expr::Len(Box::new(constant_fold(a))),
        Expr::Zeros(a) => Expr::Zeros(Box::new(constant_fold(a))),
        _ => e.clone(),
    }
}

// ---------------------------------------------------------------------
// Individual rules. Each returns every way it applies at the root node.
// ---------------------------------------------------------------------

fn identities(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op, a, b) = e {
        match op {
            BinOp::Add => {
                if **a == Expr::Int(0) {
                    out.push((**b).clone());
                }
                if **b == Expr::Int(0) {
                    out.push((**a).clone());
                }
            }
            BinOp::Sub => {
                if **b == Expr::Int(0) {
                    out.push((**a).clone());
                }
                if a == b {
                    out.push(Expr::Int(0));
                }
            }
            BinOp::Mul => {
                if **a == Expr::Int(1) {
                    out.push((**b).clone());
                }
                if **b == Expr::Int(1) {
                    out.push((**a).clone());
                }
                if **a == Expr::Int(0) || **b == Expr::Int(0) {
                    out.push(Expr::Int(0));
                }
            }
            BinOp::Min | BinOp::Max if a == b => {
                out.push((**a).clone());
            }
            BinOp::And => {
                if **a == Expr::Bool(true) {
                    out.push((**b).clone());
                }
                if **b == Expr::Bool(true) {
                    out.push((**a).clone());
                }
                if **a == Expr::Bool(false) || **b == Expr::Bool(false) {
                    out.push(Expr::Bool(false));
                }
                if a == b {
                    out.push((**a).clone());
                }
            }
            BinOp::Or => {
                if **a == Expr::Bool(false) {
                    out.push((**b).clone());
                }
                if **b == Expr::Bool(false) {
                    out.push((**a).clone());
                }
                if **a == Expr::Bool(true) || **b == Expr::Bool(true) {
                    out.push(Expr::Bool(true));
                }
                if a == b {
                    out.push((**a).clone());
                }
            }
            _ => {}
        }
    }
    if let Expr::Unary(UnOp::Not, inner) = e {
        if let Expr::Unary(UnOp::Not, x) = inner.as_ref() {
            out.push((**x).clone());
        }
    }
    if let Expr::Ite(c, t, e2) = e {
        if t == e2 {
            out.push((**t).clone());
        }
        match c.as_ref() {
            Expr::Bool(true) => out.push((**t).clone()),
            Expr::Bool(false) => out.push((**e2).clone()),
            _ => {}
        }
    }
    out
}

/// `max(a,b) + c → max(a+c, b+c)` (and min, and the mirrored operand
/// order). This is the key distribution used in Figure 8 of the paper.
fn distribute_add_over_minmax(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(BinOp::Add, a, b) = e {
        for (mm, other) in [(a, b), (b, a)] {
            if let Expr::Binary(op @ (BinOp::Min | BinOp::Max), x, y) = mm.as_ref() {
                out.push(Expr::bin(
                    *op,
                    bin(BinOp::Add, x, other),
                    bin(BinOp::Add, y, other),
                ));
            }
        }
    }
    // Subtraction distributes on the left: max(x,y) - c → max(x-c, y-c).
    if let Expr::Binary(BinOp::Sub, a, c) = e {
        if let Expr::Binary(op @ (BinOp::Min | BinOp::Max), x, y) = a.as_ref() {
            out.push(Expr::bin(*op, bin(BinOp::Sub, x, c), bin(BinOp::Sub, y, c)));
        }
    }
    out
}

/// Factoring (the reverse direction): `max(a+c, b+c) → max(a,b) + c`,
/// including all four operand arrangements of the shared term.
fn factor_add_from_minmax(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op @ (BinOp::Min | BinOp::Max), l, r) = e {
        if let (Expr::Binary(BinOp::Add, a, b), Expr::Binary(BinOp::Add, c, d)) =
            (l.as_ref(), r.as_ref())
        {
            let combos: [(&Expr, &Expr, &Expr, &Expr); 4] =
                [(a, b, c, d), (a, b, d, c), (b, a, c, d), (b, a, d, c)];
            for (shared, rest_l, cand, rest_r) in combos {
                if shared == cand {
                    out.push(Expr::add(
                        shared.clone(),
                        Expr::bin(*op, rest_l.clone(), rest_r.clone()),
                    ));
                }
            }
        }
        // max(a + c, c) → c + max(a, 0)
        for (sum, lone) in [(l, r), (r, l)] {
            if let Expr::Binary(BinOp::Add, a, b) = sum.as_ref() {
                for (shared, rest) in [(a, b), (b, a)] {
                    if shared == lone {
                        out.push(Expr::add(
                            (**shared).clone(),
                            Expr::bin(*op, (**rest).clone(), Expr::Int(0)),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// `c + (b ? x : y) → b ? c+x : c+y` and the analogous pull for any
/// integer binary operator; plus the factoring direction.
fn distribute_over_ite(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op, a, b) = e {
        if op.int_args() && op.result_ty() == parsynt_lang::Ty::Int {
            for (ite_side, other, ite_left) in [(a, b, true), (b, a, false)] {
                if let Expr::Ite(c, t, el) = ite_side.as_ref() {
                    let mk = |branch: &Expr| {
                        if ite_left {
                            bin(*op, branch, other)
                        } else {
                            bin(*op, other, branch)
                        }
                    };
                    out.push(Expr::ite((**c).clone(), mk(t), mk(el)));
                }
            }
        }
    }
    if let Expr::Ite(c, t, el) = e {
        // ite(c, a⊕x, a⊕y) → a ⊕ ite(c, x, y)
        if let (Expr::Binary(op1, a, x), Expr::Binary(op2, b, y)) = (t.as_ref(), el.as_ref()) {
            if op1 == op2 && a == b {
                out.push(Expr::bin(
                    *op1,
                    (**a).clone(),
                    Expr::ite((**c).clone(), (**x).clone(), (**y).clone()),
                ));
            }
        }
    }
    out
}

/// Associativity rotations in both directions for associative operators.
fn associativity(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op, a, b) = e {
        if op.is_associative() {
            if let Expr::Binary(op2, x, y) = a.as_ref() {
                if op2 == op {
                    out.push(Expr::bin(*op, (**x).clone(), bin(*op, y, b)));
                }
            }
            if let Expr::Binary(op2, x, y) = b.as_ref() {
                if op2 == op {
                    out.push(Expr::bin(*op, bin(*op, a, x), (**y).clone()));
                }
            }
        }
        // (a - b) - c → a - (b + c);  (a + b) - c → a + (b - c)
        if *op == BinOp::Sub {
            if let Expr::Binary(BinOp::Sub, x, y) = a.as_ref() {
                out.push(Expr::sub((**x).clone(), bin(BinOp::Add, y, b)));
            }
            if let Expr::Binary(BinOp::Add, x, y) = a.as_ref() {
                out.push(Expr::add((**x).clone(), bin(BinOp::Sub, y, b)));
            }
        }
    }
    out
}

/// Commutativity for commutative operators.
fn commutativity(e: &Expr) -> Vec<Expr> {
    if let Expr::Binary(op, a, b) = e {
        if op.is_commutative() && a != b {
            return vec![bin(*op, b, a)];
        }
    }
    Vec::new()
}

/// Comparison normalization: `a + b >= c → a >= c - b` and friends.
/// These expose state variables at shallow depth in guard expressions.
fn isolate_in_comparison(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) = e {
        if let Expr::Binary(BinOp::Add, a, b) = l.as_ref() {
            out.push(Expr::bin(
                *op,
                (**a).clone(),
                Expr::sub((**r).clone(), (**b).clone()),
            ));
            out.push(Expr::bin(
                *op,
                (**b).clone(),
                Expr::sub((**r).clone(), (**a).clone()),
            ));
        }
        if let Expr::Binary(BinOp::Add, a, b) = r.as_ref() {
            out.push(Expr::bin(
                *op,
                Expr::sub((**l).clone(), (**b).clone()),
                (**a).clone(),
            ));
            out.push(Expr::bin(
                *op,
                Expr::sub((**l).clone(), (**a).clone()),
                (**b).clone(),
            ));
        }
    }
    out
}

/// Boolean distribution: `(a && b) || (a && c) → a && (b || c)` and the
/// distribution direction.
fn bool_algebra(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(BinOp::Or, l, r) = e {
        if let (Expr::Binary(BinOp::And, a, b), Expr::Binary(BinOp::And, c, d)) =
            (l.as_ref(), r.as_ref())
        {
            let combos: [(&Expr, &Expr, &Expr, &Expr); 4] =
                [(a, b, c, d), (a, b, d, c), (b, a, c, d), (b, a, d, c)];
            for (shared, rest_l, cand, rest_r) in combos {
                if shared == cand {
                    out.push(Expr::and(
                        shared.clone(),
                        Expr::or(rest_l.clone(), rest_r.clone()),
                    ));
                }
            }
        }
    }
    if let Expr::Binary(BinOp::And, a, b) = e {
        if let Expr::Binary(BinOp::Or, x, y) = b.as_ref() {
            out.push(Expr::or(bin(BinOp::And, a, x), bin(BinOp::And, a, y)));
        }
    }
    out
}

/// `min(a, b) ⊕ comparison` fusions: `min(a,b) >= c → a >= c && b >= c`
/// and `max(a,b) >= c → a >= c || b >= c`. These rewrite "tracked
/// minimum" guards, the shape that appears in the balanced-parentheses
/// lift (§2.1).
fn minmax_comparisons(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Expr::Binary(op @ (BinOp::Ge | BinOp::Gt), l, r) = e {
        if let Expr::Binary(BinOp::Min, a, b) = l.as_ref() {
            out.push(Expr::and(bin(*op, a, r), bin(*op, b, r)));
        }
        if let Expr::Binary(BinOp::Max, a, b) = l.as_ref() {
            out.push(Expr::or(bin(*op, a, r), bin(*op, b, r)));
        }
    }
    if let Expr::Binary(BinOp::And, l, r) = e {
        // a >= c && b >= c → min(a,b) >= c  (factoring direction)
        if let (Expr::Binary(op1 @ (BinOp::Ge | BinOp::Gt), a, c1), Expr::Binary(op2, b, c2)) =
            (l.as_ref(), r.as_ref())
        {
            if op1 == op2 && c1 == c2 {
                out.push(Expr::bin(
                    *op1,
                    Expr::min((**a).clone(), (**b).clone()),
                    (**c1).clone(),
                ));
            }
        }
    }
    out
}

/// The complete rule set `R`.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            name: "identities",
            apply: identities,
        },
        Rule {
            name: "distribute-add-minmax",
            apply: distribute_add_over_minmax,
        },
        Rule {
            name: "factor-add-minmax",
            apply: factor_add_from_minmax,
        },
        Rule {
            name: "distribute-ite",
            apply: distribute_over_ite,
        },
        Rule {
            name: "associativity",
            apply: associativity,
        },
        Rule {
            name: "commutativity",
            apply: commutativity,
        },
        Rule {
            name: "isolate-comparison",
            apply: isolate_in_comparison,
        },
        Rule {
            name: "bool-algebra",
            apply: bool_algebra,
        },
        Rule {
            name: "minmax-comparison",
            apply: minmax_comparisons,
        },
    ]
}

/// Enumerate all single-step rewrites of `e`: each rule applied at each
/// position, with constant folding applied to every result.
pub fn single_step_rewrites(e: &Expr, rules: &[Rule]) -> Vec<Expr> {
    let mut counts = vec![0u64; rules.len()];
    single_step_rewrites_counted(e, rules, &mut counts)
}

/// Like [`single_step_rewrites`], but additionally counts how many
/// rewrites each rule produced: `counts[i]` is incremented once per
/// expression generated by `rules[i]`, at any position. `counts` must
/// have at least `rules.len()` entries.
pub fn single_step_rewrites_counted(e: &Expr, rules: &[Rule], counts: &mut [u64]) -> Vec<Expr> {
    let mut out = Vec::new();
    // Apply at root.
    for (i, rule) in rules.iter().enumerate() {
        for rewritten in (rule.apply)(e) {
            counts[i] += 1;
            out.push(constant_fold(&rewritten));
        }
    }
    // Apply in children via reconstruction.
    let mut with_child = |child: &Expr, rebuild: &dyn Fn(Expr) -> Expr| {
        for sub in single_step_rewrites_counted(child, rules, counts) {
            out.push(rebuild(sub));
        }
    };
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => {}
        Expr::Len(a) => with_child(a, &|x| Expr::Len(Box::new(x))),
        Expr::Zeros(a) => with_child(a, &|x| Expr::Zeros(Box::new(x))),
        Expr::Unary(op, a) => {
            let op = *op;
            with_child(a, &move |x| Expr::Unary(op, Box::new(x)));
        }
        Expr::Index(a, b) => {
            let (ac, bc) = (a.clone(), b.clone());
            with_child(a, &{
                let bc = bc.clone();
                move |x| Expr::index(x, (*bc).clone())
            });
            with_child(b, &move |x| Expr::index((*ac).clone(), x));
        }
        Expr::Binary(op, a, b) => {
            let op = *op;
            let (ac, bc) = (a.clone(), b.clone());
            with_child(a, &{
                let bc = bc.clone();
                move |x| Expr::bin(op, x, (*bc).clone())
            });
            with_child(b, &move |x| Expr::bin(op, (*ac).clone(), x));
        }
        Expr::Ite(c, t, el) => {
            let (cc, tc, ec) = (c.clone(), t.clone(), el.clone());
            with_child(c, &{
                let (tc, ec) = (tc.clone(), ec.clone());
                move |x| Expr::ite(x, (*tc).clone(), (*ec).clone())
            });
            with_child(t, &{
                let (cc, ec) = (cc.clone(), ec.clone());
                move |x| Expr::ite((*cc).clone(), x, (*ec).clone())
            });
            with_child(el, &move |x| Expr::ite((*cc).clone(), (*tc).clone(), x));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::Interner;

    fn vars() -> (Interner, Expr, Expr, Expr) {
        let mut i = Interner::new();
        let a = Expr::var(i.intern("a"));
        let b = Expr::var(i.intern("b"));
        let c = Expr::var(i.intern("c"));
        (i, a, b, c)
    }

    #[test]
    fn constant_folding() {
        let e = Expr::add(
            Expr::int(1),
            Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3)),
        );
        assert_eq!(constant_fold(&e), Expr::Int(7));
        let e = Expr::ite(Expr::Bool(true), Expr::int(1), Expr::int(2));
        assert_eq!(constant_fold(&e), Expr::Int(1));
    }

    #[test]
    fn distributes_add_over_max() {
        let (_, a, b, c) = vars();
        let e = Expr::add(Expr::max(a.clone(), b.clone()), c.clone());
        let rewrites = distribute_add_over_minmax(&e);
        assert!(rewrites.contains(&Expr::max(Expr::add(a.clone(), c.clone()), Expr::add(b, c))));
    }

    #[test]
    fn factors_shared_addend() {
        let (_, a, b, c) = vars();
        // max(c + a, c + b) → c + max(a, b)
        let e = Expr::max(
            Expr::add(c.clone(), a.clone()),
            Expr::add(c.clone(), b.clone()),
        );
        let rewrites = factor_add_from_minmax(&e);
        assert!(rewrites.contains(&Expr::add(c, Expr::max(a, b))));
    }

    #[test]
    fn factors_lone_shared_term() {
        let (_, a, _, c) = vars();
        // max(c + a, c) → c + max(a, 0)
        let e = Expr::max(Expr::add(c.clone(), a.clone()), c.clone());
        let rewrites = factor_add_from_minmax(&e);
        assert!(rewrites.contains(&Expr::add(c, Expr::max(a, Expr::int(0)))));
    }

    #[test]
    fn min_comparison_splits_into_conjunction() {
        let (_, a, b, c) = vars();
        let e = Expr::bin(BinOp::Ge, Expr::min(a.clone(), b.clone()), c.clone());
        let rewrites = minmax_comparisons(&e);
        assert!(rewrites.contains(&Expr::and(
            Expr::bin(BinOp::Ge, a, c.clone()),
            Expr::bin(BinOp::Ge, b, c)
        )));
    }

    #[test]
    fn single_step_explores_subterms() {
        let (_, a, b, c) = vars();
        // (max(a,b) + c) + 0: identity applies at root, distribution one level down.
        let e = Expr::add(
            Expr::add(Expr::max(a.clone(), b.clone()), c.clone()),
            Expr::int(0),
        );
        let steps = single_step_rewrites(&e, all_rules());
        assert!(steps.contains(&Expr::add(Expr::max(a.clone(), b.clone()), c.clone())));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Expr::Binary(BinOp::Add, l, _)
                if matches!(l.as_ref(), Expr::Binary(BinOp::Max, _, _) if l.size() > 3))));
    }

    #[test]
    fn ite_distribution_both_ways() {
        let (_, a, b, c) = vars();
        let cond = Expr::bin(BinOp::Gt, b.clone(), Expr::int(0));
        let e = Expr::add(a.clone(), Expr::ite(cond.clone(), b.clone(), c.clone()));
        let rewrites = distribute_over_ite(&e);
        assert_eq!(
            rewrites[0],
            Expr::ite(
                cond.clone(),
                Expr::add(a.clone(), b.clone()),
                Expr::add(a.clone(), c.clone())
            )
        );
        // And factoring back out:
        let refactored = distribute_over_ite(&rewrites[0]);
        assert!(refactored.contains(&e));
    }

    #[test]
    fn subtraction_reassociation() {
        let (_, a, b, c) = vars();
        let e = Expr::sub(Expr::sub(a.clone(), b.clone()), c.clone());
        let rewrites = associativity(&e);
        assert!(rewrites.contains(&Expr::sub(a, Expr::add(b, c))));
    }
}
