//! Detection of constant and ⊳-recursive normal forms (Definition 8.3).

use parsynt_lang::ast::{BinOp, Expr, Sym};

/// Variable purity of a subexpression with respect to the state/input
/// partition of the enclosing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// No variables at all.
    Constant,
    /// Only state variables (`exp_s` in the paper's normal form).
    StateOnly,
    /// Only input variables (`exp_i` — these become the auxiliary
    /// accumulators).
    InputOnly,
    /// Mixes state and input variables.
    Mixed,
}

impl Purity {
    fn join(self, other: Purity) -> Purity {
        use Purity::*;
        match (self, other) {
            (Constant, x) | (x, Constant) => x,
            (StateOnly, StateOnly) => StateOnly,
            (InputOnly, InputOnly) => InputOnly,
            _ => Mixed,
        }
    }
}

/// Classify an expression's variables: does it mention only state
/// variables, only input variables, both, or none?
pub fn classify(e: &Expr, is_state: &dyn Fn(Sym) -> bool) -> Purity {
    let mut purity = Purity::Constant;
    e.walk(&mut |sub| {
        if let Expr::Var(s) = sub {
            let p = if is_state(*s) {
                Purity::StateOnly
            } else {
                Purity::InputOnly
            };
            purity = purity.join(p);
        }
    });
    purity
}

/// The skeleton size of `e`: the number of nodes remaining after every
/// maximal *pure* subtree (state-only, input-only, or constant) is
/// collapsed into a single leaf.
pub fn skeleton_size(e: &Expr, is_state: &dyn Fn(Sym) -> bool) -> usize {
    if classify(e, is_state) != Purity::Mixed {
        return 0;
    }
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => 0,
        Expr::Len(a) | Expr::Zeros(a) | Expr::Unary(_, a) => 1 + skeleton_size(a, is_state),
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            1 + skeleton_size(a, is_state) + skeleton_size(b, is_state)
        }
        Expr::Ite(c, t, e2) => {
            1 + skeleton_size(c, is_state)
                + skeleton_size(t, is_state)
                + skeleton_size(e2, is_state)
        }
    }
}

/// Whether `e` is in *constant normal form*: a constant-size operator
/// skeleton `⊛` whose leaves are pure state-only or input-only
/// expressions. `max_skeleton` bounds the skeleton size (the paper
/// requires it constant, i.e. independent of the unfolding length `k`).
pub fn is_constant_nf(e: &Expr, is_state: &dyn Fn(Sym) -> bool, max_skeleton: usize) -> bool {
    skeleton_size(e, is_state) <= max_skeleton
}

/// Whether `e` is in ⊳-recursive normal form for operator `op`
/// (Definition 8.3): `e = ec | ec ⊳ e` with every `ec` in constant normal
/// form. Returns the number of constant-normal-form chunks, or `None`.
///
/// Since `⊳` is associative for every operator we guess, the check
/// flattens nested applications on both sides.
pub fn recursive_nf(
    e: &Expr,
    op: BinOp,
    is_state: &dyn Fn(Sym) -> bool,
    max_skeleton: usize,
) -> Option<usize> {
    let mut chunks = Vec::new();
    flatten(e, op, &mut chunks);
    if chunks
        .iter()
        .all(|c| is_constant_nf(c, is_state, max_skeleton))
    {
        Some(chunks.len())
    } else {
        None
    }
}

/// Flatten an associative operator application into its chunk list.
pub fn flatten<'e>(e: &'e Expr, op: BinOp, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary(o, a, b) if *o == op => {
            flatten(a, op, out);
            flatten(b, op, out);
        }
        other => out.push(other),
    }
}

/// Candidate `⊳` operators for the phase-2 guess, ordered by how close
/// to the root of `e` they occur (§8.2: "operators that appear near the
/// root of expression e are good candidates for ⊳").
pub fn candidate_recursion_ops(e: &Expr) -> Vec<BinOp> {
    let mut seen: Vec<(usize, BinOp)> = Vec::new();
    fn visit(e: &Expr, depth: usize, seen: &mut Vec<(usize, BinOp)>) {
        match e {
            Expr::Binary(op, a, b) => {
                if op.is_associative() {
                    match seen.iter_mut().find(|(_, o)| o == op) {
                        Some(entry) => entry.0 = entry.0.min(depth),
                        None => seen.push((depth, *op)),
                    }
                }
                visit(a, depth + 1, seen);
                visit(b, depth + 1, seen);
            }
            Expr::Len(a) | Expr::Zeros(a) | Expr::Unary(_, a) => visit(a, depth + 1, seen),
            Expr::Index(a, b) => {
                visit(a, depth + 1, seen);
                visit(b, depth + 1, seen);
            }
            Expr::Ite(c, t, e2) => {
                visit(c, depth + 1, seen);
                visit(t, depth + 1, seen);
                visit(e2, depth + 1, seen);
            }
            _ => {}
        }
    }
    visit(e, 0, &mut seen);
    seen.sort_by_key(|(d, _)| *d);
    seen.into_iter().map(|(_, op)| op).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::Interner;

    struct Setup {
        s: Expr,
        a1: Expr,
        a2: Expr,
        s_sym: Sym,
    }

    fn setup() -> Setup {
        let mut i = Interner::new();
        let s_sym = i.intern("s");
        Setup {
            s: Expr::var(s_sym),
            a1: Expr::var(i.intern("a1")),
            a2: Expr::var(i.intern("a2")),
            s_sym,
        }
    }

    #[test]
    fn classify_distinguishes_purities() {
        let st = setup();
        let is_state = |sym: Sym| sym == st.s_sym;
        assert_eq!(classify(&Expr::int(3), &is_state), Purity::Constant);
        assert_eq!(classify(&st.s, &is_state), Purity::StateOnly);
        assert_eq!(
            classify(&Expr::add(st.a1.clone(), st.a2.clone()), &is_state),
            Purity::InputOnly
        );
        assert_eq!(
            classify(&Expr::add(st.s.clone(), st.a1.clone()), &is_state),
            Purity::Mixed
        );
    }

    #[test]
    fn constant_nf_accepts_small_skeletons() {
        let st = setup();
        let is_state = |sym: Sym| sym == st.s_sym;
        // s + (a1 + a2): skeleton is one `+` node over two pure leaves.
        let e = Expr::add(st.s.clone(), Expr::add(st.a1.clone(), st.a2.clone()));
        assert_eq!(skeleton_size(&e, &is_state), 1);
        assert!(is_constant_nf(&e, &is_state, 4));
    }

    #[test]
    fn constant_nf_rejects_interleaved_state() {
        let st = setup();
        let is_state = |sym: Sym| sym == st.s_sym;
        // max(s + a1, 0) + a2 has the state buried under two mixed nodes —
        // still a small skeleton, but watch that the count is right.
        let e = Expr::add(
            Expr::max(Expr::add(st.s.clone(), st.a1.clone()), Expr::int(0)),
            st.a2.clone(),
        );
        assert_eq!(skeleton_size(&e, &is_state), 3);
        assert!(!is_constant_nf(&e, &is_state, 2));
    }

    #[test]
    fn recursive_nf_counts_chunks() {
        let st = setup();
        let is_state = |sym: Sym| sym == st.s_sym;
        // max(s + a1, max(a2, 0)) is a max-recursive NF with 2 chunks.
        let e = Expr::max(
            Expr::add(st.s.clone(), st.a1.clone()),
            Expr::max(st.a2.clone(), Expr::int(0)),
        );
        assert_eq!(recursive_nf(&e, BinOp::Max, &is_state, 2), Some(3));
    }

    #[test]
    fn recursive_nf_rejects_bad_chunks() {
        let st = setup();
        let is_state = |sym: Sym| sym == st.s_sym;
        // A chunk with a big mixed skeleton fails with max_skeleton = 1.
        let mixed = Expr::add(
            Expr::add(st.s.clone(), st.a1.clone()),
            Expr::max(Expr::add(st.s.clone(), st.a2.clone()), Expr::int(0)),
        );
        let e = Expr::max(mixed, Expr::int(0));
        assert_eq!(recursive_nf(&e, BinOp::Max, &is_state, 1), None);
    }

    #[test]
    fn candidate_ops_ordered_by_depth() {
        let st = setup();
        // max at root, + below.
        let e = Expr::max(Expr::add(st.s.clone(), st.a1.clone()), st.a2.clone());
        let ops = candidate_recursion_ops(&e);
        assert_eq!(ops[0], BinOp::Max);
        assert!(ops.contains(&BinOp::Add));
    }
}
