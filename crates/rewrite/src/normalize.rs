//! Cost-guided best-first normalization (§8.2).
//!
//! The paper's oracle `Normalize` is undecidable in general; this module
//! implements the heuristic: apply rules from `R` while they improve the
//! active cost function, searching best-first with a bounded number of
//! expansions.

use crate::cost::Cost;
use crate::rules::{constant_fold, single_step_rewrites_counted, Rule};
use parsynt_lang::ast::Expr;
use parsynt_trace as trace;
use parsynt_trace::Deadline;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Result of a normalization run.
#[derive(Debug, Clone)]
pub struct NormalizeOutcome<V> {
    /// The best (lowest-cost) expression found.
    pub best: Expr,
    /// Its cost.
    pub best_cost: V,
    /// How many search nodes were expanded.
    pub expansions: usize,
    /// Whether any rewrite improved on the input expression.
    pub improved: bool,
}

/// The normalizer configuration.
#[derive(Debug, Clone)]
pub struct Normalizer {
    rules: Vec<Rule>,
    /// Bound on search-node expansions (keeps the search sub-second, as
    /// in the paper's "lightning fast" lifting claim).
    pub max_expansions: usize,
    /// Expressions larger than this are not enqueued.
    pub max_expr_size: usize,
    /// Wall-clock budget; the best-first loop stops expanding once it
    /// expires and returns the best expression found so far.
    pub deadline: Deadline,
}

impl Default for Normalizer {
    fn default() -> Self {
        Normalizer {
            rules: crate::rules::all_rules().to_vec(),
            max_expansions: 3000,
            max_expr_size: 300,
            deadline: Deadline::none(),
        }
    }
}

impl Normalizer {
    /// A normalizer with the full rule set and default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the search budget.
    pub fn with_max_expansions(mut self, n: usize) -> Self {
        self.max_expansions = n;
        self
    }

    /// Bound the search by a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Run best-first search minimizing `cost` starting from `start`.
    pub fn run<C: Cost>(&self, start: &Expr, cost: &C) -> NormalizeOutcome<C::Val> {
        let mut pass_span = trace::span("normalize", "pass");
        let mut rule_counts = vec![0u64; self.rules.len()];
        let start = constant_fold(start);
        let start_cost = cost.cost(&start);
        let mut best = start.clone();
        let mut best_cost = start_cost.clone();

        // Priority queue keyed by cost (then insertion order for
        // determinism). `Reverse` turns the max-heap into a min-heap.
        let mut counter = 0usize;
        let mut heap: BinaryHeap<Reverse<(C::Val, usize)>> = BinaryHeap::new();
        let mut payload: Vec<Expr> = Vec::new();
        let mut visited: HashSet<Expr> = HashSet::new();

        visited.insert(start.clone());
        heap.push(Reverse((start_cost, counter)));
        payload.push(start);

        let mut expansions = 0usize;
        while let Some(Reverse((c, id))) = heap.pop() {
            if expansions >= self.max_expansions || self.deadline.is_expired() {
                break;
            }
            expansions += 1;
            let e = payload[id].clone();
            if c < best_cost {
                best_cost = c.clone();
                best = e.clone();
            }
            for next in single_step_rewrites_counted(&e, &self.rules, &mut rule_counts) {
                if next.size() > self.max_expr_size {
                    continue;
                }
                if visited.contains(&next) {
                    continue;
                }
                let next_cost = cost.cost(&next);
                // Only walk along non-worsening paths: the paper applies a
                // rule only when it improves the cost; allowing equal-cost
                // moves lets commutativity expose factoring opportunities.
                if next_cost > c {
                    continue;
                }
                visited.insert(next.clone());
                counter += 1;
                heap.push(Reverse((next_cost, counter)));
                payload.push(next);
            }
        }

        let improved = best_cost < cost.cost(&payload[0]);
        if pass_span.is_enabled() {
            for (rule, fired) in self.rules.iter().zip(&rule_counts) {
                if *fired > 0 {
                    trace::counter_with(
                        "normalize",
                        "rule_fired",
                        *fired,
                        &[("rule", rule.name.into())],
                    );
                }
            }
            pass_span.record("expansions", expansions);
            pass_span.record("improved", improved);
        }
        NormalizeOutcome {
            best,
            best_cost,
            expansions,
            improved,
        }
    }
}

/// Convenience wrapper: normalize `e` under `cost` with default bounds.
pub fn normalize<C: Cost>(e: &Expr, cost: &C) -> NormalizeOutcome<C::Val> {
    Normalizer::new().run(e, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Phase1Cost, RecursiveCost};
    use crate::normal_form::{is_constant_nf, recursive_nf};
    use parsynt_lang::ast::{BinOp, Expr, Interner, Sym};

    /// Build the 2-step unfolding of the mbbs loop body
    /// `s ↦ max(s + a, 0)`: `max(max(s + a1, 0) + a2, 0)`.
    fn mbbs_unfolding() -> (Sym, Expr, Expr, Expr) {
        let mut i = Interner::new();
        let s_sym = i.intern("s");
        let s = Expr::var(s_sym);
        let a1 = Expr::var(i.intern("a1"));
        let a2 = Expr::var(i.intern("a2"));
        let step1 = Expr::max(Expr::add(s, a1.clone()), Expr::int(0));
        let step2 = Expr::max(Expr::add(step1, a2.clone()), Expr::int(0));
        (s_sym, step2, a1, a2)
    }

    #[test]
    fn phase1_normalizes_mbbs_to_constant_nf() {
        let (s_sym, unfolding, _, _) = mbbs_unfolding();
        let is_state = move |x: Sym| x == s_sym;
        let cost = Phase1Cost::new(is_state);
        let out = normalize(&unfolding, &cost);
        // The result must be a constant normal form: state `s` appears
        // once, at shallow depth, added to a pure input expression.
        assert!(out.improved);
        assert!(
            is_constant_nf(&out.best, &|x| x == s_sym, 4),
            "not constant NF: {out:?}"
        );
        // Semantics preserved on a sample valuation: s=1, a1=-3, a2=2
        // original: max(max(1-3,0)+2, 0) = 2.
        let mut env = parsynt_lang::interp::Env::for_program(
            &parsynt_lang::parse(
                "input z : seq<int>; state q : int = 0;\n\
             for i in 0 .. len(z) { q = q + z[i]; }",
            )
            .unwrap(),
        );
        // Symbols s, a1, a2 were interned as 0, 1, 2 in a fresh interner.
        env.set(Sym(0), parsynt_lang::Value::Int(1));
        env.set(Sym(1), parsynt_lang::Value::Int(-3));
        env.set(Sym(2), parsynt_lang::Value::Int(2));
        let v = parsynt_lang::interp::eval_expr(&env, &out.best).unwrap();
        assert_eq!(v, parsynt_lang::Value::Int(2));
    }

    #[test]
    fn phase2_reaches_max_recursive_nf() {
        // An expression that is NOT constant-normalizable: interleaved
        // maxes like Figure 8. max(max(s + a1, a1), a2) style — here we
        // check the phase-2 cost can at least recognize and keep a
        // max-recursive NF.
        let mut i = Interner::new();
        let s_sym = i.intern("s");
        let s = Expr::var(s_sym);
        let a1 = Expr::var(i.intern("a1"));
        let a2 = Expr::var(i.intern("a2"));
        // max(max(s + a1, s + a1 + a2), a2):
        let e = Expr::max(
            Expr::max(
                Expr::add(s.clone(), a1.clone()),
                Expr::add(Expr::add(s.clone(), a1.clone()), a2.clone()),
            ),
            a2.clone(),
        );
        let cost = RecursiveCost::new(BinOp::Max, 2, move |x| x == s_sym);
        let out = normalize(&e, &cost);
        assert_eq!(out.best_cost.size, 0, "best: {:?}", out.best);
        assert!(recursive_nf(&out.best, BinOp::Max, &|x| x == s_sym, 2).is_some());
    }

    #[test]
    fn normalization_is_deterministic() {
        let (s_sym, unfolding, _, _) = mbbs_unfolding();
        let cost = Phase1Cost::new(move |x: Sym| x == s_sym);
        let a = normalize(&unfolding, &cost);
        let b = normalize(&unfolding, &cost);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn expansion_budget_is_respected() {
        let (s_sym, unfolding, _, _) = mbbs_unfolding();
        let cost = Phase1Cost::new(move |x: Sym| x == s_sym);
        let out = Normalizer::new()
            .with_max_expansions(5)
            .run(&unfolding, &cost);
        assert!(out.expansions <= 5);
    }

    #[test]
    fn already_normal_input_is_returned_unchanged_in_cost() {
        let mut i = Interner::new();
        let s_sym = i.intern("s");
        let e = Expr::add(Expr::var(s_sym), Expr::var(i.intern("a1")));
        let cost = Phase1Cost::new(move |x: Sym| x == s_sym);
        let out = normalize(&e, &cost);
        assert_eq!(out.best, e);
        assert!(!out.improved);
    }
}
