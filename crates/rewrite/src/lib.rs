//! # parsynt-rewrite
//!
//! The term-rewriting substrate behind ParSynt's automatic lifting (§8 of
//! *Modular Divide-and-Conquer Parallelization of Nested Loops*).
//!
//! Lifting reduces to **normalization**: the sequential unfolding of the
//! summarized loop (the left-hand side of Equation 3) is rewritten, using
//! standard algebraic identities, into a *constant normal form* or a
//! *⊳-recursive normal form* (Definition 8.3). The input-only
//! subexpressions of the normal form are exactly the auxiliary values the
//! parallel join needs.
//!
//! The crate provides:
//!
//! * [`rules`] — the rewrite-rule set `R` (distributivity, factoring,
//!   associativity/commutativity, identities, constant folding);
//! * [`cost`] — the phase-1 cost (state-variable occurrences/depth, from
//!   \[11\]) and the phase-2 cost `Cost⊳` (Definition 8.4);
//! * [`normalize`](mod@normalize) — cost-guided best-first normalization
//!   (two phases);
//! * [`normal_form`] — detection of constant and ⊳-recursive normal
//!   forms;
//! * [`symbolic`] — symbolic execution of loop bodies used to build the
//!   sequential unfolding that normalization operates on.

pub mod cost;
pub mod normal_form;
pub mod normalize;
pub mod rules;
pub mod symbolic;

pub use cost::{Cost, Phase1Cost, RecursiveCost};
pub use normal_form::{classify, is_constant_nf, recursive_nf, Purity};
pub use normalize::{normalize, NormalizeOutcome, Normalizer};
pub use rules::{all_rules, constant_fold, Rule};
