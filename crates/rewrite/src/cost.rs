//! Cost functions driving the two normalization phases (§8.2).

use crate::normal_form::{flatten, is_constant_nf};
use parsynt_lang::ast::{BinOp, Expr, Sym};
use std::cmp::Ordering;
use std::sync::Arc;

/// A cost function over expressions; the normalizer searches for an
/// expression minimizing it.
pub trait Cost {
    /// The (totally ordered) cost value.
    type Val: Ord + Clone + std::fmt::Debug;
    /// Compute the cost of `e`.
    fn cost(&self, e: &Expr) -> Self::Val;
}

/// Phase-1 cost, identical to the cost of \[11\]: drive the *state*
/// variables of the summarized loop to the lowest possible depth and the
/// fewest occurrences. Lexicographic `(Σ depth of state occurrences,
/// #state occurrences, expression size)`.
#[derive(Clone)]
pub struct Phase1Cost {
    is_state: Arc<dyn Fn(Sym) -> bool + Send + Sync>,
}

impl Phase1Cost {
    /// Build from a state-variable predicate.
    pub fn new(is_state: impl Fn(Sym) -> bool + Send + Sync + 'static) -> Self {
        Phase1Cost {
            is_state: Arc::new(is_state),
        }
    }
}

impl Cost for Phase1Cost {
    type Val = (usize, usize, usize);

    fn cost(&self, e: &Expr) -> Self::Val {
        let mut sum_depth = 0usize;
        let mut occurrences = 0usize;
        fn visit(
            e: &Expr,
            depth: usize,
            is_state: &dyn Fn(Sym) -> bool,
            sum_depth: &mut usize,
            occurrences: &mut usize,
        ) {
            match e {
                Expr::Var(s) if is_state(*s) => {
                    *sum_depth += depth;
                    *occurrences += 1;
                }
                Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => {}
                Expr::Len(a) | Expr::Zeros(a) | Expr::Unary(_, a) => {
                    visit(a, depth + 1, is_state, sum_depth, occurrences)
                }
                Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                    visit(a, depth + 1, is_state, sum_depth, occurrences);
                    visit(b, depth + 1, is_state, sum_depth, occurrences);
                }
                Expr::Ite(c, t, e2) => {
                    visit(c, depth + 1, is_state, sum_depth, occurrences);
                    visit(t, depth + 1, is_state, sum_depth, occurrences);
                    visit(e2, depth + 1, is_state, sum_depth, occurrences);
                }
            }
        }
        visit(
            e,
            1,
            self.is_state.as_ref(),
            &mut sum_depth,
            &mut occurrences,
        );
        (sum_depth, occurrences, e.size())
    }
}

/// The phase-2 cost value `Cost⊳(e) = (size, c⊳)` of Definition 8.4.
///
/// Ordering implements the paper's rule-application policy: smaller
/// non-normal `size` always wins; at `size == 0` (a full ⊳-recursive
/// normal form) *fewer* constant-normal-form chunks win; while `size > 0`
/// *more* chunks is progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecCostVal {
    /// Total size of subexpressions *not* in constant normal form.
    pub size: usize,
    /// Count of subexpressions in constant normal form.
    pub chunks: usize,
}

impl Ord for RecCostVal {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.size.cmp(&other.size) {
            Ordering::Equal if self.size == 0 => self.chunks.cmp(&other.chunks),
            Ordering::Equal => other.chunks.cmp(&self.chunks),
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for RecCostVal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Phase-2 cost `Cost⊳` relative to a guessed recursion operator `⊳`
/// (Definition 8.4).
#[derive(Clone)]
pub struct RecursiveCost {
    op: BinOp,
    max_skeleton: usize,
    is_state: Arc<dyn Fn(Sym) -> bool + Send + Sync>,
}

impl RecursiveCost {
    /// Build for recursion operator `op`; `max_skeleton` bounds what
    /// counts as a *constant* normal form chunk.
    pub fn new(
        op: BinOp,
        max_skeleton: usize,
        is_state: impl Fn(Sym) -> bool + Send + Sync + 'static,
    ) -> Self {
        RecursiveCost {
            op,
            max_skeleton,
            is_state: Arc::new(is_state),
        }
    }

    /// The recursion operator this cost is relative to.
    pub fn op(&self) -> BinOp {
        self.op
    }
}

impl Cost for RecursiveCost {
    type Val = RecCostVal;

    fn cost(&self, e: &Expr) -> Self::Val {
        let mut chunks_vec = Vec::new();
        flatten(e, self.op, &mut chunks_vec);
        let mut size = 0usize;
        let mut chunks = 0usize;
        for chunk in chunks_vec {
            if is_constant_nf(chunk, self.is_state.as_ref(), self.max_skeleton) {
                chunks += 1;
            } else {
                size += chunk.size();
            }
        }
        RecCostVal { size, chunks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::Interner;

    fn exprs() -> (Sym, Expr, Expr, Expr) {
        let mut i = Interner::new();
        let s = i.intern("s");
        (
            s,
            Expr::var(s),
            Expr::var(i.intern("a1")),
            Expr::var(i.intern("a2")),
        )
    }

    #[test]
    fn phase1_prefers_shallow_state() {
        let (s_sym, s, a1, a2) = exprs();
        let cost = Phase1Cost::new(move |x| x == s_sym);
        // max(max(s + a1, 0) + a2, 0): s at depth 5.
        let deep = Expr::max(
            Expr::add(
                Expr::max(Expr::add(s.clone(), a1.clone()), Expr::int(0)),
                a2.clone(),
            ),
            Expr::int(0),
        );
        // max(s + (a1 + a2), max(a2, 0)): s at depth 3.
        let shallow = Expr::max(
            Expr::add(s.clone(), Expr::add(a1, a2.clone())),
            Expr::max(a2, Expr::int(0)),
        );
        assert!(cost.cost(&shallow) < cost.cost(&deep));
    }

    #[test]
    fn rec_cost_zero_size_for_normal_form() {
        let (s_sym, s, a1, a2) = exprs();
        let cost = RecursiveCost::new(BinOp::Max, 2, move |x| x == s_sym);
        let nf = Expr::max(
            Expr::add(s, Expr::add(a1, a2.clone())),
            Expr::max(a2, Expr::int(0)),
        );
        let v = cost.cost(&nf);
        assert_eq!(v.size, 0);
        assert_eq!(v.chunks, 3);
    }

    #[test]
    fn rec_cost_ordering_follows_paper_policy() {
        // size dominates
        assert!(RecCostVal { size: 1, chunks: 5 } < RecCostVal { size: 2, chunks: 0 });
        // at equal positive size, more chunks is better (smaller cost)
        assert!(RecCostVal { size: 2, chunks: 3 } < RecCostVal { size: 2, chunks: 1 });
        // at size 0, fewer chunks is better
        assert!(RecCostVal { size: 0, chunks: 2 } < RecCostVal { size: 0, chunks: 4 });
    }

    #[test]
    fn rec_cost_counts_non_normal_size() {
        let (s_sym, s, a1, _) = exprs();
        let cost = RecursiveCost::new(BinOp::Max, 0, move |x| x == s_sym);
        // skeleton bound 0 means the mixed chunk s + a1 is non-normal.
        let e = Expr::max(Expr::add(s, a1), Expr::int(0));
        let v = cost.cost(&e);
        assert_eq!(v.size, 3);
        assert_eq!(v.chunks, 1);
    }
}
