//! Symbolic execution of loop bodies.
//!
//! Builds the *sequential unfolding* expressions (the left-hand side of
//! Equation 3 in §8.1) that normalization then rewrites: state variables
//! start as symbolic leaves, loop bodies are unrolled over concrete small
//! shapes, and every assignment composes expression trees. Conditionals
//! with symbolic guards fork the environment and merge with `Ite` nodes.

use crate::rules::constant_fold;
use parsynt_lang::ast::{Expr, LValue, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use std::collections::BTreeMap;

/// A symbolic value: an expression tree for scalars, or a vector of
/// symbolic values for (concretely shaped) sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVal {
    /// A scalar symbolic expression.
    Scalar(Expr),
    /// A sequence with a concrete length but symbolic elements.
    Array(Vec<SymVal>),
}

impl SymVal {
    /// A symbolic integer literal.
    pub fn int(n: i64) -> SymVal {
        SymVal::Scalar(Expr::Int(n))
    }

    /// A symbolic leaf variable.
    pub fn leaf(sym: Sym) -> SymVal {
        SymVal::Scalar(Expr::Var(sym))
    }

    /// The scalar expression, if this is a scalar.
    pub fn as_scalar(&self) -> Option<&Expr> {
        match self {
            SymVal::Scalar(e) => Some(e),
            SymVal::Array(_) => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[SymVal]> {
        match self {
            SymVal::Array(items) => Some(items),
            SymVal::Scalar(_) => None,
        }
    }
}

/// A symbolic environment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymEnv {
    vars: BTreeMap<Sym, SymVal>,
}

impl SymEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable.
    pub fn set(&mut self, sym: Sym, val: SymVal) {
        self.vars.insert(sym, val);
    }

    /// Read a variable.
    ///
    /// # Errors
    ///
    /// Fails if unbound.
    pub fn get(&self, sym: Sym) -> Result<&SymVal> {
        self.vars
            .get(&sym)
            .ok_or_else(|| LangError::eval(format!("symbolic: unbound variable #{}", sym.0)))
    }

    /// Remove a binding.
    pub fn unset(&mut self, sym: Sym) {
        self.vars.remove(&sym);
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &SymVal)> {
        self.vars.iter()
    }
}

/// Evaluate an expression symbolically.
///
/// # Errors
///
/// Fails on unbound variables, symbolic (non-constant) indices or loop
/// bounds, and ill-shaped operations (e.g. arithmetic on arrays).
pub fn sym_eval(env: &SymEnv, e: &Expr) -> Result<SymVal> {
    match e {
        Expr::Int(n) => Ok(SymVal::int(*n)),
        Expr::Bool(b) => Ok(SymVal::Scalar(Expr::Bool(*b))),
        Expr::Var(s) => env.get(*s).cloned(),
        Expr::Index(base, idx) => {
            let base_v = sym_eval(env, base)?;
            let idx_v = sym_eval(env, idx)?;
            let idx_e = idx_v
                .as_scalar()
                .ok_or_else(|| LangError::eval("symbolic: index is not a scalar"))?;
            // Indexing an *opaque* scalar (e.g. an input bound as a leaf)
            // yields a symbolic projection expression.
            if let SymVal::Scalar(base_e) = &base_v {
                return Ok(SymVal::Scalar(Expr::index(base_e.clone(), idx_e.clone())));
            }
            let Expr::Int(i) = constant_fold(idx_e) else {
                return Err(LangError::eval("symbolic: non-constant index"));
            };
            let items = base_v
                .as_array()
                .ok_or_else(|| LangError::eval("symbolic: indexing a scalar"))?;
            usize::try_from(i)
                .ok()
                .and_then(|i| items.get(i))
                .cloned()
                .ok_or_else(|| LangError::eval(format!("symbolic: index {i} out of bounds")))
        }
        Expr::Len(inner) => {
            let v = sym_eval(env, inner)?;
            match &v {
                SymVal::Array(items) => Ok(SymVal::int(items.len() as i64)),
                SymVal::Scalar(e) => Ok(SymVal::Scalar(Expr::Len(Box::new(e.clone())))),
            }
        }
        Expr::Zeros(n) => {
            let v = sym_eval(env, n)?;
            let Some(Expr::Int(n)) = v.as_scalar().map(constant_fold) else {
                return Err(LangError::eval("symbolic: non-constant `zeros` length"));
            };
            let n = usize::try_from(n)
                .map_err(|_| LangError::eval("symbolic: negative `zeros` length"))?;
            Ok(SymVal::Array(vec![SymVal::int(0); n]))
        }
        Expr::Unary(op, inner) => {
            let v = sym_eval(env, inner)?;
            let e = v
                .as_scalar()
                .ok_or_else(|| LangError::eval("symbolic: unary op on array"))?;
            Ok(SymVal::Scalar(constant_fold(&Expr::Unary(
                *op,
                Box::new(e.clone()),
            ))))
        }
        Expr::Binary(op, a, b) => {
            let va = sym_eval(env, a)?;
            let vb = sym_eval(env, b)?;
            match (va.as_scalar(), vb.as_scalar()) {
                (Some(ea), Some(eb)) => Ok(SymVal::Scalar(constant_fold(&Expr::bin(
                    *op,
                    ea.clone(),
                    eb.clone(),
                )))),
                _ => Err(LangError::eval("symbolic: binary op on arrays")),
            }
        }
        Expr::Ite(c, t, e2) => {
            let vc = sym_eval(env, c)?;
            let ec = vc
                .as_scalar()
                .ok_or_else(|| LangError::eval("symbolic: array condition"))?;
            match constant_fold(ec) {
                Expr::Bool(true) => sym_eval(env, t),
                Expr::Bool(false) => sym_eval(env, e2),
                cond => {
                    let vt = sym_eval(env, t)?;
                    let ve = sym_eval(env, e2)?;
                    match (vt.as_scalar(), ve.as_scalar()) {
                        (Some(et), Some(ee)) => Ok(SymVal::Scalar(constant_fold(&Expr::ite(
                            cond,
                            et.clone(),
                            ee.clone(),
                        )))),
                        _ => Err(LangError::eval("symbolic: array-valued `?:` branches")),
                    }
                }
            }
        }
    }
}

/// Execute a statement symbolically, mutating `env`.
///
/// # Errors
///
/// Same failure modes as [`sym_eval`]; additionally, loops with symbolic
/// bounds cannot be unrolled.
pub fn sym_exec(env: &mut SymEnv, stmt: &Stmt) -> Result<()> {
    match stmt {
        Stmt::Let { name, init, .. } => {
            let v = sym_eval(env, init)?;
            env.set(*name, v);
            Ok(())
        }
        Stmt::Assign { target, value } => {
            let v = sym_eval(env, value)?;
            sym_assign(env, target, v)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let vc = sym_eval(env, cond)?;
            let ec = vc
                .as_scalar()
                .ok_or_else(|| LangError::eval("symbolic: array condition"))?;
            match constant_fold(ec) {
                Expr::Bool(true) => sym_exec_all(env, then_branch),
                Expr::Bool(false) => sym_exec_all(env, else_branch),
                cond => {
                    let mut then_env = env.clone();
                    let mut else_env = env.clone();
                    sym_exec_all(&mut then_env, then_branch)?;
                    sym_exec_all(&mut else_env, else_branch)?;
                    *env = merge_envs(&cond, &then_env, &else_env)?;
                    Ok(())
                }
            }
        }
        Stmt::For { var, bound, body } => {
            let vb = sym_eval(env, bound)?;
            let Some(Expr::Int(n)) = vb.as_scalar().map(constant_fold) else {
                return Err(LangError::eval("symbolic: non-constant loop bound"));
            };
            for i in 0..n.max(0) {
                env.set(*var, SymVal::int(i));
                sym_exec_all(env, body)?;
            }
            env.unset(*var);
            Ok(())
        }
    }
}

/// Execute a statement list symbolically.
///
/// # Errors
///
/// Propagates the first failure.
pub fn sym_exec_all(env: &mut SymEnv, stmts: &[Stmt]) -> Result<()> {
    for stmt in stmts {
        sym_exec(env, stmt)?;
    }
    Ok(())
}

fn sym_assign(env: &mut SymEnv, target: &LValue, value: SymVal) -> Result<()> {
    if target.indices.is_empty() {
        env.set(target.base, value);
        return Ok(());
    }
    let mut idxs = Vec::new();
    for idx in &target.indices {
        let v = sym_eval(env, idx)?;
        let Some(Expr::Int(i)) = v.as_scalar().map(constant_fold) else {
            return Err(LangError::eval("symbolic: non-constant assignment index"));
        };
        idxs.push(i);
    }
    let mut current = env.get(target.base)?.clone();
    {
        let mut slot = &mut current;
        for &i in &idxs {
            let items = match slot {
                SymVal::Array(items) => items,
                SymVal::Scalar(_) => {
                    return Err(LangError::eval("symbolic: indexed assignment into scalar"))
                }
            };
            slot = usize::try_from(i)
                .ok()
                .and_then(|i| items.get_mut(i))
                .ok_or_else(|| LangError::eval(format!("symbolic: index {i} out of bounds")))?;
        }
        *slot = value;
    }
    env.set(target.base, current);
    Ok(())
}

/// Merge two post-branch environments under a symbolic condition:
/// differing scalars become `Ite(cond, then, else)`, arrays merge
/// elementwise.
fn merge_envs(cond: &Expr, then_env: &SymEnv, else_env: &SymEnv) -> Result<SymEnv> {
    let mut merged = SymEnv::new();
    for (sym, then_v) in then_env.iter() {
        match else_env.vars.get(sym) {
            None => {
                // Branch-local declaration; drop it.
            }
            Some(else_v) => {
                merged.set(*sym, merge_vals(cond, then_v, else_v)?);
            }
        }
    }
    Ok(merged)
}

fn merge_vals(cond: &Expr, a: &SymVal, b: &SymVal) -> Result<SymVal> {
    if a == b {
        return Ok(a.clone());
    }
    match (a, b) {
        (SymVal::Scalar(ea), SymVal::Scalar(eb)) => Ok(SymVal::Scalar(constant_fold(&Expr::ite(
            cond.clone(),
            ea.clone(),
            eb.clone(),
        )))),
        (SymVal::Array(xs), SymVal::Array(ys)) if xs.len() == ys.len() => {
            let items = xs
                .iter()
                .zip(ys)
                .map(|(x, y)| merge_vals(cond, x, y))
                .collect::<Result<Vec<_>>>()?;
            Ok(SymVal::Array(items))
        }
        _ => Err(LangError::eval(
            "symbolic: merging differently shaped values",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::ast::{BinOp, Interner};
    use parsynt_lang::lexer::Lexer;
    use parsynt_lang::parser::Parser;

    /// Parse an expression fragment (fresh interner).
    fn parse_expr(src: &str) -> Expr {
        let mut parser = Parser::new(Lexer::new(src).tokenize().unwrap());
        parser.parse_expr().unwrap()
    }

    #[test]
    fn scalar_assignment_composes_expressions() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let a = i.intern("a");
        let mut env = SymEnv::new();
        env.set(s, SymVal::leaf(s));
        env.set(a, SymVal::leaf(a));
        // s = max(s + a, 0)
        let stmt = Stmt::Assign {
            target: LValue::var(s),
            value: Expr::max(Expr::add(Expr::var(s), Expr::var(a)), Expr::int(0)),
        };
        sym_exec(&mut env, &stmt).unwrap();
        let got = env.get(s).unwrap().as_scalar().unwrap().clone();
        assert_eq!(
            got,
            Expr::max(Expr::add(Expr::var(s), Expr::var(a)), Expr::int(0))
        );
        // Run again: the unfolding nests.
        sym_exec(&mut env, &stmt).unwrap();
        let got2 = env.get(s).unwrap().as_scalar().unwrap().clone();
        assert_eq!(got2.size(), 9);
    }

    #[test]
    fn loop_unrolls_with_concrete_bound() {
        let mut i = Interner::new();
        let s = i.intern("s");
        let a = i.intern("arr");
        let j = i.intern("j");
        let mut env = SymEnv::new();
        env.set(s, SymVal::int(0));
        env.set(
            a,
            SymVal::Array(vec![
                SymVal::leaf(i.intern("x0")),
                SymVal::leaf(i.intern("x1")),
            ]),
        );
        // for j in 0..len(arr) { s = s + arr[j]; }
        let stmt = Stmt::For {
            var: j,
            bound: Expr::Len(Box::new(Expr::var(a))),
            body: vec![Stmt::Assign {
                target: LValue::var(s),
                value: Expr::add(Expr::var(s), Expr::index(Expr::var(a), Expr::var(j))),
            }],
        };
        sym_exec(&mut env, &stmt).unwrap();
        let got = env.get(s).unwrap().as_scalar().unwrap().clone();
        // The leading zero folds away: 0 + x0 + x1 = x0 + x1.
        let x0 = Expr::var(i.lookup("x0").unwrap());
        let x1 = Expr::var(i.lookup("x1").unwrap());
        assert_eq!(got, Expr::add(x0, x1));
    }

    #[test]
    fn symbolic_condition_merges_with_ite() {
        let mut i = Interner::new();
        let flag = i.intern("flag");
        let x = i.intern("x");
        let mut env = SymEnv::new();
        env.set(flag, SymVal::Scalar(Expr::Bool(true)));
        env.set(x, SymVal::leaf(x));
        // if (x < 0) { flag = false; }
        let stmt = Stmt::If {
            cond: Expr::bin(BinOp::Lt, Expr::var(x), Expr::int(0)),
            then_branch: vec![Stmt::Assign {
                target: LValue::var(flag),
                value: Expr::Bool(false),
            }],
            else_branch: vec![],
        };
        sym_exec(&mut env, &stmt).unwrap();
        let got = env.get(flag).unwrap().as_scalar().unwrap().clone();
        assert_eq!(
            got,
            Expr::ite(
                Expr::bin(BinOp::Lt, Expr::var(x), Expr::int(0)),
                Expr::Bool(false),
                Expr::Bool(true)
            )
        );
    }

    #[test]
    fn indexed_assignment_updates_symbolic_array() {
        let mut i = Interner::new();
        let rec = i.intern("rec");
        let v = i.intern("v");
        let mut env = SymEnv::new();
        env.set(rec, SymVal::Array(vec![SymVal::int(0), SymVal::int(0)]));
        env.set(v, SymVal::leaf(v));
        let stmt = Stmt::Assign {
            target: LValue::indexed(rec, Expr::int(1)),
            value: Expr::add(Expr::index(Expr::var(rec), Expr::int(1)), Expr::var(v)),
        };
        sym_exec(&mut env, &stmt).unwrap();
        let arr = env.get(rec).unwrap().as_array().unwrap().to_vec();
        assert_eq!(arr[0], SymVal::int(0));
        assert_eq!(arr[1], SymVal::Scalar(Expr::var(v)));
    }

    #[test]
    fn symbolic_loop_bound_is_rejected() {
        let mut i = Interner::new();
        let n = i.intern("n");
        let j = i.intern("j");
        let mut env = SymEnv::new();
        env.set(n, SymVal::leaf(n));
        let stmt = Stmt::For {
            var: j,
            bound: Expr::var(n),
            body: vec![],
        };
        assert!(sym_exec(&mut env, &stmt).is_err());
    }

    #[test]
    fn branch_local_lets_are_dropped_on_merge() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let t = i.intern("t");
        let mut env = SymEnv::new();
        env.set(x, SymVal::leaf(x));
        let stmt = Stmt::If {
            cond: Expr::bin(BinOp::Gt, Expr::var(x), Expr::int(0)),
            then_branch: vec![Stmt::Let {
                name: t,
                ty: parsynt_lang::Ty::Int,
                init: Expr::int(1),
            }],
            else_branch: vec![],
        };
        sym_exec(&mut env, &stmt).unwrap();
        assert!(env.get(t).is_err());
    }

    #[test]
    fn parse_expr_helper_smoke() {
        let e = parse_expr("1 + 2");
        assert_eq!(constant_fold(&e), Expr::Int(3));
    }
}
