//! Functional (rightward) form of a loop nest — Definition 4.1.
//!
//! A [`RightwardFn`] wraps a program whose body is an outermost loop over
//! the first dimension of a designated *main input*. It exposes the
//! operations the synthesis pipeline needs:
//!
//! * `f(σ)` — run on a whole input ([`RightwardFn::apply`]),
//! * `f` on a slice of the outer dimension ([`RightwardFn::apply_slice`]),
//!   which realizes `h(x)` and `h(y)` for the homomorphism check
//!   `h(x • y) = h(x) ⊙ h(y)`,
//! * one fold step `s ⊕ a` ([`RightwardFn::outer_step`]),
//! * the inner loop nest in isolation, `𝒢(d)(δ)` and `𝒢(0̸)(δ)`
//!   ([`RightwardFn::inner_phase`]), which drive the memorylessness test
//!   and the synthesis of the merge operator `⊚` (Prop. 7.2).

use crate::ast::{Expr, Program, Stmt, Sym};
use crate::error::{LangError, Result};
use crate::interp::{exec_stmts, init_env, read_state, Env, StateVec};
use crate::ty::Ty;
use crate::value::Value;

/// The result of running the inner phase of one outer iteration: the
/// valuation of the inner accumulators (`let` variables) and of any outer
/// state variables the inner nest writes. This is the `t_i` of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerResult {
    entries: Vec<(Sym, Value)>,
}

impl InnerResult {
    /// The `(symbol, value)` pairs, in a deterministic order.
    pub fn entries(&self) -> &[(Sym, Value)] {
        &self.entries
    }

    /// Value of one inner accumulator.
    pub fn get(&self, sym: Sym) -> Option<&Value> {
        self.entries.iter().find(|(s, _)| *s == sym).map(|(_, v)| v)
    }
}

/// A loop nest in functional form. See the module docs.
#[derive(Debug, Clone)]
pub struct RightwardFn<'p> {
    program: &'p Program,
    main_input: usize,
    /// Statements of the outer body up to and including the last inner
    /// loop (the "inner phase"), plus the `let`s that precede it.
    inner_phase: Vec<Stmt>,
    /// The remaining loop-free statements (the `⊗` computation).
    outer_phase: Vec<Stmt>,
    /// The outer loop variable.
    loop_var: Sym,
    /// Inner accumulators: `let`-declared variables of the outer body and
    /// outer state variables written inside inner loops.
    inner_vars: Vec<(Sym, Ty)>,
}

impl<'p> RightwardFn<'p> {
    /// Build the functional form of `program`.
    ///
    /// # Errors
    ///
    /// Fails if the program has no outermost loop, or the loop bound is
    /// not `len(input)` for a declared input.
    pub fn new(program: &'p Program) -> Result<Self> {
        let (_, outer, _) = program
            .outer_loop()
            .ok_or_else(|| LangError::ty("program has no outermost loop"))?;
        let Stmt::For { var, bound, body } = outer else {
            unreachable!("outer_loop returns a For");
        };
        let main_input = match bound {
            Expr::Len(inner) => match inner.as_ref() {
                Expr::Var(s) => program
                    .inputs
                    .iter()
                    .position(|i| i.name == *s)
                    .ok_or_else(|| {
                        LangError::ty("outer loop bound is not the length of an input")
                    })?,
                _ => {
                    return Err(LangError::ty(
                        "outer loop bound must be `len(input)` for a declared input",
                    ))
                }
            },
            _ => {
                return Err(LangError::ty(
                    "outer loop bound must be `len(input)` for a declared input",
                ))
            }
        };

        // Split the outer body at the last top-level inner loop, unless
        // a transformation recorded an explicit split point.
        let split = match program.summarize_split {
            Some(split) => split.min(body.len()),
            None => body
                .iter()
                .rposition(|s| matches!(s, Stmt::For { .. }))
                .map_or(0, |i| i + 1),
        };
        let inner_phase: Vec<Stmt> = body[..split].to_vec();
        let outer_phase: Vec<Stmt> = body[split..].to_vec();

        // Inner accumulators: top-level lets of the inner phase plus any
        // outer state written inside inner loops.
        let mut inner_vars: Vec<(Sym, Ty)> = Vec::new();
        for stmt in &inner_phase {
            if let Stmt::Let { name, ty, .. } = stmt {
                inner_vars.push((*name, ty.clone()));
            }
        }
        for stmt in &inner_phase {
            if let Stmt::For { .. } = stmt {
                stmt.walk(&mut |s| {
                    if let Stmt::Assign { target, .. } = s {
                        if program.is_state(target.base)
                            && !inner_vars.iter().any(|(v, _)| *v == target.base)
                        {
                            let ty = program.decl_ty(target.base).cloned().unwrap_or(Ty::Int);
                            inner_vars.push((target.base, ty));
                        }
                    }
                });
            }
        }

        Ok(RightwardFn {
            program,
            main_input,
            inner_phase,
            outer_phase,
            loop_var: *var,
            inner_vars,
        })
    }

    /// The wrapped program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Index of the main input (the collection the outer loop traverses).
    pub fn main_input(&self) -> usize {
        self.main_input
    }

    /// The inner accumulators (`t_i` fields), in a deterministic order.
    pub fn inner_vars(&self) -> &[(Sym, Ty)] {
        &self.inner_vars
    }

    /// The loop-free outer-phase statements (`⊗`).
    pub fn outer_phase(&self) -> &[Stmt] {
        &self.outer_phase
    }

    /// The inner-phase statements (lets + inner loop nest).
    pub fn inner_phase(&self) -> &[Stmt] {
        &self.inner_phase
    }

    /// The outer loop variable.
    pub fn loop_var(&self) -> Sym {
        self.loop_var
    }

    /// Run the program on the full input: `f(σ)`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn apply(&self, inputs: &[Value]) -> Result<StateVec> {
        crate::interp::run_program(self.program, inputs)
    }

    /// Run the program on `σ[lo..hi]` of the outer dimension: `h` on a
    /// chunk, starting from the declared initial state.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors; fails if the range is out of bounds.
    pub fn apply_slice(&self, inputs: &[Value], lo: usize, hi: usize) -> Result<StateVec> {
        let sliced = self.slice_inputs(inputs, lo, hi)?;
        crate::interp::run_program(self.program, &sliced)
    }

    /// Run the program on `σ[lo..hi]` starting from an explicit state
    /// (the rightward fold from an intermediate point).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn apply_slice_from(
        &self,
        inputs: &[Value],
        lo: usize,
        hi: usize,
        init: &StateVec,
    ) -> Result<StateVec> {
        let sliced = self.slice_inputs(inputs, lo, hi)?;
        crate::interp::run_program_from(self.program, &sliced, init)
    }

    fn slice_inputs(&self, inputs: &[Value], lo: usize, hi: usize) -> Result<Vec<Value>> {
        let mut out = inputs.to_vec();
        let main = out
            .get_mut(self.main_input)
            .ok_or_else(|| LangError::eval("missing main input"))?;
        let len = main
            .len()
            .ok_or_else(|| LangError::eval("main input is not a sequence"))?;
        if lo > hi || hi > len {
            return Err(LangError::eval(format!(
                "slice {lo}..{hi} out of bounds (len {len})"
            )));
        }
        *main = main.slice(lo, hi);
        Ok(out)
    }

    /// One full outer step `s ⊕ a_i`: run the entire outer body for
    /// absolute row index `i`, starting from state `state`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn outer_step(&self, inputs: &[Value], i: usize, state: &StateVec) -> Result<StateVec> {
        let mut env = self.env_for_row(inputs, i, state)?;
        exec_stmts(&mut env, &self.inner_phase)?;
        exec_stmts(&mut env, &self.outer_phase)?;
        read_state(self.program, &env)
    }

    /// Run only the inner phase for row `i` from state `state`, returning
    /// both the inner result `t_i` and the (possibly updated) state. This
    /// is `𝒢(d)(δ)` of Definition 4.1.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn inner_phase_from(
        &self,
        inputs: &[Value],
        i: usize,
        state: &StateVec,
    ) -> Result<(InnerResult, StateVec)> {
        let mut env = self.env_for_row(inputs, i, state)?;
        exec_stmts(&mut env, &self.inner_phase)?;
        let mut entries = Vec::with_capacity(self.inner_vars.len());
        for (sym, _) in &self.inner_vars {
            entries.push((*sym, env.get(*sym)?.clone()));
        }
        let state_after = read_state(self.program, &env)?;
        Ok((InnerResult { entries }, state_after))
    }

    /// Run only the outer phase (`⊗`/`⊚`) for row `i`: the inner
    /// accumulators are taken from a precomputed [`InnerResult`] instead
    /// of re-running the inner nest. This is the sequential fold step of
    /// a map-only parallelization (Prop. 4.3).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn outer_phase_from(
        &self,
        inputs: &[Value],
        i: usize,
        state: &StateVec,
        inner: &InnerResult,
    ) -> Result<StateVec> {
        let mut env = self.env_for_row(inputs, i, state)?;
        for (sym, value) in &inner.entries {
            env.set(*sym, value.clone());
        }
        exec_stmts(&mut env, &self.outer_phase)?;
        read_state(self.program, &env)
    }

    /// Run the inner phase for row `i` from the *declared initial* state:
    /// `𝒢(0̸)(δ)`, the memoryless instance of the inner nest.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn inner_phase_from_zero(&self, inputs: &[Value], i: usize) -> Result<InnerResult> {
        let env = init_env(self.program, inputs)?;
        let zero = read_state(self.program, &env)?;
        Ok(self.inner_phase_from(inputs, i, &zero)?.0)
    }

    fn env_for_row(&self, inputs: &[Value], i: usize, state: &StateVec) -> Result<Env> {
        let mut env = init_env(self.program, inputs)?;
        state.load_into(&mut env);
        env.set(self.loop_var, Value::Int(i as i64));
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn mbbs_program() -> Program {
        parse(
            "input a : seq<seq<seq<int>>>; state mbbs : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let plane : int = 0;\n\
               for j in 0 .. len(a[i]) { for k in 0 .. len(a[i][j]) {\n\
                 plane = plane + a[i][j][k]; } }\n\
               mbbs = max(mbbs + plane, 0);\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn splits_inner_and_outer_phase() {
        let p = mbbs_program();
        let f = RightwardFn::new(&p).unwrap();
        assert_eq!(f.inner_phase().len(), 2); // let + for
        assert_eq!(f.outer_phase().len(), 1); // the mbbs update
        assert_eq!(f.inner_vars().len(), 1); // plane
    }

    #[test]
    fn fold_decomposes_into_outer_steps() {
        let p = mbbs_program();
        let f = RightwardFn::new(&p).unwrap();
        let input = Value::seq3_of_ints(&[
            vec![vec![1, -2], vec![3, 4]],
            vec![vec![-5, 1], vec![0, 2]],
            vec![vec![7, 0], vec![-1, -1]],
        ]);
        let inputs = vec![input];
        let whole = f.apply(&inputs).unwrap();
        // Replay as explicit fold steps.
        let mut state = f.apply_slice(&inputs, 0, 0).unwrap();
        for i in 0..3 {
            state = f.outer_step(&inputs, i, &state).unwrap();
        }
        assert_eq!(state, whole);
    }

    #[test]
    fn slices_compose() {
        let p = mbbs_program();
        let f = RightwardFn::new(&p).unwrap();
        let input =
            Value::seq3_of_ints(&[vec![vec![5]], vec![vec![-3]], vec![vec![4]], vec![vec![-1]]]);
        let inputs = vec![input];
        let hx = f.apply_slice(&inputs, 0, 2).unwrap();
        let whole = f.apply(&inputs).unwrap();
        let resumed = f.apply_slice_from(&inputs, 2, 4, &hx).unwrap();
        assert_eq!(resumed, whole);
    }

    #[test]
    fn inner_phase_is_state_independent_for_mbbs() {
        // mbbs is memoryless: 𝒢(d)(δ) produces the same t for any d.
        let p = mbbs_program();
        let f = RightwardFn::new(&p).unwrap();
        let input = Value::seq3_of_ints(&[vec![vec![2, 3], vec![-1, 4]]]);
        let inputs = vec![input];
        let from_zero = f.inner_phase_from_zero(&inputs, 0).unwrap();
        let mbbs = p.sym("mbbs").unwrap();
        let weird = StateVec::new(vec![(mbbs, Value::Int(999))]);
        let (from_weird, _) = f.inner_phase_from(&inputs, 0, &weird).unwrap();
        assert_eq!(from_zero, from_weird);
        assert_eq!(from_zero.get(p.sym("plane").unwrap()), Some(&Value::Int(8)));
    }

    #[test]
    fn rejects_program_without_loop() {
        let p = parse("input a : seq<int>; state s : int = 0;").unwrap();
        assert!(RightwardFn::new(&p).is_err());
    }

    #[test]
    fn rejects_non_len_bound() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. 10 { s = s + 1; }",
        )
        .unwrap();
        assert!(RightwardFn::new(&p).is_err());
    }

    #[test]
    fn one_dimensional_program_has_empty_inner_phase() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        assert!(f.inner_phase().is_empty());
        assert_eq!(f.outer_phase().len(), 1);
        assert!(f.inner_vars().is_empty());
    }
}
