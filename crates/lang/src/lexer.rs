//! Hand-written lexer for the mini language.

use crate::error::{LangError, Result};

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Line the token starts on.
    pub line: u32,
}

/// The kinds of token produced by the [`Lexer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier or keyword candidate.
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// End of input marker.
    Eof,
}

impl TokenKind {
    /// A short printable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::DotDot => "..",
            TokenKind::Int(_) | TokenKind::Ident(_) | TokenKind::Eof => "",
        }
    }
}

/// The lexer: turns source text into a token vector.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
}

impl<'src> Lexer<'src> {
    /// Create a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenize the whole input, appending a final [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`LangError::Lex`] on any unexpected character or an
    /// integer literal that overflows `i64`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let line = self.line;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.lex_int()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                _ => self.lex_symbol()?,
            };
            tokens.push(Token { kind, line });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_int(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<i64>().map(TokenKind::Int).map_err(|_| {
            LangError::lex(format!("integer literal `{text}` overflows i64"), self.line)
        })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        TokenKind::Ident(text.to_owned())
    }

    fn lex_symbol(&mut self) -> Result<TokenKind> {
        let line = self.line;
        let c = self.bump().expect("peeked");
        let two = |lexer: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    return Err(LangError::lex("expected `..`", line));
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(LangError::lex("expected `&&`", line));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(LangError::lex("expected `||`", line));
                }
            }
            other => {
                return Err(LangError::lex(
                    format!("unexpected character `{}`", other as char),
                    line,
                ))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let ks = kinds("s = s + a[i];");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("s".into()),
                TokenKind::Assign,
                TokenKind::Ident("s".into()),
                TokenKind::Plus,
                TokenKind::Ident("a".into()),
                TokenKind::LBracket,
                TokenKind::Ident("i".into()),
                TokenKind::RBracket,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        let ks = kinds("<= >= == != && || ..");
        assert_eq!(
            ks,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::DotDot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_comments_and_tracks_lines() {
        let toks = Lexer::new("x // hello\ny").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_stray_ampersand() {
        let err = Lexer::new("a & b").tokenize().unwrap_err();
        assert!(err.to_string().contains("expected `&&`"));
    }

    #[test]
    fn rejects_overflowing_literal() {
        let err = Lexer::new("99999999999999999999").tokenize().unwrap_err();
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = Lexer::new("Ξ").tokenize().unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
    }
}
