//! Abstract syntax of the mini language, with interned symbols.
//!
//! A [`Program`] is a list of `input` declarations (the read-only
//! collections, `IVar` in the paper), a list of `state` declarations
//! (`SVar`), a statement body whose outermost statement is the loop nest,
//! and a `return` list naming the state variables that constitute the
//! program's observable output (the rest are auxiliary accumulators).

use crate::ty::Ty;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned identifier. Cheap to copy and compare; resolved to its
/// textual name through the program's [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index of the symbol (usable to index side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping identifier names to dense [`Sym`] indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolve a symbol back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern a fresh name derived from `base` that does not collide with
    /// any existing name (`base`, `base_1`, `base_2`, ...).
    pub fn fresh(&mut self, base: &str) -> Sym {
        if self.map.contains_key(base) {
            for i in 1.. {
                let candidate = format!("{base}_{i}");
                if !self.map.contains_key(&candidate) {
                    return self.intern(&candidate);
                }
            }
            unreachable!()
        } else {
            self.intern(base)
        }
    }
}

// On the wire an interner is just its name list; the name → symbol map
// is derived state and is rebuilt on deserialization.
impl Serialize for Interner {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.names.serialize(serializer)
    }
}

impl Deserialize for Interner {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let names = Vec::<String>::from_value(value)?;
        let mut interner = Interner::new();
        for name in &names {
            interner.intern(name);
        }
        if interner.names != names {
            return Err(serde::Error::custom(
                "duplicate names in serialized interner",
            ));
        }
        Ok(interner)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Integer negation `-e`.
    Neg,
    /// Boolean negation `!e`.
    Not,
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is a runtime error)
    Div,
    /// `%`
    Rem,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// All operators, in a stable order (used by grammar construction in
    /// the synthesizer).
    pub const ALL: [BinOp; 15] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// Whether the operator takes integer operands.
    pub fn int_args(self) -> bool {
        !matches!(self, BinOp::And | BinOp::Or)
    }

    /// The result type given the operand type.
    pub fn result_ty(self) -> Ty {
        match self {
            BinOp::Add
            | BinOp::Sub
            | BinOp::Mul
            | BinOp::Div
            | BinOp::Rem
            | BinOp::Min
            | BinOp::Max => Ty::Int,
            _ => Ty::Bool,
        }
    }

    /// Whether the operator is associative (used by the rewrite engine).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or
        )
    }

    /// Whether the operator is commutative (used by the rewrite engine).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Min
                | BinOp::Max
                | BinOp::And
                | BinOp::Or
                | BinOp::Eq
                | BinOp::Ne
        )
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(Sym),
    /// Indexing `base[idx]`; `base` may itself be an index expression.
    Index(Box<Expr>, Box<Expr>),
    /// Sequence length `len(e)`.
    Len(Box<Expr>),
    /// `zeros(n)`: an integer sequence of length `n` filled with zeros
    /// (used to initialize array-shaped state such as `rec[]` in the
    /// maximum top-left subarray example, §2.2).
    Zeros(Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional expression `cond ? then : else`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // `add`/`sub` are static constructors, not operators
impl Expr {
    /// Variable reference.
    pub fn var(sym: Sym) -> Expr {
        Expr::Var(sym)
    }

    /// Integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    /// Binary operation helper.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `max(a, b)`
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Max, a, b)
    }

    /// `min(a, b)`
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Min, a, b)
    }

    /// `a && b`
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::And, a, b)
    }

    /// `a || b`
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Or, a, b)
    }

    /// `a == b`
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `cond ? t : e`
    pub fn ite(cond: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Ite(Box::new(cond), Box::new(t), Box::new(e))
    }

    /// `base[idx]`
    pub fn index(base: Expr, idx: Expr) -> Expr {
        Expr::Index(Box::new(base), Box::new(idx))
    }

    /// Number of nodes in the expression tree (the `expsize` of Def. 8.4).
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => 1,
            Expr::Len(e) | Expr::Zeros(e) | Expr::Unary(_, e) => 1 + e.size(),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::Ite(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }

    /// Depth of the expression tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => 1,
            Expr::Len(e) | Expr::Zeros(e) | Expr::Unary(_, e) => 1 + e.depth(),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
            Expr::Ite(c, t, e) => 1 + c.depth().max(t.depth()).max(e.depth()),
        }
    }

    /// Visit every subexpression, outermost first.
    pub fn walk(&self, visit: &mut impl FnMut(&Expr)) {
        visit(self);
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => {}
            Expr::Len(e) | Expr::Zeros(e) | Expr::Unary(_, e) => e.walk(visit),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Expr::Ite(c, t, e) => {
                c.walk(visit);
                t.walk(visit);
                e.walk(visit);
            }
        }
    }

    /// Collect the set of variables referenced by the expression.
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(s) = e {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
        });
        out
    }

    /// Whether the expression mentions `sym`.
    pub fn mentions(&self, sym: Sym) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Var(s) if *s == sym) {
                found = true;
            }
        });
        found
    }

    /// Replace every occurrence of variable `from` with expression `to`.
    pub fn substitute(&self, from: Sym, to: &Expr) -> Expr {
        self.map(&mut |e| match e {
            Expr::Var(s) if *s == from => Some(to.clone()),
            _ => None,
        })
    }

    /// Rebuild the expression bottom-up, letting `f` replace any node
    /// (outermost nodes are offered first; returning `None` recurses).
    pub fn map(&self, f: &mut impl FnMut(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => self.clone(),
            Expr::Len(e) => Expr::Len(Box::new(e.map(f))),
            Expr::Zeros(e) => Expr::Zeros(Box::new(e.map(f))),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map(f))),
            Expr::Index(a, b) => Expr::index(a.map(f), b.map(f)),
            Expr::Binary(op, a, b) => Expr::bin(*op, a.map(f), b.map(f)),
            Expr::Ite(c, t, e) => Expr::ite(c.map(f), t.map(f), e.map(f)),
        }
    }
}

/// The target of an assignment: a variable, optionally indexed
/// (e.g. `rec[j] = ...`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LValue {
    /// The assigned variable.
    pub base: Sym,
    /// Zero or more index expressions (innermost last).
    pub indices: Vec<Expr>,
}

impl LValue {
    /// A plain variable target.
    pub fn var(base: Sym) -> LValue {
        LValue {
            base,
            indices: Vec::new(),
        }
    }

    /// A singly-indexed target `base[idx]`.
    pub fn indexed(base: Sym, idx: Expr) -> LValue {
        LValue {
            base,
            indices: vec![idx],
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Local declaration `let name : ty = init;` — declares an
    /// inner-loop state variable reset at each iteration of the
    /// enclosing loop.
    Let { name: Sym, ty: Ty, init: Expr },
    /// Assignment `target = value;`.
    Assign { target: LValue, value: Expr },
    /// Conditional `if (cond) { .. } else { .. }`.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// Counting loop `for var in 0 .. bound { .. }`.
    For {
        var: Sym,
        bound: Expr,
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Visit every statement in the subtree, outermost first.
    pub fn walk(&self, visit: &mut impl FnMut(&Stmt)) {
        visit(self);
        match self {
            Stmt::Let { .. } | Stmt::Assign { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch.iter().chain(else_branch) {
                    s.walk(visit);
                }
            }
            Stmt::For { body, .. } => {
                for s in body {
                    s.walk(visit);
                }
            }
        }
    }

    /// Maximum loop-nest depth within this statement (a loop-free
    /// statement has depth 0).
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::Let { .. } | Stmt::Assign { .. } => 0,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch
                .iter()
                .chain(else_branch)
                .map(Stmt::loop_depth)
                .max()
                .unwrap_or(0),
            Stmt::For { body, .. } => 1 + body.iter().map(Stmt::loop_depth).max().unwrap_or(0),
        }
    }
}

/// An `input` declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputDecl {
    /// The input variable.
    pub name: Sym,
    /// Its (sequence) type.
    pub ty: Ty,
}

/// A `state` declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDecl {
    /// The state variable.
    pub name: Sym,
    /// Its type.
    pub ty: Ty,
    /// Its initial value expression (must be input-independent).
    pub init: Expr,
}

/// A complete program: declarations, loop-nest body and return list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Symbol interner owning every identifier in the program.
    pub interner: Interner,
    /// Read-only input collections (`IVar`).
    pub inputs: Vec<InputDecl>,
    /// Outer state variables (`SVar`), including any auxiliary
    /// accumulators added by lifting.
    pub state: Vec<StateDecl>,
    /// The program body; by convention a (possibly empty) prefix of
    /// loop-free statements followed by the outermost loop.
    pub body: Vec<Stmt>,
    /// Names of state variables that are the observable output.
    pub returns: Vec<Sym>,
    /// When set (by the memoryless-normal-form transformation), the
    /// index into the outer loop's body where the inner phase ends and
    /// the sequential combine (`⊚`) begins. `None` means the split is
    /// inferred (after the last top-level inner loop).
    pub summarize_split: Option<usize>,
}

impl Program {
    /// Resolve a name to its symbol, if interned.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.interner.lookup(name)
    }

    /// The textual name of a symbol.
    pub fn name(&self, sym: Sym) -> &str {
        self.interner.name(sym)
    }

    /// The declaration of state variable `sym`, if any.
    pub fn state_decl(&self, sym: Sym) -> Option<&StateDecl> {
        self.state.iter().find(|d| d.name == sym)
    }

    /// The declared type of input or state variable `sym`.
    pub fn decl_ty(&self, sym: Sym) -> Option<&Ty> {
        self.state_decl(sym)
            .map(|d| &d.ty)
            .or_else(|| self.inputs.iter().find(|i| i.name == sym).map(|i| &i.ty))
    }

    /// The outermost `for` loop of the program body, together with the
    /// loop-free statements preceding and following it.
    ///
    /// Returns `None` when the body has no loop (degenerate programs).
    pub fn outer_loop(&self) -> Option<(&[Stmt], &Stmt, &[Stmt])> {
        let pos = self
            .body
            .iter()
            .position(|s| matches!(s, Stmt::For { .. }))?;
        Some((&self.body[..pos], &self.body[pos], &self.body[pos + 1..]))
    }

    /// Loop-nest depth `n` of the program (Figure 7's `n`).
    pub fn loop_depth(&self) -> usize {
        self.body.iter().map(Stmt::loop_depth).max().unwrap_or(0)
    }

    /// Symbols of all state variables, in declaration order.
    pub fn state_syms(&self) -> Vec<Sym> {
        self.state.iter().map(|d| d.name).collect()
    }

    /// Whether `sym` names a state variable.
    pub fn is_state(&self, sym: Sym) -> bool {
        self.state.iter().any(|d| d.name == sym)
    }

    /// Whether `sym` names an input.
    pub fn is_input(&self, sym: Sym) -> bool {
        self.inputs.iter().any(|i| i.name == sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trips_and_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.name(b), "y");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut i = Interner::new();
        i.intern("aux");
        let f1 = i.fresh("aux");
        let f2 = i.fresh("aux");
        assert_eq!(i.name(f1), "aux_1");
        assert_eq!(i.name(f2), "aux_2");
        let g = i.fresh("other");
        assert_eq!(i.name(g), "other");
    }

    #[test]
    fn expr_size_and_depth() {
        let mut i = Interner::new();
        let x = i.intern("x");
        // max(x + 1, 0)
        let e = Expr::max(Expr::add(Expr::var(x), Expr::int(1)), Expr::int(0));
        assert_eq!(e.size(), 5);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn expr_vars_and_substitute() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let y = i.intern("y");
        let e = Expr::add(Expr::var(x), Expr::max(Expr::var(y), Expr::var(x)));
        assert_eq!(e.vars(), vec![x, y]);
        assert!(e.mentions(x));
        let e2 = e.substitute(x, &Expr::int(0));
        assert!(!e2.mentions(x));
        assert_eq!(e2.vars(), vec![y]);
    }

    #[test]
    fn stmt_loop_depth() {
        let mut i = Interner::new();
        let v = i.intern("v");
        let j = i.intern("j");
        let k = i.intern("k");
        let inner = Stmt::For {
            var: k,
            bound: Expr::int(2),
            body: vec![Stmt::Assign {
                target: LValue::var(v),
                value: Expr::int(1),
            }],
        };
        let outer = Stmt::For {
            var: j,
            bound: Expr::int(2),
            body: vec![inner],
        };
        assert_eq!(outer.loop_depth(), 2);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Max.is_commutative());
        assert!(!BinOp::Sub.is_associative());
        assert_eq!(BinOp::Lt.result_ty(), Ty::Bool);
        assert_eq!(BinOp::Min.result_ty(), Ty::Int);
        assert!(!BinOp::And.int_args());
    }
}
