//! Structural analysis of loop nests.
//!
//! Computes the facts the parallelization schema (Figure 7 of the paper)
//! dispatches on: the loop-nest depth `n`, the summarized depth `k`, the
//! syntactic memorylessness of the nest (does the inner loop nest touch
//! outer state?), and the dependency partition `D₁ ⊂ D₂ ⊂ …` of state
//! variables that drives incremental join synthesis (§9 "Implementation").

use crate::ast::{Program, Stmt, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// Result of [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Loop-nest depth `n` of the program.
    pub loop_depth: usize,
    /// Depth `k` of the summarized loop: `1` when all state is scalar,
    /// `1 + max dimension of a state variable` otherwise (a join for
    /// array-shaped state must itself loop, Definition 6.2).
    pub summarized_depth: usize,
    /// Outer state variables *read* inside the inner loop nest.
    /// Non-empty ⇒ the nest is not syntactically memoryless.
    pub state_read_in_inner: Vec<Sym>,
    /// Outer state variables *written* inside the inner loop nest.
    pub state_written_in_inner: Vec<Sym>,
    /// Dependency levels of state variables: `levels[0]` depends on
    /// nothing but itself, `levels[i]` only on earlier levels and itself.
    /// This is the partition `D₁ ⊂ D₂ ⊂ …` used for incremental synthesis.
    pub levels: Vec<Vec<Sym>>,
}

impl Analysis {
    /// Whether the inner loop nest is syntactically memoryless: no outer
    /// state variable is read (or conditionally depended on) inside it.
    ///
    /// A `true` here means the map part of the parallelization exists
    /// without any memoryless lift (Definition 4.2).
    pub fn is_syntactically_memoryless(&self) -> bool {
        self.state_read_in_inner.is_empty() && self.state_written_in_inner.is_empty()
    }

    /// State variables in dependency order (flattened levels).
    pub fn state_in_dependency_order(&self) -> Vec<Sym> {
        self.levels.iter().flatten().copied().collect()
    }
}

/// Analyze a program. See [`Analysis`] for the collected facts.
pub fn analyze(program: &Program) -> Analysis {
    let loop_depth = program.loop_depth();
    let state_syms: Vec<Sym> = program.state_syms();
    let state_set: BTreeSet<Sym> = state_syms.iter().copied().collect();

    let summarized_depth = 1 + program.state.iter().map(|d| d.ty.dim()).max().unwrap_or(0);

    // Find inner loops (For statements nested inside the outermost For)
    // and collect outer-state reads/writes within them.
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    if let Some((_, Stmt::For { body, .. }, _)) = program.outer_loop() {
        let split = program
            .summarize_split
            .unwrap_or(body.len())
            .min(body.len());
        for stmt in &body[..split] {
            if let Stmt::For { .. } = stmt {
                collect_state_accesses(stmt, &state_set, &mut reads, &mut writes);
            } else {
                // A non-loop statement in the outer body may *contain*
                // loops (inside an `if`); treat those as inner loops too.
                stmt.walk(&mut |s| {
                    if matches!(s, Stmt::For { .. }) && !std::ptr::eq(s, stmt) {
                        collect_state_accesses(s, &state_set, &mut reads, &mut writes);
                    }
                });
            }
        }
    }

    let levels = dependency_levels(program, &state_syms);

    Analysis {
        loop_depth,
        summarized_depth,
        state_read_in_inner: reads.into_iter().collect(),
        state_written_in_inner: writes.into_iter().collect(),
        levels,
    }
}

/// Collect reads/writes of `state_set` variables within `stmt` (which is
/// an inner loop).
fn collect_state_accesses(
    stmt: &Stmt,
    state_set: &BTreeSet<Sym>,
    reads: &mut BTreeSet<Sym>,
    writes: &mut BTreeSet<Sym>,
) {
    stmt.walk(&mut |s| match s {
        Stmt::Assign { target, value } => {
            if state_set.contains(&target.base) {
                writes.insert(target.base);
            }
            for idx in &target.indices {
                for v in idx.vars() {
                    if state_set.contains(&v) {
                        reads.insert(v);
                    }
                }
            }
            for v in value.vars() {
                if state_set.contains(&v) {
                    reads.insert(v);
                }
            }
        }
        Stmt::Let { init, .. } => {
            for v in init.vars() {
                if state_set.contains(&v) {
                    reads.insert(v);
                }
            }
        }
        Stmt::If { cond, .. } => {
            for v in cond.vars() {
                if state_set.contains(&v) {
                    reads.insert(v);
                }
            }
        }
        Stmt::For { bound, .. } => {
            for v in bound.vars() {
                if state_set.contains(&v) {
                    reads.insert(v);
                }
            }
        }
    });
}

/// For each variable symbol `s` (state, input or local), the set of
/// state variables whose update right-hand sides mention `s` — the
/// dataflow adjacency used to rank hole candidates during synthesis
/// (a hole that replaced a read of `s` most likely joins through the
/// state variables computed *from* `s`).
pub fn assigned_from(program: &Program) -> BTreeMap<Sym, BTreeSet<Sym>> {
    let mut map: BTreeMap<Sym, BTreeSet<Sym>> = BTreeMap::new();
    for stmt in &program.body {
        stmt.walk(&mut |st| {
            if let Stmt::Assign { target, value } = st {
                if program.is_state(target.base) {
                    for s in value.vars() {
                        map.entry(s).or_default().insert(target.base);
                    }
                }
            }
        });
    }
    map
}

/// Compute, for each state variable, the set of *other* state variables
/// its updates depend on (via assignment right-hand sides, index
/// expressions and enclosing guards).
pub fn state_dependencies(program: &Program) -> BTreeMap<Sym, BTreeSet<Sym>> {
    let state_set: BTreeSet<Sym> = program.state_syms().into_iter().collect();
    let mut deps: BTreeMap<Sym, BTreeSet<Sym>> =
        state_set.iter().map(|&s| (s, BTreeSet::new())).collect();
    let mut guards: Vec<Vec<Sym>> = Vec::new();
    for stmt in &program.body {
        collect_deps(stmt, &state_set, &mut deps, &mut guards);
    }
    // Indirect dependencies through inner (let) variables: a let variable
    // that reads state taints every state variable that later reads it.
    // We approximate with a fixpoint over a let→state-deps map.
    let mut let_deps: BTreeMap<Sym, BTreeSet<Sym>> = BTreeMap::new();
    loop {
        let before: usize = deps.values().map(BTreeSet::len).sum::<usize>()
            + let_deps.values().map(BTreeSet::len).sum::<usize>();
        let mut guards: Vec<Vec<Sym>> = Vec::new();
        for stmt in &program.body {
            propagate_let_deps(stmt, &state_set, &mut deps, &mut let_deps, &mut guards);
        }
        let after: usize = deps.values().map(BTreeSet::len).sum::<usize>()
            + let_deps.values().map(BTreeSet::len).sum::<usize>();
        if after == before {
            break;
        }
    }
    for (&s, d) in &mut deps {
        d.remove(&s);
    }
    deps
}

fn collect_deps(
    stmt: &Stmt,
    state_set: &BTreeSet<Sym>,
    deps: &mut BTreeMap<Sym, BTreeSet<Sym>>,
    guards: &mut Vec<Vec<Sym>>,
) {
    match stmt {
        Stmt::Assign { target, value } => {
            if state_set.contains(&target.base) {
                let entry = deps.entry(target.base).or_default();
                for v in value.vars() {
                    if state_set.contains(&v) {
                        entry.insert(v);
                    }
                }
                for idx in &target.indices {
                    for v in idx.vars() {
                        if state_set.contains(&v) {
                            entry.insert(v);
                        }
                    }
                }
                for guard in guards.iter() {
                    for &v in guard {
                        entry.insert(v);
                    }
                }
            }
        }
        Stmt::Let { .. } => {}
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let guard_vars: Vec<Sym> = cond
                .vars()
                .into_iter()
                .filter(|v| state_set.contains(v))
                .collect();
            guards.push(guard_vars);
            for s in then_branch.iter().chain(else_branch) {
                collect_deps(s, state_set, deps, guards);
            }
            guards.pop();
        }
        Stmt::For { body, .. } => {
            for s in body {
                collect_deps(s, state_set, deps, guards);
            }
        }
    }
}

fn propagate_let_deps(
    stmt: &Stmt,
    state_set: &BTreeSet<Sym>,
    deps: &mut BTreeMap<Sym, BTreeSet<Sym>>,
    let_deps: &mut BTreeMap<Sym, BTreeSet<Sym>>,
    guards: &mut Vec<Vec<Sym>>,
) {
    let taint_of = |e: &crate::ast::Expr,
                    state_set: &BTreeSet<Sym>,
                    let_deps: &BTreeMap<Sym, BTreeSet<Sym>>|
     -> BTreeSet<Sym> {
        let mut taint = BTreeSet::new();
        for v in e.vars() {
            if state_set.contains(&v) {
                taint.insert(v);
            } else if let Some(t) = let_deps.get(&v) {
                taint.extend(t.iter().copied());
            }
        }
        taint
    };
    match stmt {
        Stmt::Let { name, init, .. } => {
            let taint = taint_of(init, state_set, let_deps);
            let_deps.entry(*name).or_default().extend(taint);
        }
        Stmt::Assign { target, value } => {
            let mut taint = taint_of(value, state_set, let_deps);
            for guard in guards.iter() {
                taint.extend(guard.iter().copied());
            }
            if state_set.contains(&target.base) {
                deps.entry(target.base).or_default().extend(taint);
            } else {
                let_deps.entry(target.base).or_default().extend(taint);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut guard: Vec<Sym> = Vec::new();
            for v in cond.vars() {
                if state_set.contains(&v) {
                    guard.push(v);
                } else if let Some(t) = let_deps.get(&v) {
                    guard.extend(t.iter().copied());
                }
            }
            guards.push(guard);
            for s in then_branch.iter().chain(else_branch) {
                propagate_let_deps(s, state_set, deps, let_deps, guards);
            }
            guards.pop();
        }
        Stmt::For { body, .. } => {
            for s in body {
                propagate_let_deps(s, state_set, deps, let_deps, guards);
            }
        }
    }
}

/// Partition `state_syms` into dependency levels: level 0 variables
/// depend only on themselves, level `i` variables only on levels `< i`
/// and themselves. Mutually dependent variables share a level.
fn dependency_levels(program: &Program, state_syms: &[Sym]) -> Vec<Vec<Sym>> {
    let deps = state_dependencies(program);
    let mut placed: BTreeSet<Sym> = BTreeSet::new();
    let mut levels: Vec<Vec<Sym>> = Vec::new();
    let mut remaining: Vec<Sym> = state_syms.to_vec();
    while !remaining.is_empty() {
        let ready: Vec<Sym> = remaining
            .iter()
            .copied()
            .filter(|s| {
                deps.get(s)
                    .is_none_or(|d| d.iter().all(|w| placed.contains(w) || w == s))
            })
            .collect();
        if ready.is_empty() {
            // Dependency cycle: the remaining variables form one level.
            levels.push(remaining.clone());
            break;
        }
        placed.extend(ready.iter().copied());
        remaining.retain(|s| !placed.contains(s));
        levels.push(ready);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn mbbs_is_syntactically_memoryless() {
        let p = parse(
            "input a : seq<seq<seq<int>>>; state mbbs : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let plane : int = 0;\n\
               for j in 0 .. len(a[i]) { for k in 0 .. len(a[i][j]) {\n\
                 plane = plane + a[i][j][k]; } }\n\
               mbbs = max(mbbs + plane, 0);\n\
             }",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.loop_depth, 3);
        assert_eq!(a.summarized_depth, 1);
        assert!(a.is_syntactically_memoryless());
    }

    #[test]
    fn bp_is_not_memoryless() {
        // Figure 3: the inner loop reads `offset` and writes `bal`.
        let p = parse(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state cnt : int = 0; state bal : bool = true;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
                 if (offset + lo < 0) { bal = false; }\n\
               }\n\
               offset = offset + lo;\n\
               if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
             }",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(!a.is_syntactically_memoryless());
        let offset = p.sym("offset").unwrap();
        let bal = p.sym("bal").unwrap();
        assert!(a.state_read_in_inner.contains(&offset));
        assert!(a.state_written_in_inner.contains(&bal));
    }

    #[test]
    fn summarized_depth_counts_array_state() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.summarized_depth, 2);
    }

    #[test]
    fn dependency_levels_order_mtls_state() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }",
        )
        .unwrap();
        let a = analyze(&p);
        let rec = p.sym("rec").unwrap();
        let mtl = p.sym("mtl").unwrap();
        assert_eq!(a.levels, vec![vec![rec], vec![mtl]]);
    }

    #[test]
    fn guard_dependencies_are_tracked() {
        // `cnt` is guarded by `bal`, so it depends on `bal`.
        let p = parse(
            "input a : seq<int>; state bal : bool = true; state cnt : int = 0;\n\
             for i in 0 .. len(a) {\n\
               if (a[i] < 0) { bal = false; }\n\
               if (bal) { cnt = cnt + 1; }\n\
             }",
        )
        .unwrap();
        let deps = state_dependencies(&p);
        let bal = p.sym("bal").unwrap();
        let cnt = p.sym("cnt").unwrap();
        assert!(deps[&cnt].contains(&bal));
        assert!(deps[&bal].is_empty());
    }

    #[test]
    fn let_variable_taint_flows_to_state() {
        // `t` reads state `s`; `u` is assigned from `t`, so `u` depends on `s`.
        let p = parse(
            "input a : seq<int>; state s : int = 0; state u : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let t : int = s + a[i];\n\
               u = u + t;\n\
               s = s + 1;\n\
             }",
        )
        .unwrap();
        let deps = state_dependencies(&p);
        let s = p.sym("s").unwrap();
        let u = p.sym("u").unwrap();
        assert!(deps[&u].contains(&s));
    }

    #[test]
    fn assigned_from_maps_sources_to_state_targets() {
        let p = parse(
            "input a : seq<int>; state last : int = 0; state md : int = 0;\n\
             state seen : bool = false;\n\
             for i in 0 .. len(a) {\n\
               if (seen) { md = max(md, a[i] - last); }\n\
               last = a[i];\n\
               seen = true;\n\
             }",
        )
        .unwrap();
        let flow = assigned_from(&p);
        let a = p.sym("a").unwrap();
        let last = p.sym("last").unwrap();
        let md = p.sym("md").unwrap();
        // Reads of the input `a` flow into both `last` and `md`.
        assert!(flow[&a].contains(&last));
        assert!(flow[&a].contains(&md));
        // `last` flows into `md` (md's update reads it).
        assert!(flow[&last].contains(&md));
        // `seen` is assigned only constants: no sources map to it.
        let seen = p.sym("seen").unwrap();
        assert!(!flow.values().any(|t| t.contains(&seen)));
    }

    #[test]
    fn cyclic_dependencies_share_a_level() {
        let p = parse(
            "input a : seq<int>; state x : int = 0; state y : int = 0;\n\
             for i in 0 .. len(a) { x = y + a[i]; y = x + 1; }",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.levels.len(), 1);
        assert_eq!(a.levels[0].len(), 2);
    }
}
