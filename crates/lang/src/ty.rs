//! The type language: scalars and multidimensional sequences.
//!
//! Type `S^n` from §4 of the paper is represented as `n` nested
//! [`Ty::Seq`] constructors around a scalar base, e.g. `seq<seq<int>>`
//! is the 2-dimensional sequence type `S²`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A type of the mini language.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// Machine integer (the paper's `int`, assumed constant-size).
    Int,
    /// Boolean.
    Bool,
    /// A sequence of elements of the inner type (`S^{n}` when the inner
    /// type is `S^{n-1}`); stands in for arrays, lists or any collection
    /// with a linear iterator and associative concatenation.
    Seq(Box<Ty>),
}

impl Ty {
    /// Build `seq<elem>`.
    pub fn seq(elem: Ty) -> Ty {
        Ty::Seq(Box::new(elem))
    }

    /// Build the `n`-dimensional sequence of `base` (`n == 0` returns
    /// `base` itself).
    ///
    /// # Example
    ///
    /// ```
    /// use parsynt_lang::Ty;
    /// assert_eq!(Ty::seq_n(Ty::Int, 2), Ty::seq(Ty::seq(Ty::Int)));
    /// ```
    pub fn seq_n(base: Ty, n: usize) -> Ty {
        (0..n).fold(base, |t, _| Ty::seq(t))
    }

    /// The dimension of this type: 0 for scalars, 1 + dim of the element
    /// type for sequences (the `n` of `S^n`).
    pub fn dim(&self) -> usize {
        match self {
            Ty::Int | Ty::Bool => 0,
            Ty::Seq(elem) => 1 + elem.dim(),
        }
    }

    /// The element type of a sequence, or `None` for scalars.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Seq(elem) => Some(elem),
            _ => None,
        }
    }

    /// The innermost scalar type underneath all sequence constructors.
    pub fn base(&self) -> &Ty {
        match self {
            Ty::Seq(elem) => elem.base(),
            other => other,
        }
    }

    /// Whether this is a scalar (constant-size) type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Bool)
    }

    /// Whether this is a sequence type.
    pub fn is_seq(&self) -> bool {
        matches!(self, Ty::Seq(_))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Seq(elem) => write!(f, "seq<{elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_counts_nesting() {
        assert_eq!(Ty::Int.dim(), 0);
        assert_eq!(Ty::seq(Ty::Int).dim(), 1);
        assert_eq!(Ty::seq_n(Ty::Int, 3).dim(), 3);
    }

    #[test]
    fn elem_peels_one_layer() {
        let t = Ty::seq_n(Ty::Bool, 2);
        assert_eq!(t.elem(), Some(&Ty::seq(Ty::Bool)));
        assert_eq!(Ty::Int.elem(), None);
    }

    #[test]
    fn base_reaches_scalar() {
        assert_eq!(Ty::seq_n(Ty::Bool, 4).base(), &Ty::Bool);
        assert_eq!(Ty::Int.base(), &Ty::Int);
    }

    #[test]
    fn display_round_trip_shape() {
        assert_eq!(Ty::seq(Ty::seq(Ty::Int)).to_string(), "seq<seq<int>>");
        assert_eq!(Ty::Bool.to_string(), "bool");
    }

    #[test]
    fn scalar_and_seq_predicates() {
        assert!(Ty::Int.is_scalar());
        assert!(!Ty::Int.is_seq());
        assert!(Ty::seq(Ty::Int).is_seq());
        assert!(!Ty::seq(Ty::Int).is_scalar());
    }
}
