//! Recursive-descent parser for the mini language.
//!
//! Grammar (informally; `§3.1` of the paper leaves the syntax standard):
//!
//! ```text
//! program := decl* stmt* ("return" ident ("," ident)* ";")?
//! decl    := "input" ident ":" ty ";"
//!          | "state" ident ":" ty "=" expr ";"
//! ty      := "int" | "bool" | "seq" "<" ty ">"
//! stmt    := "let" ident ":" ty "=" expr ";"
//!          | "for" ident "in" expr ".." expr "{" stmt* "}"
//!          | "if" "(" expr ")" block ("else" block)?
//!          | lvalue "=" expr ";"
//! ```
//!
//! Expressions use C-like precedence with `?:`, `||`, `&&`, comparisons,
//! `+ -`, `* / %`, unary `- !`, postfix indexing, and the intrinsic calls
//! `min(a,b)`, `max(a,b)` and `len(e)`.

use crate::ast::{BinOp, Expr, InputDecl, Interner, LValue, Program, StateDecl, Stmt, Sym, UnOp};
use crate::error::{LangError, Result};
use crate::lexer::{Token, TokenKind};
use crate::ty::Ty;

/// The parser, consuming a token stream produced by
/// [`Lexer::tokenize`](crate::lexer::Lexer::tokenize).
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    interner: Interner,
}

impl Parser {
    /// Create a parser over a token stream (must end with `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            interner: Interner::new(),
        }
    }

    /// Parse a complete [`Program`]. Does **not** type-check; see
    /// [`check_program`](crate::check::check_program).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(mut self) -> Result<Program> {
        let mut inputs = Vec::new();
        let mut state = Vec::new();
        loop {
            if self.eat_keyword("input") {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.parse_ty()?;
                self.expect(&TokenKind::Semi)?;
                inputs.push(InputDecl { name, ty });
            } else if self.eat_keyword("state") {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.parse_ty()?;
                self.expect(&TokenKind::Assign)?;
                let init = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                state.push(StateDecl { name, ty, init });
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while !self.check_keyword("return") && !self.at_eof() {
            body.push(self.parse_stmt()?);
        }
        let mut returns = Vec::new();
        if self.eat_keyword("return") {
            returns.push(self.expect_ident()?);
            while self.eat(&TokenKind::Comma) {
                returns.push(self.expect_ident()?);
            }
            self.expect(&TokenKind::Semi)?;
        } else {
            // Default: every state variable is observable.
            returns = state.iter().map(|d| d.name).collect();
        }
        self.expect(&TokenKind::Eof)?;
        Ok(Program {
            interner: self.interner,
            inputs,
            state,
            body,
            returns,
            summarize_split: None,
        })
    }

    fn parse_ty(&mut self) -> Result<Ty> {
        if self.eat_keyword("int") {
            Ok(Ty::Int)
        } else if self.eat_keyword("bool") {
            Ok(Ty::Bool)
        } else if self.eat_keyword("seq") {
            self.expect(&TokenKind::Lt)?;
            let elem = self.parse_ty()?;
            self.expect(&TokenKind::Gt)?;
            Ok(Ty::seq(elem))
        } else {
            Err(self.unexpected("a type (`int`, `bool` or `seq<..>`)"))
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.eat_keyword("let") {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.parse_ty()?;
            self.expect(&TokenKind::Assign)?;
            let init = self.parse_expr()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Let { name, ty, init });
        }
        if self.eat_keyword("for") {
            let var = self.expect_ident()?;
            if !self.eat_keyword("in") {
                return Err(self.unexpected("`in`"));
            }
            let lo = self.parse_expr()?;
            if lo != Expr::Int(0) {
                return Err(LangError::parse(
                    "loop lower bound must be the literal 0",
                    self.line(),
                ));
            }
            self.expect(&TokenKind::DotDot)?;
            let bound = self.parse_expr()?;
            let body = self.parse_block()?;
            return Ok(Stmt::For { var, bound, body });
        }
        if self.eat_keyword("if") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            let then_branch = self.parse_block()?;
            let else_branch = if self.eat_keyword("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        // lvalue = expr ;
        let base = self.expect_ident()?;
        let mut indices = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            indices.push(self.parse_expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        self.expect(&TokenKind::Assign)?;
        let value = self.parse_expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Assign {
            target: LValue { base, indices },
            value,
        })
    }

    /// Parse a single expression (public so tests and tools can parse
    /// expression fragments).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.eat(&TokenKind::Question) {
            let t = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let e = self.parse_expr()?;
            Ok(Expr::ite(cond, t, e))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = Expr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_comparison()?;
        loop {
            let op = if self.eat(&TokenKind::EqEq) {
                BinOp::Eq
            } else if self.eat(&TokenKind::Ne) {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_comparison()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinOp::Ge
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            // Fold negation of literals so `-5` is a literal.
            if let Expr::Int(n) = e {
                return Ok(Expr::Int(-n));
            }
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&TokenKind::Bang) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        while self.eat(&TokenKind::LBracket) {
            let idx = self.parse_expr()?;
            self.expect(&TokenKind::RBracket)?;
            e = Expr::index(e, idx);
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.peek_kind().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    "min" | "max" => {
                        self.expect(&TokenKind::LParen)?;
                        let a = self.parse_expr()?;
                        self.expect(&TokenKind::Comma)?;
                        let b = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        let op = if name == "min" {
                            BinOp::Min
                        } else {
                            BinOp::Max
                        };
                        Ok(Expr::bin(op, a, b))
                    }
                    "len" => {
                        self.expect(&TokenKind::LParen)?;
                        let e = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Len(Box::new(e)))
                    }
                    "zeros" => {
                        self.expect(&TokenKind::LParen)?;
                        let e = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Zeros(Box::new(e)))
                    }
                    _ => Ok(Expr::Var(self.interner.intern(&name))),
                }
            }
            other => Err(LangError::parse(
                format!("expected an expression, found {}", other.describe()),
                line,
            )),
        }
    }

    // --- token helpers -------------------------------------------------

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn bump(&mut self) {
        if !self.at_eof() {
            self.pos += 1;
        }
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn check_keyword(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.check_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_ident(&mut self) -> Result<Sym> {
        let line = self.line();
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            self.bump();
            Ok(self.interner.intern(&name))
        } else {
            Err(LangError::parse(
                format!(
                    "expected an identifier, found {}",
                    self.peek_kind().describe()
                ),
                line,
            ))
        }
    }

    fn unexpected(&self, wanted: &str) -> LangError {
        LangError::parse(
            format!("expected {wanted}, found {}", self.peek_kind().describe()),
            self.line(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexer;

    fn parse_src(src: &str) -> Result<Program> {
        Parser::new(Lexer::new(src).tokenize()?).parse_program()
    }

    #[test]
    fn parses_sum_program() {
        let p = parse_src(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }\n\
             return s;",
        )
        .unwrap();
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.state.len(), 1);
        assert_eq!(p.loop_depth(), 2);
        assert_eq!(p.returns.len(), 1);
    }

    #[test]
    fn parses_ternary_and_precedence() {
        let p = parse_src(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + (a[i] > 0 ? a[i] : 0 - a[i]); }",
        )
        .unwrap();
        // default returns = all state vars
        assert_eq!(p.returns, vec![p.sym("s").unwrap()]);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let mut parser = Parser::new(Lexer::new("1 + 2 * 3").tokenize().unwrap());
        let e = parser.parse_expr().unwrap();
        assert_eq!(
            e,
            Expr::add(
                Expr::int(1),
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
    }

    #[test]
    fn parses_min_max_len_intrinsics() {
        let mut parser = Parser::new(Lexer::new("max(min(x, 1), len(a))").tokenize().unwrap());
        let e = parser.parse_expr().unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Max, _, _)));
    }

    #[test]
    fn negative_literals_fold() {
        let mut parser = Parser::new(Lexer::new("-42").tokenize().unwrap());
        assert_eq!(parser.parse_expr().unwrap(), Expr::Int(-42));
    }

    #[test]
    fn rejects_nonzero_lower_bound() {
        let err = parse_src(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 1 .. len(a) { s = s + a[i]; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("lower bound"));
    }

    #[test]
    fn parses_if_else_and_indexed_assign() {
        let p = parse_src(
            "input a : seq<int>; state r : seq<int> = a; state c : int = 0;\n\
             for i in 0 .. len(a) {\n\
               if (a[i] > 0) { r[i] = a[i]; c = c + 1; } else { r[i] = 0; }\n\
             }",
        )
        .unwrap();
        assert_eq!(p.state.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_src("input a : seq<int>;\nstate s : int = ;").unwrap_err();
        assert!(err.to_string().contains("line 2"), "got: {err}");
    }
}
