//! Reference interpreter — the semantic oracle for the whole pipeline.
//!
//! Bounded verification in the synthesizer, memorylessness testing, and
//! all cross-checks against native Rust implementations go through this
//! module. Integer arithmetic wraps (synthesis enumerates arbitrary
//! candidate expressions, which must never abort the process).

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, Sym, UnOp};
use crate::error::{LangError, Result};
use crate::value::Value;

/// A variable environment indexed by [`Sym`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    slots: Vec<Option<Value>>,
}

impl Env {
    /// An environment with room for every symbol of `program`.
    pub fn for_program(program: &Program) -> Env {
        Env {
            slots: vec![None; program.interner.len()],
        }
    }

    /// Read a variable.
    ///
    /// # Errors
    ///
    /// Fails if the variable has not been bound.
    pub fn get(&self, sym: Sym) -> Result<&Value> {
        self.slots
            .get(sym.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| LangError::eval(format!("unbound variable #{}", sym.0)))
    }

    /// Bind or overwrite a variable.
    pub fn set(&mut self, sym: Sym, value: Value) {
        if sym.index() >= self.slots.len() {
            self.slots.resize(sym.index() + 1, None);
        }
        self.slots[sym.index()] = Some(value);
    }

    /// Remove a binding (used when leaving a scope).
    pub fn unset(&mut self, sym: Sym) {
        if let Some(slot) = self.slots.get_mut(sym.index()) {
            *slot = None;
        }
    }

    /// Whether the variable is currently bound.
    pub fn is_bound(&self, sym: Sym) -> bool {
        self.slots.get(sym.index()).is_some_and(Option::is_some)
    }
}

/// The final (or intermediate) valuation of a program's state variables,
/// in declaration order. This is an element of the domain `D` of §4.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateVec {
    entries: Vec<(Sym, Value)>,
}

impl StateVec {
    /// Build from `(symbol, value)` pairs in declaration order.
    pub fn new(entries: Vec<(Sym, Value)>) -> Self {
        StateVec { entries }
    }

    /// The `(symbol, value)` pairs in declaration order.
    pub fn entries(&self) -> &[(Sym, Value)] {
        &self.entries
    }

    /// The value of state variable `sym`.
    pub fn get(&self, sym: Sym) -> Option<&Value> {
        self.entries.iter().find(|(s, _)| *s == sym).map(|(_, v)| v)
    }

    /// The value of the state variable called `name`.
    pub fn value_named<'a>(&'a self, program: &Program, name: &str) -> Option<&'a Value> {
        let sym = program.sym(name)?;
        self.get(sym)
    }

    /// The integer value of the state variable called `name`.
    pub fn scalar_named(&self, program: &Program, name: &str) -> Option<i64> {
        self.value_named(program, name).and_then(Value::as_int)
    }

    /// The boolean value of the state variable called `name`.
    pub fn bool_named(&self, program: &Program, name: &str) -> Option<bool> {
        self.value_named(program, name).and_then(Value::as_bool)
    }

    /// Restrict to the `return`ed variables of `program` — the observable
    /// output (the projection `π_D` of Definition 5.1).
    pub fn project_returns(&self, program: &Program) -> StateVec {
        StateVec {
            entries: self
                .entries
                .iter()
                .filter(|(s, _)| program.returns.contains(s))
                .cloned()
                .collect(),
        }
    }

    /// Load this state into an environment.
    pub fn load_into(&self, env: &mut Env) {
        for (sym, value) in &self.entries {
            env.set(*sym, value.clone());
        }
    }
}

/// Evaluate an expression in an environment.
///
/// # Errors
///
/// Fails on unbound variables, out-of-bounds indexing, division by zero,
/// or `zeros` with a negative length.
pub fn eval_expr(env: &Env, e: &Expr) -> Result<Value> {
    match e {
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Var(sym) => env.get(*sym).cloned(),
        Expr::Index(base, idx) => {
            let base_v = eval_expr(env, base)?;
            let idx_v = eval_expr(env, idx)?
                .as_int()
                .ok_or_else(|| LangError::eval("index is not an integer"))?;
            let items = base_v
                .as_seq()
                .ok_or_else(|| LangError::eval("indexing a non-sequence"))?;
            usize::try_from(idx_v)
                .ok()
                .and_then(|i| items.get(i))
                .cloned()
                .ok_or_else(|| {
                    LangError::eval(format!("index {idx_v} out of bounds (len {})", items.len()))
                })
        }
        Expr::Len(inner) => {
            let v = eval_expr(env, inner)?;
            v.len()
                .map(|n| Value::Int(n as i64))
                .ok_or_else(|| LangError::eval("`len` of a non-sequence"))
        }
        Expr::Zeros(n) => {
            let n = eval_expr(env, n)?
                .as_int()
                .ok_or_else(|| LangError::eval("`zeros` length is not an integer"))?;
            let n =
                usize::try_from(n).map_err(|_| LangError::eval("`zeros` with negative length"))?;
            Ok(Value::Seq(vec![Value::Int(0); n]))
        }
        Expr::Unary(op, inner) => {
            let v = eval_expr(env, inner)?;
            match (op, v) {
                (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                _ => Err(LangError::eval("ill-typed unary operation")),
            }
        }
        Expr::Binary(op, a, b) => {
            // Short-circuit boolean operators.
            if matches!(op, BinOp::And | BinOp::Or) {
                let av = eval_expr(env, a)?
                    .as_bool()
                    .ok_or_else(|| LangError::eval("boolean operator on non-bool"))?;
                return match (op, av) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => {
                        let bv = eval_expr(env, b)?
                            .as_bool()
                            .ok_or_else(|| LangError::eval("boolean operator on non-bool"))?;
                        Ok(Value::Bool(bv))
                    }
                };
            }
            let av = eval_expr(env, a)?;
            let bv = eval_expr(env, b)?;
            eval_binop(*op, &av, &bv)
        }
        Expr::Ite(c, t, e2) => {
            let cv = eval_expr(env, c)?
                .as_bool()
                .ok_or_else(|| LangError::eval("`?:` condition is not a bool"))?;
            if cv {
                eval_expr(env, t)
            } else {
                eval_expr(env, e2)
            }
        }
    }
}

/// Apply a binary operator to two evaluated operands.
///
/// # Errors
///
/// Fails on ill-typed operands or division/remainder by zero.
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    match op {
        BinOp::Eq => Ok(Value::Bool(a == b)),
        BinOp::Ne => Ok(Value::Bool(a != b)),
        BinOp::And | BinOp::Or => match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok(Value::Bool(if op == BinOp::And { x && y } else { x || y })),
            _ => Err(LangError::eval("boolean operator on non-bool")),
        },
        _ => {
            let (x, y) = match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err(LangError::eval(format!("`{op}` on non-integers"))),
            };
            let v = match op {
                BinOp::Add => Value::Int(x.wrapping_add(y)),
                BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        return Err(LangError::eval("division by zero"));
                    }
                    Value::Int(x.wrapping_div(y))
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(LangError::eval("remainder by zero"));
                    }
                    Value::Int(x.wrapping_rem(y))
                }
                BinOp::Min => Value::Int(x.min(y)),
                BinOp::Max => Value::Int(x.max(y)),
                BinOp::Lt => Value::Bool(x < y),
                BinOp::Le => Value::Bool(x <= y),
                BinOp::Gt => Value::Bool(x > y),
                BinOp::Ge => Value::Bool(x >= y),
                BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => unreachable!(),
            };
            Ok(v)
        }
    }
}

/// Execute a single statement, mutating `env`.
///
/// # Errors
///
/// Propagates any evaluation error from contained expressions.
pub fn exec_stmt(env: &mut Env, stmt: &Stmt) -> Result<()> {
    match stmt {
        Stmt::Let { name, init, .. } => {
            let v = eval_expr(env, init)?;
            env.set(*name, v);
            Ok(())
        }
        Stmt::Assign { target, value } => {
            let v = eval_expr(env, value)?;
            assign_lvalue(env, target, v)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = eval_expr(env, cond)?
                .as_bool()
                .ok_or_else(|| LangError::eval("`if` condition is not a bool"))?;
            let branch = if c { then_branch } else { else_branch };
            exec_stmts(env, branch)
        }
        Stmt::For { var, bound, body } => {
            let n = eval_expr(env, bound)?
                .as_int()
                .ok_or_else(|| LangError::eval("loop bound is not an integer"))?;
            for i in 0..n.max(0) {
                env.set(*var, Value::Int(i));
                exec_stmts(env, body)?;
            }
            env.unset(*var);
            Ok(())
        }
    }
}

/// Execute a statement sequence.
///
/// # Errors
///
/// Propagates the first statement error.
pub fn exec_stmts(env: &mut Env, stmts: &[Stmt]) -> Result<()> {
    for stmt in stmts {
        exec_stmt(env, stmt)?;
    }
    Ok(())
}

fn assign_lvalue(env: &mut Env, target: &LValue, value: Value) -> Result<()> {
    if target.indices.is_empty() {
        env.set(target.base, value);
        return Ok(());
    }
    // Evaluate all indices first (they may read the target variable).
    let mut idxs = Vec::with_capacity(target.indices.len());
    for idx in &target.indices {
        let i = eval_expr(env, idx)?
            .as_int()
            .ok_or_else(|| LangError::eval("index is not an integer"))?;
        idxs.push(i);
    }
    let mut current = env.get(target.base)?.clone();
    {
        let mut slot = &mut current;
        for &i in &idxs {
            let items = match slot {
                Value::Seq(items) => items,
                _ => return Err(LangError::eval("indexed assignment into non-sequence")),
            };
            let len = items.len();
            slot = usize::try_from(i)
                .ok()
                .and_then(|i| items.get_mut(i))
                .ok_or_else(|| LangError::eval(format!("index {i} out of bounds (len {len})")))?;
        }
        *slot = value;
    }
    env.set(target.base, current);
    Ok(())
}

/// Bind the program's inputs and initialize its state variables.
///
/// # Errors
///
/// Fails if the number of inputs differs from the declaration list or a
/// state initializer fails to evaluate.
pub fn init_env(program: &Program, inputs: &[Value]) -> Result<Env> {
    if inputs.len() != program.inputs.len() {
        return Err(LangError::eval(format!(
            "program expects {} input(s), got {}",
            program.inputs.len(),
            inputs.len()
        )));
    }
    let mut env = Env::for_program(program);
    for (decl, value) in program.inputs.iter().zip(inputs) {
        env.set(decl.name, value.clone());
    }
    for decl in &program.state {
        let v = eval_expr(&env, &decl.init)?;
        env.set(decl.name, v);
    }
    Ok(env)
}

/// Read the current state-variable valuation out of an environment.
///
/// # Errors
///
/// Fails if some state variable is unbound.
pub fn read_state(program: &Program, env: &Env) -> Result<StateVec> {
    let mut entries = Vec::with_capacity(program.state.len());
    for decl in &program.state {
        entries.push((decl.name, env.get(decl.name)?.clone()));
    }
    Ok(StateVec::new(entries))
}

/// Run a program to completion on the given inputs.
///
/// # Errors
///
/// Propagates any runtime error.
///
/// # Example
///
/// ```
/// use parsynt_lang::{parse, interp::run_program, Value};
/// let p = parse("input a : seq<int>; state s : int = 0;\n\
///                for i in 0 .. len(a) { s = max(s, a[i]); }").unwrap();
/// let out = run_program(&p, &[Value::seq_of_ints(&[3, 9, 2])]).unwrap();
/// assert_eq!(out.scalar_named(&p, "s"), Some(9));
/// ```
pub fn run_program(program: &Program, inputs: &[Value]) -> Result<StateVec> {
    let mut env = init_env(program, inputs)?;
    exec_stmts(&mut env, &program.body)?;
    read_state(program, &env)
}

/// Run a program starting from an explicit initial state instead of the
/// declared initializers (used to exercise the rightward fold `h(x) ⊕ a`
/// from arbitrary intermediate states).
///
/// # Errors
///
/// Propagates any runtime error.
pub fn run_program_from(program: &Program, inputs: &[Value], init: &StateVec) -> Result<StateVec> {
    let mut env = init_env(program, inputs)?;
    init.load_into(&mut env);
    exec_stmts(&mut env, &program.body)?;
    read_state(program, &env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn runs_nested_sum() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let input = Value::seq2_of_ints(&[vec![1, 2], vec![3, 4, 5]]);
        let out = run_program(&p, &[input]).unwrap();
        assert_eq!(out.scalar_named(&p, "s"), Some(15));
    }

    #[test]
    fn runs_mbbs_from_figure_1() {
        let p = parse(
            "input a : seq<seq<seq<int>>>;\n\
             state mbbs : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let plane_sum : int = 0;\n\
               for j in 0 .. len(a[i]) { for k in 0 .. len(a[i][j]) {\n\
                 plane_sum = plane_sum + a[i][j][k]; } }\n\
               mbbs = max(mbbs + plane_sum, 0);\n\
             }",
        )
        .unwrap();
        // Two 1x1 planes: [5], [-3]; best bottom box is max(0, -3, 5-3) = 2.
        let input = Value::seq3_of_ints(&[vec![vec![5]], vec![vec![-3]]]);
        let out = run_program(&p, &[input]).unwrap();
        assert_eq!(out.scalar_named(&p, "mbbs"), Some(2));
    }

    #[test]
    fn indexed_assignment_updates_array_state() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; } }",
        )
        .unwrap();
        let input = Value::seq2_of_ints(&[vec![1, 2], vec![10, 20]]);
        let out = run_program(&p, &[input]).unwrap();
        assert_eq!(
            out.value_named(&p, "rec"),
            Some(&Value::seq_of_ints(&[11, 22]))
        );
    }

    #[test]
    fn ternary_and_comparisons() {
        let p = parse(
            "input a : seq<int>; state pos : int = 0;\n\
             for i in 0 .. len(a) { pos = pos + (a[i] > 0 ? 1 : 0); }",
        )
        .unwrap();
        let out = run_program(&p, &[Value::seq_of_ints(&[1, -2, 3, 0])]).unwrap();
        assert_eq!(out.scalar_named(&p, "pos"), Some(2));
    }

    #[test]
    fn run_from_custom_state_composes_like_a_fold() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; }",
        )
        .unwrap();
        let x = Value::seq_of_ints(&[1, 2]);
        let y = Value::seq_of_ints(&[3, 4]);
        let hx = run_program(&p, std::slice::from_ref(&x)).unwrap();
        let hxy = run_program_from(&p, std::slice::from_ref(&y), &hx).unwrap();
        let whole = run_program(&p, &[x.concat(&y)]).unwrap();
        assert_eq!(hxy, whole);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s / a[i]; }",
        )
        .unwrap();
        let err = run_program(&p, &[Value::seq_of_ints(&[0])]).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn out_of_bounds_index_is_an_error() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = a[i + 1]; }",
        )
        .unwrap();
        let err = run_program(&p, &[Value::seq_of_ints(&[7])]).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn wrong_arity_is_reported() {
        let p = parse("input a : seq<int>; state s : int = 0;").unwrap();
        assert!(run_program(&p, &[]).is_err());
    }

    #[test]
    fn state_projection_keeps_returns_only() {
        let p = parse(
            "input a : seq<int>; state s : int = 0; state aux : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; aux = max(aux, a[i]); }\n\
             return s;",
        )
        .unwrap();
        let out = run_program(&p, &[Value::seq_of_ints(&[4, 6])]).unwrap();
        let proj = out.project_returns(&p);
        assert_eq!(proj.entries().len(), 1);
        assert_eq!(proj.scalar_named(&p, "s"), Some(10));
        assert_eq!(proj.scalar_named(&p, "aux"), None);
    }
}
