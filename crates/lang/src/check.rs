//! Type and scope checking.
//!
//! Beyond ordinary type checking, the checker enforces the paper's program
//! model (§3.1): inputs are read-only, loop counters are not assignable,
//! and every `return`ed name is a declared state variable.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, Sym, UnOp};
use crate::error::{LangError, Result};
use crate::ty::Ty;
use std::collections::HashMap;

/// A lexical scope stack mapping symbols to types, with flags for
/// assignability.
#[derive(Debug, Default)]
struct Scopes {
    frames: Vec<HashMap<Sym, Binding>>,
}

#[derive(Debug, Clone)]
struct Binding {
    ty: Ty,
    assignable: bool,
}

impl Scopes {
    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, sym: Sym, ty: Ty, assignable: bool) {
        self.frames
            .last_mut()
            .expect("at least one scope frame")
            .insert(sym, Binding { ty, assignable });
    }

    fn lookup(&self, sym: Sym) -> Option<&Binding> {
        self.frames.iter().rev().find_map(|f| f.get(&sym))
    }
}

/// The checker context.
struct Checker<'p> {
    program: &'p Program,
    scopes: Scopes,
}

/// Type-check `program` in place.
///
/// # Errors
///
/// Returns a [`LangError::Type`] describing the first violation: an
/// undeclared or shadowed variable, a type mismatch, an assignment to an
/// input or loop counter, or a `return` of a non-state variable.
pub fn check_program(program: &mut Program) -> Result<()> {
    let mut checker = Checker {
        program,
        scopes: Scopes::default(),
    };
    checker.scopes.push();

    // Inputs: visible, not assignable.
    for input in &program.inputs {
        if !input.ty.is_seq() {
            return Err(LangError::ty(format!(
                "input `{}` must have a sequence type, found `{}`",
                program.name(input.name),
                input.ty
            )));
        }
        checker.scopes.declare(input.name, input.ty.clone(), false);
    }

    // State variables: visible, assignable; inits may reference inputs
    // (for shapes, e.g. `zeros(len(a[0]))`) and previously declared state.
    for decl in &program.state {
        let init_ty = checker.expr_ty(&decl.init)?;
        if init_ty != decl.ty {
            return Err(LangError::ty(format!(
                "state `{}` declared `{}` but initialized with `{}`",
                program.name(decl.name),
                decl.ty,
                init_ty
            )));
        }
        checker.scopes.declare(decl.name, decl.ty.clone(), true);
    }

    checker.check_block(&program.body)?;

    for &ret in &program.returns {
        if !program.is_state(ret) {
            return Err(LangError::ty(format!(
                "`return {}`: not a declared state variable",
                program.name(ret)
            )));
        }
    }
    Ok(())
}

impl Checker<'_> {
    fn check_block(&mut self, stmts: &[Stmt]) -> Result<()> {
        self.scopes.push();
        for stmt in stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Let { name, ty, init } => {
                let init_ty = self.expr_ty(init)?;
                if &init_ty != ty {
                    return Err(LangError::ty(format!(
                        "`let {}` declared `{}` but initialized with `{}`",
                        self.program.name(*name),
                        ty,
                        init_ty
                    )));
                }
                self.scopes.declare(*name, ty.clone(), true);
                Ok(())
            }
            Stmt::Assign { target, value } => {
                let target_ty = self.lvalue_ty(target)?;
                let value_ty = self.expr_ty(value)?;
                if target_ty != value_ty {
                    return Err(LangError::ty(format!(
                        "assignment to `{}`: expected `{}`, found `{}`",
                        self.program.name(target.base),
                        target_ty,
                        value_ty
                    )));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_ty = self.expr_ty(cond)?;
                if cond_ty != Ty::Bool {
                    return Err(LangError::ty(format!(
                        "`if` condition must be `bool`, found `{cond_ty}`"
                    )));
                }
                self.check_block(then_branch)?;
                self.check_block(else_branch)
            }
            Stmt::For { var, bound, body } => {
                let bound_ty = self.expr_ty(bound)?;
                if bound_ty != Ty::Int {
                    return Err(LangError::ty(format!(
                        "loop bound must be `int`, found `{bound_ty}`"
                    )));
                }
                self.scopes.push();
                self.scopes.declare(*var, Ty::Int, false);
                for stmt in body {
                    self.check_stmt(stmt)?;
                }
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn lvalue_ty(&mut self, lv: &LValue) -> Result<Ty> {
        let binding = self
            .scopes
            .lookup(lv.base)
            .ok_or_else(|| {
                LangError::ty(format!(
                    "assignment to undeclared variable `{}`",
                    self.program.name(lv.base)
                ))
            })?
            .clone();
        if !binding.assignable {
            return Err(LangError::ty(format!(
                "`{}` is read-only (input or loop counter) and cannot be assigned",
                self.program.name(lv.base)
            )));
        }
        let mut ty = binding.ty;
        for idx in &lv.indices {
            let idx_ty = self.expr_ty(idx)?;
            if idx_ty != Ty::Int {
                return Err(LangError::ty(format!(
                    "index expression must be `int`, found `{idx_ty}`"
                )));
            }
            ty = match ty {
                Ty::Seq(elem) => *elem,
                other => {
                    return Err(LangError::ty(format!(
                        "cannot index into non-sequence type `{other}`"
                    )))
                }
            };
        }
        Ok(ty)
    }

    /// Compute the type of an expression under the current scopes.
    fn expr_ty(&self, e: &Expr) -> Result<Ty> {
        match e {
            Expr::Int(_) => Ok(Ty::Int),
            Expr::Bool(_) => Ok(Ty::Bool),
            Expr::Var(sym) => self
                .scopes
                .lookup(*sym)
                .map(|b| b.ty.clone())
                .ok_or_else(|| {
                    LangError::ty(format!("undeclared variable `{}`", self.program.name(*sym)))
                }),
            Expr::Index(base, idx) => {
                let base_ty = self.expr_ty(base)?;
                let idx_ty = self.expr_ty(idx)?;
                if idx_ty != Ty::Int {
                    return Err(LangError::ty(format!(
                        "index expression must be `int`, found `{idx_ty}`"
                    )));
                }
                match base_ty {
                    Ty::Seq(elem) => Ok(*elem),
                    other => Err(LangError::ty(format!(
                        "cannot index into non-sequence type `{other}`"
                    ))),
                }
            }
            Expr::Len(inner) => {
                let t = self.expr_ty(inner)?;
                if t.is_seq() {
                    Ok(Ty::Int)
                } else {
                    Err(LangError::ty(format!(
                        "`len` requires a sequence, found `{t}`"
                    )))
                }
            }
            Expr::Zeros(n) => {
                let t = self.expr_ty(n)?;
                if t == Ty::Int {
                    Ok(Ty::seq(Ty::Int))
                } else {
                    Err(LangError::ty(format!(
                        "`zeros` requires an `int` length, found `{t}`"
                    )))
                }
            }
            Expr::Unary(op, inner) => {
                let t = self.expr_ty(inner)?;
                match op {
                    UnOp::Neg if t == Ty::Int => Ok(Ty::Int),
                    UnOp::Not if t == Ty::Bool => Ok(Ty::Bool),
                    UnOp::Neg => Err(LangError::ty(format!("`-` requires `int`, found `{t}`"))),
                    UnOp::Not => Err(LangError::ty(format!("`!` requires `bool`, found `{t}`"))),
                }
            }
            Expr::Binary(op, a, b) => {
                let ta = self.expr_ty(a)?;
                let tb = self.expr_ty(b)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        if ta == Ty::Bool && tb == Ty::Bool {
                            Ok(Ty::Bool)
                        } else {
                            Err(LangError::ty(format!(
                                "`{op}` requires `bool` operands, found `{ta}` and `{tb}`"
                            )))
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if ta == tb && ta.is_scalar() {
                            Ok(Ty::Bool)
                        } else {
                            Err(LangError::ty(format!(
                                "`{op}` requires matching scalar operands, found `{ta}` and `{tb}`"
                            )))
                        }
                    }
                    _ => {
                        if ta == Ty::Int && tb == Ty::Int {
                            Ok(op.result_ty())
                        } else {
                            Err(LangError::ty(format!(
                                "`{op}` requires `int` operands, found `{ta}` and `{tb}`"
                            )))
                        }
                    }
                }
            }
            Expr::Ite(c, t, e2) => {
                let tc = self.expr_ty(c)?;
                if tc != Ty::Bool {
                    return Err(LangError::ty(format!(
                        "`?:` condition must be `bool`, found `{tc}`"
                    )));
                }
                let tt = self.expr_ty(t)?;
                let te = self.expr_ty(e2)?;
                if tt == te {
                    Ok(tt)
                } else {
                    Err(LangError::ty(format!(
                        "`?:` branches disagree: `{tt}` vs `{te}`"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn accepts_well_typed_program() {
        assert!(parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_assignment_to_input() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { a[i] = 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("read-only"));
    }

    #[test]
    fn rejects_assignment_to_loop_counter() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { i = 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("read-only"));
    }

    #[test]
    fn rejects_type_mismatch_in_assignment() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = a[i] > 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected `int`"));
    }

    #[test]
    fn rejects_bool_loop_bound() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. true { s = 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("loop bound"));
    }

    #[test]
    fn rejects_scalar_input() {
        let err = parse("input a : int; state s : int = 0;").unwrap_err();
        assert!(err.to_string().contains("sequence type"));
    }

    #[test]
    fn rejects_return_of_non_state() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; } return a;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not a declared state variable"));
    }

    #[test]
    fn accepts_zeros_initialized_array_state() {
        assert!(parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state m : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; m = max(m, rec[j]); } }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + ghost; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn let_scoped_to_block() {
        // `t` is declared in the inner loop body and used outside it.
        let err = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               for j in 0 .. len(a[i]) { let t : int = a[i][j]; }\n\
               s = s + t;\n\
             }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn ite_branch_types_must_agree() {
        let err = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = a[i] > 0 ? 1 : false; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("branches disagree"));
    }
}
