//! Error types shared by the lexer, parser, checker and interpreter.

use std::fmt;

/// Convenient alias used throughout `parsynt-lang`.
pub type Result<T> = std::result::Result<T, LangError>;

/// Any error produced while processing a mini-language program.
///
/// The variants carry a human-readable message and, where available, the
/// line number (1-based) in the original source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A lexical error (unexpected character, bad literal).
    Lex { message: String, line: u32 },
    /// A syntax error from the recursive-descent parser.
    Parse { message: String, line: u32 },
    /// A type error or scoping error from the checker.
    Type { message: String },
    /// A runtime error from the interpreter (index out of bounds,
    /// division by zero, uninitialized variable).
    Eval { message: String },
}

impl LangError {
    /// Create a lexical error at `line`.
    pub fn lex(message: impl Into<String>, line: u32) -> Self {
        LangError::Lex {
            message: message.into(),
            line,
        }
    }

    /// Create a parse error at `line`.
    pub fn parse(message: impl Into<String>, line: u32) -> Self {
        LangError::Parse {
            message: message.into(),
            line,
        }
    }

    /// Create a type/scoping error.
    pub fn ty(message: impl Into<String>) -> Self {
        LangError::Type {
            message: message.into(),
        }
    }

    /// Create a runtime (evaluation) error.
    pub fn eval(message: impl Into<String>) -> Self {
        LangError::Eval {
            message: message.into(),
        }
    }

    /// The message carried by this error, without location information.
    pub fn message(&self) -> &str {
        match self {
            LangError::Lex { message, .. }
            | LangError::Parse { message, .. }
            | LangError::Type { message }
            | LangError::Eval { message } => message,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { message, line } => {
                write!(f, "lexical error at line {line}: {message}")
            }
            LangError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LangError::Type { message } => write!(f, "type error: {message}"),
            LangError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = LangError::parse("unexpected token", 7);
        assert_eq!(e.to_string(), "parse error at line 7: unexpected token");
    }

    #[test]
    fn display_type_error() {
        let e = LangError::ty("mismatched types");
        assert_eq!(e.to_string(), "type error: mismatched types");
    }

    #[test]
    fn message_strips_location() {
        assert_eq!(LangError::lex("bad char", 3).message(), "bad char");
        assert_eq!(LangError::eval("oob").message(), "oob");
    }
}
