//! Pretty-printing of expressions, statements and programs.
//!
//! Because identifiers are interned, printing needs an [`Interner`];
//! the entry points take one and return displayable wrappers.

use crate::ast::{Expr, Interner, LValue, Program, Stmt, UnOp};
use std::fmt::{self, Write as _};

/// Render an expression to a string using `interner` for names.
pub fn expr_to_string(interner: &Interner, e: &Expr) -> String {
    PrettyExpr { interner, expr: e }.to_string()
}

/// Render a statement (with nested blocks) to a string.
pub fn stmt_to_string(interner: &Interner, s: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, interner, s, 0).expect("write to String cannot fail");
    out
}

/// Render a whole program back to (re-parseable) surface syntax.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for input in &p.inputs {
        let _ = writeln!(out, "input {} : {};", p.name(input.name), input.ty);
    }
    for decl in &p.state {
        let _ = writeln!(
            out,
            "state {} : {} = {};",
            p.name(decl.name),
            decl.ty,
            expr_to_string(&p.interner, &decl.init)
        );
    }
    for stmt in &p.body {
        let _ = write_stmt(&mut out, &p.interner, stmt, 0);
    }
    if !p.returns.is_empty() {
        let names: Vec<&str> = p.returns.iter().map(|&s| p.name(s)).collect();
        let _ = writeln!(out, "return {};", names.join(", "));
    }
    out
}

/// A displayable expression wrapper.
struct PrettyExpr<'a> {
    interner: &'a Interner,
    expr: &'a Expr,
}

impl fmt::Display for PrettyExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.interner, self.expr, 0)
    }
}

/// Operator precedence used to minimize parentheses; larger binds tighter.
fn prec(e: &Expr) -> u8 {
    use crate::ast::BinOp::*;
    match e {
        Expr::Ite(..) => 1,
        Expr::Binary(op, ..) => match op {
            Or => 2,
            And => 3,
            Eq | Ne => 4,
            Lt | Le | Gt | Ge => 5,
            Add | Sub => 6,
            Mul | Div | Rem => 7,
            Min | Max => 10, // printed as calls
        },
        Expr::Unary(..) => 8,
        _ => 10,
    }
}

fn write_expr(
    f: &mut dyn fmt::Write,
    interner: &Interner,
    e: &Expr,
    parent_prec: u8,
) -> fmt::Result {
    use crate::ast::BinOp::{Max, Min};
    let my_prec = prec(e);
    let needs_parens = my_prec < parent_prec;
    if needs_parens {
        f.write_char('(')?;
    }
    match e {
        Expr::Int(n) => write!(f, "{n}")?,
        Expr::Bool(b) => write!(f, "{b}")?,
        Expr::Var(s) => f.write_str(interner.name(*s))?,
        Expr::Index(base, idx) => {
            write_expr(f, interner, base, 10)?;
            f.write_char('[')?;
            write_expr(f, interner, idx, 0)?;
            f.write_char(']')?;
        }
        Expr::Len(inner) => {
            f.write_str("len(")?;
            write_expr(f, interner, inner, 0)?;
            f.write_char(')')?;
        }
        Expr::Zeros(inner) => {
            f.write_str("zeros(")?;
            write_expr(f, interner, inner, 0)?;
            f.write_char(')')?;
        }
        Expr::Unary(op, inner) => {
            f.write_char(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            })?;
            write_expr(f, interner, inner, my_prec)?;
        }
        Expr::Binary(op, a, b) if matches!(op, Min | Max) => {
            write!(f, "{op}(")?;
            write_expr(f, interner, a, 0)?;
            f.write_str(", ")?;
            write_expr(f, interner, b, 0)?;
            f.write_char(')')?;
        }
        Expr::Binary(op, a, b) => {
            write_expr(f, interner, a, my_prec)?;
            write!(f, " {op} ")?;
            write_expr(f, interner, b, my_prec + 1)?;
        }
        Expr::Ite(c, t, e2) => {
            write_expr(f, interner, c, my_prec + 1)?;
            f.write_str(" ? ")?;
            write_expr(f, interner, t, my_prec)?;
            f.write_str(" : ")?;
            write_expr(f, interner, e2, my_prec)?;
        }
    }
    if needs_parens {
        f.write_char(')')?;
    }
    Ok(())
}

fn write_lvalue(f: &mut dyn fmt::Write, interner: &Interner, lv: &LValue) -> fmt::Result {
    f.write_str(interner.name(lv.base))?;
    for idx in &lv.indices {
        f.write_char('[')?;
        write_expr(f, interner, idx, 0)?;
        f.write_char(']')?;
    }
    Ok(())
}

fn write_stmt(f: &mut dyn fmt::Write, interner: &Interner, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Let { name, ty, init } => {
            write!(f, "{pad}let {} : {} = ", interner.name(*name), ty)?;
            write_expr(f, interner, init, 0)?;
            f.write_str(";\n")
        }
        Stmt::Assign { target, value } => {
            f.write_str(&pad)?;
            write_lvalue(f, interner, target)?;
            f.write_str(" = ")?;
            write_expr(f, interner, value, 0)?;
            f.write_str(";\n")
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            write!(f, "{pad}if (")?;
            write_expr(f, interner, cond, 0)?;
            f.write_str(") {\n")?;
            for stmt in then_branch {
                write_stmt(f, interner, stmt, indent + 1)?;
            }
            if else_branch.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                for stmt in else_branch {
                    write_stmt(f, interner, stmt, indent + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::For { var, bound, body } => {
            write!(f, "{pad}for {} in 0 .. ", interner.name(*var))?;
            write_expr(f, interner, bound, 0)?;
            f.write_str(" {\n")?;
            for stmt in body {
                write_stmt(f, interner, stmt, indent + 1)?;
            }
            writeln!(f, "{pad}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn program_round_trips_through_pretty_printer() {
        let src = "input a : seq<seq<int>>; state s : int = 0;\n\
                   state m : int = 0 - 100;\n\
                   for i in 0 .. len(a) {\n\
                     let row : int = 0;\n\
                     for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
                     if (row > m) { m = row; } else { s = s + 1; }\n\
                   }\n\
                   return s, m;";
        let p1 = parse(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse(&printed).unwrap();
        // Semantic round trip: both programs produce the same output.
        let input = crate::Value::seq2_of_ints(&[vec![5, -1], vec![2, 2]]);
        let o1 = crate::interp::run_program(&p1, std::slice::from_ref(&input)).unwrap();
        let o2 = crate::interp::run_program(&p2, &[input]).unwrap();
        assert_eq!(o1.scalar_named(&p1, "s"), o2.scalar_named(&p2, "s"));
        assert_eq!(o1.scalar_named(&p1, "m"), o2.scalar_named(&p2, "m"));
    }

    #[test]
    fn minimal_parentheses() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i] * 2; }",
        )
        .unwrap();
        let printed = program_to_string(&p);
        assert!(printed.contains("s = s + a[i] * 2;"), "got:\n{printed}");
    }

    #[test]
    fn max_prints_as_call() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = max(s + a[i], 0); }",
        )
        .unwrap();
        assert!(program_to_string(&p).contains("max(s + a[i], 0)"));
    }

    #[test]
    fn ternary_parenthesized_inside_arithmetic() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + (a[i] > 0 ? 1 : 0); }",
        )
        .unwrap();
        let printed = program_to_string(&p);
        let reparsed = parse(&printed).unwrap();
        let input = crate::Value::seq_of_ints(&[3, -4, 5]);
        let o1 = crate::interp::run_program(&p, std::slice::from_ref(&input)).unwrap();
        let o2 = crate::interp::run_program(&reparsed, &[input]).unwrap();
        assert_eq!(o1.scalar_named(&p, "s"), o2.scalar_named(&reparsed, "s"));
    }
}
