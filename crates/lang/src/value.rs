//! Runtime values of the mini language.

use crate::ty::Ty;
use std::fmt;

/// A runtime value: a scalar or a (possibly nested) sequence.
///
/// Sequences are stored as plain vectors; the interpreter never mutates
/// input values (the paper's programs are read-only over their inputs),
/// so sharing by reference is safe throughout.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer scalar.
    Int(i64),
    /// A boolean scalar.
    Bool(bool),
    /// A sequence of values (all of the same type).
    Seq(Vec<Value>),
}

impl Value {
    /// Build a 1-dimensional integer sequence.
    ///
    /// # Example
    ///
    /// ```
    /// use parsynt_lang::Value;
    /// let v = Value::seq_of_ints(&[1, 2]);
    /// assert_eq!(v.len(), Some(2));
    /// ```
    pub fn seq_of_ints(items: &[i64]) -> Value {
        Value::Seq(items.iter().copied().map(Value::Int).collect())
    }

    /// Build a 2-dimensional integer sequence from rows.
    pub fn seq2_of_ints(rows: &[Vec<i64>]) -> Value {
        Value::Seq(rows.iter().map(|r| Value::seq_of_ints(r)).collect())
    }

    /// Build a 3-dimensional integer sequence from planes of rows.
    pub fn seq3_of_ints(planes: &[Vec<Vec<i64>>]) -> Value {
        Value::Seq(planes.iter().map(|p| Value::seq2_of_ints(p)).collect())
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Length of a sequence value; `None` for scalars.
    pub fn len(&self) -> Option<usize> {
        self.as_seq().map(<[Value]>::len)
    }

    /// Whether this is an empty sequence. Scalars are never "empty".
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// The runtime type of the value. Empty sequences report `seq<int>`
    /// since the element type cannot be observed.
    pub fn type_of(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Bool(_) => Ty::Bool,
            Value::Seq(items) => match items.first() {
                Some(first) => Ty::seq(first.type_of()),
                None => Ty::seq(Ty::Int),
            },
        }
    }

    /// Concatenate two sequence values (the `•` operator of §3).
    ///
    /// # Panics
    ///
    /// Panics if either value is a scalar: concatenation is only defined on
    /// sequences.
    pub fn concat(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Seq(a), Value::Seq(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Value::Seq(out)
            }
            _ => panic!("concat is only defined on sequences"),
        }
    }

    /// The subsequence `self[lo..hi]` of a sequence value.
    ///
    /// # Panics
    ///
    /// Panics if the value is a scalar or the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> Value {
        match self {
            Value::Seq(items) => Value::Seq(items[lo..hi].to_vec()),
            _ => panic!("slice is only defined on sequences"),
        }
    }

    /// The default value of a type: `0`, `false`, or the empty sequence.
    pub fn zero_of(ty: &Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Bool => Value::Bool(false),
            Ty::Seq(_) => Value::Seq(Vec::new()),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Seq(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Value::seq2_of_ints(&[vec![1, 2], vec![3]]);
        assert_eq!(v.len(), Some(2));
        assert_eq!(
            v.as_seq().unwrap()[0].as_seq().unwrap()[1].as_int(),
            Some(2)
        );
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_seq(), None);
    }

    #[test]
    fn type_of_nested() {
        let v = Value::seq3_of_ints(&[vec![vec![1]]]);
        assert_eq!(v.type_of(), Ty::seq_n(Ty::Int, 3));
        assert_eq!(Value::Seq(vec![]).type_of(), Ty::seq(Ty::Int));
    }

    #[test]
    fn concat_is_associative_on_samples() {
        let a = Value::seq_of_ints(&[1]);
        let b = Value::seq_of_ints(&[2, 3]);
        let c = Value::seq_of_ints(&[4]);
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }

    #[test]
    fn slice_matches_concat_split() {
        let x = Value::seq_of_ints(&[5, 6, 7, 8]);
        let l = x.slice(0, 2);
        let r = x.slice(2, 4);
        assert_eq!(l.concat(&r), x);
    }

    #[test]
    fn zero_of_each_type() {
        assert_eq!(Value::zero_of(&Ty::Int), Value::Int(0));
        assert_eq!(Value::zero_of(&Ty::Bool), Value::Bool(false));
        assert_eq!(Value::zero_of(&Ty::seq(Ty::Int)), Value::Seq(vec![]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::seq_of_ints(&[1, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    #[should_panic(expected = "concat is only defined on sequences")]
    fn concat_panics_on_scalars() {
        let _ = Value::Int(1).concat(&Value::Int(2));
    }
}
