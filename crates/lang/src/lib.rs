//! # parsynt-lang
//!
//! The input language of ParSynt: a small imperative language over scalars
//! (`int`, `bool`) and multidimensional sequences (`seq<...>`), exactly the
//! program model of §3 of *Modular Divide-and-Conquer Parallelization of
//! Nested Loops* (PLDI 2019).
//!
//! The crate provides
//!
//! * an [`ast`] with interned symbols,
//! * a [`lexer`](lexer::Lexer) and recursive-descent [parser](parse),
//! * a [type checker](check::check_program) that also partitions variables
//!   into state variables (`SVar`) and input variables (`IVar`),
//! * a reference [interpreter](interp) used as the semantic oracle for
//!   bounded verification during synthesis,
//! * the [functional form](functional::RightwardFn) of a loop nest
//!   (Definition 4.1 of the paper): fold over the outermost dimension,
//!   with the inner loop nest runnable in isolation,
//! * structural [`analysis`] (loop depth, state dependency order,
//!   memorylessness of the nest).
//!
//! # Example
//!
//! ```
//! use parsynt_lang::{parse, interp::run_program, value::Value};
//!
//! let src = r#"
//!     input a : seq<int>;
//!     state s : int = 0;
//!     for i in 0 .. len(a) { s = s + a[i]; }
//!     return s;
//! "#;
//! let program = parse(src).expect("parses");
//! let input = Value::seq_of_ints(&[1, 2, 3, 4]);
//! let out = run_program(&program, &[input]).expect("runs");
//! assert_eq!(out.scalar_named(&program, "s"), Some(10));
//! ```

pub mod analysis;
pub mod ast;
pub mod check;
pub mod error;
pub mod functional;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod ty;
pub mod value;

pub use ast::{BinOp, Expr, Interner, LValue, Program, Stmt, Sym, UnOp};
pub use error::{LangError, Result};
pub use ty::Ty;
pub use value::Value;

/// Parse a program from source text and type-check it.
///
/// This is the main entry point; it runs the lexer, the parser and the
/// checker and returns a ready-to-interpret [`Program`].
///
/// # Errors
///
/// Returns a [`LangError`] describing the first lexical, syntactic or type
/// error encountered.
///
/// # Example
///
/// ```
/// let p = parsynt_lang::parse("input a : seq<int>; state s : int = 0; \
///                              for i in 0 .. len(a) { s = s + a[i]; } return s;");
/// assert!(p.is_ok());
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lexer::Lexer::new(src).tokenize()?;
    let mut program = parser::Parser::new(tokens).parse_program()?;
    check::check_program(&mut program)?;
    Ok(program)
}
