//! Property-based tests of the language front end: pretty-print →
//! re-parse round trips, fold decomposition of the interpreter, and the
//! slicing identity underlying the whole approach
//! (`h` on a prefix, resumed on the suffix, equals `h` on the whole).

use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::{run_program, run_program_from};
use parsynt_lang::pretty::program_to_string;
use parsynt_lang::{parse, Value};
use proptest::prelude::*;

fn arb_rows() -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1usize..5).prop_flat_map(|cols| {
        proptest::collection::vec(proptest::collection::vec(-9i64..=9, cols..=cols), 1..8)
    })
}

const PROGRAMS: [&str; 4] = [
    // sum
    "input a : seq<seq<int>>; state s : int = 0;\n\
     for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
    // guarded count
    "input a : seq<seq<int>>; state c : int = 0;\n\
     for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
       if (a[i][j] > 0) { c = c + 1; } else { c = c - 1; } } }",
    // row max tracking with lets and ternaries
    "input a : seq<seq<int>>; state m : int = 0 - 1000;\n\
     for i in 0 .. len(a) {\n\
       let rm : int = a[i][0];\n\
       for j in 0 .. len(a[i]) { rm = rm > a[i][j] ? rm : a[i][j]; }\n\
       m = max(m, rm);\n\
     }",
    // array state
    "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
     for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
       rec[j] = rec[j] + a[i][j]; } }",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pretty-printing then re-parsing yields an observationally equal
    /// program.
    #[test]
    fn pretty_print_round_trip(rows in arb_rows(), pick in 0usize..PROGRAMS.len()) {
        let p1 = parse(PROGRAMS[pick]).unwrap();
        let p2 = parse(&program_to_string(&p1)).unwrap();
        let input = Value::seq2_of_ints(&rows);
        let o1 = run_program(&p1, std::slice::from_ref(&input)).unwrap();
        let o2 = run_program(&p2, &[input]).unwrap();
        // Compare by name (symbols differ between interners).
        for decl in &p1.state {
            let name = p1.name(decl.name);
            prop_assert_eq!(
                o1.value_named(&p1, name),
                o2.value_named(&p2, name),
                "variable {}", name
            );
        }
    }

    /// The rightward-fold identity: running on a prefix, then resuming
    /// on the suffix from the intermediate state, equals one full run.
    #[test]
    fn prefix_suffix_composition(rows in arb_rows(), pick in 0usize..PROGRAMS.len()) {
        let p = parse(PROGRAMS[pick]).unwrap();
        let input = Value::seq2_of_ints(&rows);
        let n = rows.len();
        let whole = run_program(&p, std::slice::from_ref(&input)).unwrap();
        for split in 1..n {
            let f = RightwardFn::new(&p).unwrap();
            let prefix = f.apply_slice(std::slice::from_ref(&input), 0, split).unwrap();
            let resumed = run_program_from(
                &p,
                &[input.slice(split, n)],
                &prefix,
            ).unwrap();
            prop_assert_eq!(&resumed, &whole, "split {}", split);
        }
    }

    /// The outer-step decomposition of the functional form equals the
    /// monolithic run.
    #[test]
    fn outer_step_decomposition(rows in arb_rows(), pick in 0usize..PROGRAMS.len()) {
        let p = parse(PROGRAMS[pick]).unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let input = Value::seq2_of_ints(&rows);
        let inputs = vec![input];
        let whole = f.apply(&inputs).unwrap();
        // The initial state is evaluated against the full input: state
        // initializers may read input shapes (`zeros(len(a[0]))`).
        let env = parsynt_lang::interp::init_env(&p, &inputs).unwrap();
        let mut state = parsynt_lang::interp::read_state(&p, &env).unwrap();
        for i in 0..rows.len() {
            state = f.outer_step(&inputs, i, &state).unwrap();
        }
        prop_assert_eq!(state, whole);
    }

    /// Memoryless programs: the inner result is independent of the outer
    /// state (Definition 4.2), exercised on the sum program.
    #[test]
    fn inner_phase_state_independence(rows in arb_rows(), weird in -100i64..100) {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               s = s + row;\n\
             }",
        ).unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let input = Value::seq2_of_ints(&rows);
        let inputs = vec![input];
        let s = p.sym("s").unwrap();
        for i in 0..rows.len() {
            let from_zero = f.inner_phase_from_zero(&inputs, i).unwrap();
            let state = parsynt_lang::interp::StateVec::new(
                vec![(s, Value::Int(weird))],
            );
            let (from_weird, _) = f.inner_phase_from(&inputs, i, &state).unwrap();
            prop_assert_eq!(&from_zero, &from_weird);
        }
    }
}
