//! # parsynt-serve
//!
//! Synthesis-as-a-service: an HTTP/JSON daemon over the
//! [`parsynt_core::Pipeline`] with a content-addressed
//! [`SolutionCache`]. POSTed PSL programs are fingerprinted in
//! normalized form; repeat submissions (including across daemon
//! restarts, with a persistent cache directory) are re-served from the
//! cache without running any synthesis.
//!
//! ## Endpoints
//!
//! | method/path          | purpose                                      |
//! |----------------------|----------------------------------------------|
//! | `POST /parallelize`  | run (or re-serve) the Figure-7 schema        |
//! | `GET /healthz`       | liveness + version                           |
//! | `GET /stats`         | cache hits/misses/evictions, in-flight, served |
//!
//! ## Status mapping
//!
//! The response status carries the same semantics as the CLI's exit
//! codes (see `parsynt --help`):
//!
//! | outcome                              | CLI exit | HTTP |
//! |--------------------------------------|----------|------|
//! | parallelized (d&c or map-only)       | 0        | 200  |
//! | execution degraded to sequential     | 8        | 206  |
//! | program did not parse / bad request  | 4        | 400  |
//! | not efficiently parallelizable       | —        | 422  |
//! | synthesis deadline exceeded          | 7        | 504  |
//! | queue full (load shed)               | —        | 503  |
//!
//! Deadline expiry wins over the unparallelizable outcome it manifests
//! as, exactly as in the CLI.

use parsynt_core::{
    CacheStats, Pipeline, PipelineConfig, PipelineReport, PipelineReportJson, SolutionCache,
};
use parsynt_lang::parse;
use parsynt_synth::examples::InputProfile;
use parsynt_trace::sinks::{TaggedSink, WriterSink};
use parsynt_trace::{TraceSink, Tracer};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod http;
pub mod server;

pub use server::{ServeConfig, Server, ServerHandle};

/// The body of `POST /parallelize`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelizeRequest {
    /// PSL source text of the loop nest to parallelize.
    pub program: String,
    /// Synthesis deadline in milliseconds; overrides the daemon's
    /// default. `0` expires immediately (useful to probe the cache:
    /// hits still return `200`).
    #[serde(default)]
    pub timeout_ms: Option<u64>,
    /// Synthesis RNG seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Candidate-screening threads (1 = sequential CEGIS).
    #[serde(default)]
    pub synth_threads: Option<usize>,
    /// Verify against bracket inputs (`-1`/`1` choices) instead of the
    /// default value distribution.
    #[serde(default)]
    pub brackets: bool,
    /// Fix every inner row to exactly this width (the CLI's
    /// `--pair-width`); required by benchmarks that index `a[i][k]`
    /// with constant `k`.
    #[serde(default)]
    pub pair_width: Option<usize>,
}

/// The body of a `POST /parallelize` response (any status except the
/// pre-parse failures, which carry an [`ErrorBody`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelizeResponse {
    /// Server-assigned request id; also tags every event in the
    /// request's trace file.
    pub request_id: String,
    /// Normalized-form fingerprint of the submitted program (hex).
    pub fingerprint: String,
    /// Whether the solution was re-served from the cache.
    pub cache_hit: bool,
    /// The rendered plan — byte-identical between the original
    /// synthesis and every later cache hit.
    pub plan: String,
    /// The full versioned report (same shape as the CLI's `--json`).
    pub report: PipelineReportJson,
}

/// JSON error envelope for non-report failures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable failure description.
    pub error: String,
    /// Request id, when one was assigned before the failure.
    #[serde(default)]
    pub request_id: Option<String>,
}

/// The body of `GET /stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Solution-cache counters.
    pub cache: CacheStats,
    /// Requests currently being served by the worker pool.
    pub in_flight: u64,
    /// Connections answered since startup (any status).
    pub served: u64,
    /// Connections answered `503` because the queue was full.
    pub shed: u64,
}

/// The body of `GET /healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the daemon can answer at all.
    pub status: String,
    /// Crate version of the daemon.
    pub version: String,
}

/// Shared daemon state: the cache, the counters, and the trace sink
/// configuration.
pub(crate) struct ServerState {
    pub(crate) cache: Arc<SolutionCache>,
    pub(crate) in_flight: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) shed: AtomicU64,
    request_counter: AtomicU64,
    trace_dir: Option<PathBuf>,
    default_timeout_ms: Option<u64>,
}

impl ServerState {
    pub(crate) fn new(
        cache: Arc<SolutionCache>,
        trace_dir: Option<PathBuf>,
        default_timeout_ms: Option<u64>,
    ) -> Self {
        ServerState {
            cache,
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            request_counter: AtomicU64::new(0),
            trace_dir,
            default_timeout_ms,
        }
    }
}

/// Map a finished pipeline report onto its response status (the HTTP
/// face of the CLI's exit codes — see the crate-level table).
pub fn http_status_for(report: &PipelineReport) -> u16 {
    if report.report().deadline_exceeded {
        504
    } else if report.degraded {
        206
    } else if report.parallelization.is_unparallelizable() {
        422
    } else {
        200
    }
}

fn error_body(error: String, request_id: Option<String>) -> String {
    serde_json::to_string(&ErrorBody { error, request_id })
        .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".to_owned())
}

/// Route one parsed request to its handler; returns `(status, body)`.
pub(crate) fn handle(
    state: &Arc<ServerState>,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, String) {
    match (method, path) {
        ("POST", "/parallelize") => handle_parallelize(state, body),
        ("GET", "/healthz") => (
            200,
            serde_json::to_string(&HealthResponse {
                status: "ok".to_owned(),
                version: env!("CARGO_PKG_VERSION").to_owned(),
            })
            .unwrap_or_default(),
        ),
        ("GET", "/stats") => (
            200,
            serde_json::to_string(&StatsResponse {
                cache: state.cache.stats(),
                in_flight: state.in_flight.load(Ordering::Relaxed),
                served: state.served.load(Ordering::Relaxed),
                shed: state.shed.load(Ordering::Relaxed),
            })
            .unwrap_or_default(),
        ),
        (_, "/parallelize") | (_, "/healthz") | (_, "/stats") => (
            405,
            error_body(format!("method {method} not allowed on {path}"), None),
        ),
        _ => (404, error_body(format!("no such endpoint: {path}"), None)),
    }
}

fn handle_parallelize(state: &Arc<ServerState>, body: &[u8]) -> (u16, String) {
    let request_id = format!(
        "req-{:08}",
        state.request_counter.fetch_add(1, Ordering::Relaxed)
    );
    let request: ParallelizeRequest = match serde_json::from_slice(body) {
        Ok(request) => request,
        Err(e) => {
            return (
                400,
                error_body(format!("bad request body: {e}"), Some(request_id)),
            )
        }
    };
    let program = match parse(&request.program) {
        Ok(program) => program,
        Err(e) => {
            return (
                400,
                error_body(format!("program does not parse: {e}"), Some(request_id)),
            )
        }
    };

    let mut profile = InputProfile::default();
    if request.brackets {
        profile = profile.with_choices(&[-1, 1]);
    }
    if let Some(w) = request.pair_width {
        profile = profile.with_cols(w.max(1), w.max(1));
    }
    let mut cfg = PipelineConfig::default().with_profile(profile);
    if let Some(seed) = request.seed {
        cfg = cfg.with_seed(seed);
    }
    if let Some(threads) = request.synth_threads {
        cfg = cfg.with_synth_threads(threads);
    }
    if let Some(ms) = request.timeout_ms.or(state.default_timeout_ms) {
        cfg = cfg.with_timeout_ms(ms);
    }

    // Per-request trace: every event lands in <trace_dir>/<id>.jsonl,
    // tagged with the request id.
    let trace_sink: Option<Arc<dyn TraceSink>> = state.trace_dir.as_ref().and_then(|dir| {
        std::fs::create_dir_all(dir).ok()?;
        let file = WriterSink::to_file(dir.join(format!("{request_id}.jsonl"))).ok()?;
        Some(Arc::new(TaggedSink::new(
            Arc::new(file),
            &[("request_id", request_id.as_str().into())],
        )) as Arc<dyn TraceSink>)
    });
    let request_tracer = match &trace_sink {
        Some(sink) => Tracer::new(Arc::clone(sink)),
        None => Tracer::disabled(),
    };
    let mut request_span = request_tracer.span_with(
        "serve",
        "request",
        &[("request_id", request_id.as_str().into())],
    );

    let fingerprint = parsynt_core::fingerprint(&program);
    let mut pipeline = Pipeline::new(&program)
        .configure(cfg)
        .cache(Arc::clone(&state.cache));
    if let Some(sink) = &trace_sink {
        pipeline = pipeline.sink_arc(Arc::clone(sink));
    }
    let report = match pipeline.run() {
        Ok(report) => report,
        Err(e) => {
            request_span.record("status", 500u64);
            return (
                500,
                error_body(format!("synthesis failed: {e}"), Some(request_id)),
            );
        }
    };

    let status = http_status_for(&report);
    request_span.record("status", u64::from(status));
    request_span.record("cache_hit", report.cache_hit);
    drop(request_span);
    request_tracer.flush();

    let response = ParallelizeResponse {
        request_id: request_id.clone(),
        fingerprint: parsynt_core::fingerprint_hex(fingerprint),
        cache_hit: report.cache_hit,
        plan: report.plan_text().to_owned(),
        report: report.to_json_struct(),
    };
    match serde_json::to_string(&response) {
        Ok(body) => (status, body),
        Err(e) => (
            500,
            error_body(format!("unserializable report: {e}"), Some(request_id)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> Arc<ServerState> {
        Arc::new(ServerState::new(
            Arc::new(SolutionCache::in_memory(8)),
            None,
            None,
        ))
    }

    #[test]
    fn unknown_paths_are_404_and_wrong_methods_405() {
        let state = state();
        let (status, _) = handle(&state, "GET", "/nope", b"");
        assert_eq!(status, 404);
        let (status, _) = handle(&state, "DELETE", "/parallelize", b"");
        assert_eq!(status, 405);
        let (status, _) = handle(&state, "POST", "/healthz", b"");
        assert_eq!(status, 405);
    }

    #[test]
    fn healthz_and_stats_answer_json() {
        let state = state();
        let (status, body) = handle(&state, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(health.status, "ok");
        let (status, body) = handle(&state, "GET", "/stats", b"");
        assert_eq!(status, 200);
        let stats: StatsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(stats.cache.hits, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn bad_json_and_bad_programs_are_400() {
        let state = state();
        let (status, body) = handle(&state, "POST", "/parallelize", b"not json");
        assert_eq!(status, 400);
        assert!(body.contains("bad request body"));
        let request = serde_json::to_string(&ParallelizeRequest {
            program: "this is not psl".to_owned(),
            timeout_ms: None,
            seed: None,
            synth_threads: None,
            brackets: false,
            pair_width: None,
        })
        .unwrap();
        let (status, body) = handle(&state, "POST", "/parallelize", request.as_bytes());
        assert_eq!(status, 400);
        assert!(body.contains("does not parse"));
    }

    #[test]
    fn degraded_reports_map_to_206() {
        let program = parsynt_lang::parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let mut report = Pipeline::new(&program).run().unwrap();
        assert_eq!(http_status_for(&report), 200);
        report.degraded = true;
        assert_eq!(http_status_for(&report), 206);
    }
}
