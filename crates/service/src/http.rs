//! A deliberately small HTTP/1.1 subset over `std::net` — just enough
//! for a loopback JSON service: one request per connection
//! (`Connection: close`), `Content-Length` bodies, no chunked encoding,
//! no keep-alive, no TLS.
//!
//! Keeping this hand-rolled (rather than stubbing a full HTTP crate)
//! keeps the daemon dependency-free and the parsing surface small
//! enough to be exhaustively tested.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on request bodies; larger requests get `413`.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on the header section; longer sections are malformed.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, and body. Headers other than
/// `Content-Length` are read and discarded.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …) as sent.
    pub method: String,
    /// Request path without query parsing (`/parallelize`).
    pub path: String,
    /// Raw request body.
    pub body: Vec<u8>,
}

/// Why a request could not be served at the HTTP layer.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure.
    Io(io::Error),
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Read one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// Returns [`RequestError::Malformed`] for anything that is not a
/// well-formed request line + headers + sized body, and
/// [`RequestError::BodyTooLarge`] when the declared length exceeds the
/// cap (the caller answers `413` without reading the body).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line lacks a path".into()))?
        .to_owned();
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        other => {
            return Err(RequestError::Malformed(format!(
                "bad HTTP version {other:?}"
            )))
        }
    }

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::Malformed("header section too long".into()));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header without a colon: {trimmed:?}"
            )));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// The standard reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates socket write failures (the caller logs and drops them —
/// the peer may have gone away).
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream);
        writer.join().unwrap();
        request
    }

    #[test]
    fn parses_a_posted_body() {
        let request =
            roundtrip(b"POST /parallelize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/parallelize");
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let huge = format!(
            "POST /parallelize HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match roundtrip(huge.as_bytes()) {
            Err(RequestError::BodyTooLarge(n)) => assert_eq!(n, MAX_BODY_BYTES + 1),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_http_noise() {
        assert!(matches!(
            roundtrip(b"hello world\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }
}
