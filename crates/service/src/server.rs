//! The daemon: a `TcpListener` accept loop in front of a fixed worker
//! pool connected by a bounded queue.
//!
//! Admission control is explicit: the accept loop never blocks on a
//! busy pool. When the queue is full the connection is answered `503`
//! immediately, so load shedding is visible to clients instead of
//! turning into unbounded connection backlog.

use crate::http::{read_request, write_json_response, Request, RequestError};
use crate::{handle, ServerState};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parsynt_core::cache::DEFAULT_CAPACITY;
use parsynt_core::SolutionCache;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads running synthesis requests.
    pub workers: usize,
    /// Bounded depth of the accept→worker queue; a full queue sheds
    /// load with `503`.
    pub queue_depth: usize,
    /// In-memory LRU capacity of the solution cache.
    pub cache_capacity: usize,
    /// When set, the cache also persists under this directory (in a
    /// versioned subdirectory) and survives daemon restarts.
    pub cache_dir: Option<PathBuf>,
    /// When set, each request writes its trace as
    /// `<trace_dir>/<request_id>.jsonl`, every event tagged with the
    /// request id.
    pub trace_dir: Option<PathBuf>,
    /// Default synthesis deadline applied when a request names none.
    pub default_timeout_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7341".to_owned(),
            workers: 4,
            queue_depth: 32,
            cache_capacity: DEFAULT_CAPACITY,
            cache_dir: None,
            trace_dir: None,
            default_timeout_ms: None,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    workers: usize,
    queue_depth: usize,
}

impl Server {
    /// Bind the listener and build the shared state (opening or
    /// creating the persistent cache directory if configured).
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the cache directory
    /// cannot be created.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let cache = match &config.cache_dir {
            Some(dir) => SolutionCache::persistent(dir, config.cache_capacity)?,
            None => SolutionCache::in_memory(config.cache_capacity),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState::new(
                Arc::new(cache),
                config.trace_dir.clone(),
                config.default_timeout_ms,
            )),
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
        })
    }

    /// The bound address (with the actual port when binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared solution cache (for pre-warming or inspection).
    pub fn cache(&self) -> Arc<SolutionCache> {
        Arc::clone(&self.state.cache)
    }

    /// Serve forever on the calling thread (until [`ServerHandle`]
    /// shutdown, for servers started via [`Server::spawn`]).
    ///
    /// # Errors
    ///
    /// Fails only on listener-level accept errors; per-connection
    /// errors are answered or dropped without stopping the loop.
    pub fn run(self) -> io::Result<()> {
        self.run_until(Arc::new(AtomicBool::new(false)))
    }

    /// Spawn the serve loop on a background thread and return a handle
    /// that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let shutdown = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr;
        let state = Arc::clone(&self.state);
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || {
            let _ = self.run_until(flag);
        });
        ServerHandle {
            addr,
            state,
            shutdown,
            join: Some(join),
        }
    }

    fn run_until(self, shutdown: Arc<AtomicBool>) -> io::Result<()> {
        let (tx, rx) = sync_channel::<TcpStream>(self.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            pool.push(std::thread::spawn(move || worker_loop(&rx, &state)));
        }
        for incoming in self.listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    self.state.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = write_json_response(
                        &mut stream,
                        503,
                        "{\"error\":\"queue full, try again later\"}",
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &Arc<ServerState>) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(mut stream) = stream else { return };
        state.in_flight.fetch_add(1, Ordering::Relaxed);
        serve_connection(&mut stream, state);
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
        state.served.fetch_add(1, Ordering::Relaxed);
    }
}

fn serve_connection(stream: &mut TcpStream, state: &Arc<ServerState>) {
    let (status, body) = match read_request(stream) {
        Ok(Request { method, path, body }) => handle(state, &method, &path, &body),
        Err(RequestError::BodyTooLarge(n)) => (
            413,
            format!("{{\"error\":\"body of {n} bytes exceeds the limit\"}}"),
        ),
        Err(RequestError::Malformed(why)) => {
            (400, format!("{{\"error\":\"malformed request: {why}\"}}"))
        }
        Err(RequestError::Io(_)) => return,
    };
    let _ = write_json_response(stream, status, &body);
}

/// Stops a [`Server::spawn`]ed daemon when asked (or when dropped).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared cache.
    pub fn cache(&self) -> Arc<SolutionCache> {
        Arc::clone(&self.state.cache)
    }

    /// Signal shutdown and wait for the serve loop to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop();
        }
    }
}
