//! End-to-end tests against a live daemon on an ephemeral port: raw
//! `TcpStream` client, real synthesis, real cache. Covers the full
//! status mapping (200 miss/hit, 504 deadline, 422 unparallelizable,
//! 400 bad input, 404) and the restart-persistence guarantee of the
//! on-disk cache.

use parsynt_serve::{ParallelizeRequest, ParallelizeResponse, ServeConfig, Server, StatsResponse};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// The nested-sum benchmark: deterministic, quick to synthesize, and
/// divide-and-conquer parallelizable.
const SUM: &str = "input a : seq<seq<int>>; state s : int = 0;\n\
                   for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }";

/// The modified-LCS benchmark (Table 1 ✗): the conditional reset of
/// `cur` admits no efficient join, so the search exhausts and reports
/// the nest unparallelizable.
const LCS: &str = "input a : seq<seq<int>>;\n\
                   state best : int = 0;\n\
                   state cur : int = 0;\n\
                   for i in 0 .. len(a) {\n\
                     if (a[i][0] == a[i][1]) { cur = cur + 1; } else { cur = 0; }\n\
                     best = max(best, cur);\n\
                   }\n\
                   return best;";

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn parallelize_body(program: &str, timeout_ms: Option<u64>) -> String {
    serde_json::to_string(&ParallelizeRequest {
        program: program.to_owned(),
        timeout_ms,
        seed: None,
        synth_threads: None,
        brackets: false,
        pair_width: None,
    })
    .unwrap()
}

fn ephemeral_server(cache_dir: Option<PathBuf>) -> parsynt_serve::ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir,
        ..ServeConfig::default()
    })
    .expect("bind test server")
    .spawn()
}

#[test]
fn misses_then_hits_with_a_byte_identical_plan() {
    let server = ephemeral_server(None);
    let addr = server.addr();

    let (status, body) = post(addr, "/parallelize", &parallelize_body(SUM, None));
    assert_eq!(status, 200, "first post: {body}");
    let first: ParallelizeResponse = serde_json::from_str(&body).unwrap();
    assert!(!first.cache_hit);
    assert!(first.plan.contains("divide-and-conquer"), "{}", first.plan);
    assert!(
        first.report.phase_timings.contains_key("synthesize"),
        "miss must carry synthesis timings: {:?}",
        first.report.phase_timings.keys().collect::<Vec<_>>()
    );
    assert_eq!(first.report.schema_version, parsynt_core::SCHEMA_VERSION);

    let (status, body) = post(addr, "/parallelize", &parallelize_body(SUM, None));
    assert_eq!(status, 200, "second post: {body}");
    let second: ParallelizeResponse = serde_json::from_str(&body).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.fingerprint, first.fingerprint);
    assert_eq!(second.plan, first.plan, "hit must re-serve identical bytes");
    assert!(
        !second.report.phase_timings.contains_key("synthesize"),
        "hit must not report synthesis phases"
    );

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(stats.cache.misses, 1, "{body}");
    assert_eq!(stats.cache.hits, 1, "{body}");
    assert!(stats.served >= 2);

    server.shutdown();
}

#[test]
fn expired_deadlines_map_to_504() {
    let server = ephemeral_server(None);
    let (status, body) = post(
        server.addr(),
        "/parallelize",
        &parallelize_body(SUM, Some(0)),
    );
    assert_eq!(status, 504, "{body}");
    let response: ParallelizeResponse = serde_json::from_str(&body).unwrap();
    assert!(response.report.deadline_exceeded);
    server.shutdown();
}

#[test]
fn unparallelizable_programs_map_to_422() {
    let server = ephemeral_server(None);
    let body = serde_json::to_string(&ParallelizeRequest {
        program: LCS.to_owned(),
        timeout_ms: None,
        seed: None,
        synth_threads: None,
        brackets: false,
        pair_width: Some(2),
    })
    .unwrap();
    let (status, body) = post(server.addr(), "/parallelize", &body);
    assert_eq!(status, 422, "{body}");
    let response: ParallelizeResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.report.outcome, "unparallelizable");
    assert!(response.report.reason.is_some());
    server.shutdown();
}

#[test]
fn bad_inputs_map_to_400_and_unknown_paths_to_404() {
    let server = ephemeral_server(None);
    let addr = server.addr();

    let (status, body) = post(addr, "/parallelize", "this is not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad request body"), "{body}");

    let (status, body) = post(addr, "/parallelize", &parallelize_body("for i in", None));
    assert_eq!(status, 400);
    assert!(body.contains("does not parse"), "{body}");

    let (status, _) = get(addr, "/no-such-endpoint");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn a_restarted_daemon_reserves_from_the_persistent_cache() {
    let dir = std::env::temp_dir().join(format!("parsynt-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first_plan;
    {
        let server = ephemeral_server(Some(dir.clone()));
        let (status, body) = post(server.addr(), "/parallelize", &parallelize_body(SUM, None));
        assert_eq!(status, 200, "{body}");
        let response: ParallelizeResponse = serde_json::from_str(&body).unwrap();
        assert!(!response.cache_hit);
        first_plan = response.plan;
        server.shutdown();
    }

    // A brand-new daemon (fresh in-memory LRU) over the same directory
    // must answer from disk without re-running synthesis.
    let server = ephemeral_server(Some(dir.clone()));
    let (status, body) = post(server.addr(), "/parallelize", &parallelize_body(SUM, None));
    assert_eq!(status, 200, "{body}");
    let response: ParallelizeResponse = serde_json::from_str(&body).unwrap();
    assert!(response.cache_hit, "restart must not lose the solution");
    assert_eq!(response.plan, first_plan);
    assert!(
        !response.report.phase_timings.contains_key("synthesize"),
        "restart hit must skip synthesis"
    );
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
