//! # parsynt-suite
//!
//! The complete benchmark suite of the paper's evaluation (Table 1,
//! Figure 9): 27 nested-loop programs over 1-, 2- and 3-dimensional
//! read-only collections, each provided as
//!
//! * a **mini-language source** fed to the synthesis pipeline (the
//!   Table 1 experiment: summarization time, auxiliary count, join
//!   synthesis time),
//! * a **native Rust sequential implementation** (the Figure 9
//!   baseline), and
//! * a **native divide-and-conquer implementation** whose map and join
//!   mirror the synthesized solution, plugged into `parsynt-runtime`
//!   (the Figure 9 speedup measurement).
//!
//! Cross-checks in the test suite tie the three together: the native
//! sequential result equals the interpreted source on shared inputs, and
//! the native parallel result equals the native sequential one.
//!
//! Some benchmark *definitions* are reconstructions: the paper names its
//! benchmarks but does not give their code (the artifact link is dead);
//! DESIGN.md documents each reconstruction and any simplification.

pub mod data;
pub mod native;
pub mod oracle;
pub mod sources;

pub use native::{workload, Workload};
pub use sources::{all_benchmarks, benchmark, Benchmark, Dimensionality, ExpectedOutcome};

/// Paper-reported numbers for one benchmark (Table 1), used by the
/// harness to print paper-vs-measured columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNumbers {
    /// Summarization time in seconds.
    pub summarization_s: f64,
    /// Number of auxiliary accumulators ("–" = 0); `aux_memoryless`
    /// marks the starred (memoryless-lift) entries.
    pub aux: usize,
    /// Whether the paper's aux count is starred (memoryless lift).
    pub aux_memoryless: bool,
    /// Join synthesis time in seconds (`None` = ✗ or †).
    pub join_s: Option<f64>,
}
