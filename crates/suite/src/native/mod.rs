//! Native Rust implementations of the benchmarks, used for the
//! performance experiments (Figure 9 and the OpenMP-vs-TBB table).
//!
//! Each benchmark provides a `work` (the sequential single pass on a
//! chunk) and a `join` that mirrors the synthesized solution; the
//! `parsynt-runtime` executors schedule them. Results are reduced to a
//! `u64` digest so sequential/parallel agreement can be asserted without
//! exposing per-benchmark state types.

pub mod one_d;
pub mod three_d;
pub mod two_d;

use parsynt_runtime::{DncTask, Executor, MapOnlyTask, RunConfig};

/// A prepared (input-materialized) workload instance.
pub trait Prepared: Sync + Send {
    /// Run the sequential baseline, returning a digest of the result.
    fn sequential(&self) -> u64;
    /// Run the divide-and-conquer parallelization (or, for map-only
    /// benchmarks, the parallel map) with the given configuration.
    fn parallel(&self, cfg: RunConfig) -> u64;
    /// Number of outer elements (chunks are split along this).
    fn outer_len(&self) -> usize;
}

/// A registered performance workload.
pub struct Workload {
    /// Benchmark id (matches [`crate::sources`]).
    pub id: &'static str,
    /// Whether the parallelization is map-only (bp).
    pub map_only: bool,
    /// Materialize inputs with roughly `total` scalar elements.
    pub prepare: fn(total: usize, seed: u64) -> Box<dyn Prepared>,
}

/// Generic [`DncTask`] over plain function pointers — each benchmark
/// supplies `identity` / `work` / `join`.
pub struct FnTask<I, A> {
    /// `work([])`.
    pub identity: fn() -> A,
    /// The sequential chunk loop.
    pub work: fn(&[I]) -> A,
    /// The synthesized join.
    pub join: fn(A, A) -> A,
}

impl<I: Sync, A: Send> DncTask for FnTask<I, A> {
    type Item = I;
    type Acc = A;
    fn identity(&self) -> A {
        (self.identity)()
    }
    fn work(&self, chunk: &[I]) -> A {
        (self.work)(chunk)
    }
    fn join(&self, left: A, right: A) -> A {
        (self.join)(left, right)
    }
}

/// A prepared divide-and-conquer workload.
pub struct PreparedDnc<I: Sync + Send, A: Send> {
    /// The materialized input.
    pub data: Vec<I>,
    /// The task functions.
    pub task: FnTask<I, A>,
    /// Digest of the accumulator (for agreement checks).
    pub digest: fn(&A) -> u64,
}

impl<I: Sync + Send, A: Send> Prepared for PreparedDnc<I, A> {
    fn sequential(&self) -> u64 {
        (self.digest)(&Executor::default().run_sequential(&self.task, &self.data))
    }
    fn parallel(&self, cfg: RunConfig) -> u64 {
        let out = Executor::new(cfg)
            .run(&self.task, &self.data)
            .expect("bench task must not panic");
        (self.digest)(&out.value)
    }
    fn outer_len(&self) -> usize {
        self.data.len()
    }
}

/// Generic [`MapOnlyTask`] over function pointers.
pub struct FnMapTask<I, M, A> {
    /// The initial outer state.
    pub init: fn() -> A,
    /// The parallel inner nest from the zero state.
    pub map: fn(&I) -> M,
    /// The sequential combine `⊚`.
    pub fold: fn(A, M) -> A,
}

impl<I: Sync, M: Send, A: Send> MapOnlyTask for FnMapTask<I, M, A> {
    type Item = I;
    type Mapped = M;
    type Acc = A;
    fn init(&self) -> A {
        (self.init)()
    }
    fn map(&self, item: &I) -> M {
        (self.map)(item)
    }
    fn fold(&self, acc: A, mapped: M) -> A {
        (self.fold)(acc, mapped)
    }
}

/// A prepared map-only workload.
pub struct PreparedMapOnly<I: Sync + Send, M: Send, A: Send> {
    /// The materialized input.
    pub data: Vec<I>,
    /// The task functions.
    pub task: FnMapTask<I, M, A>,
    /// Digest of the final state.
    pub digest: fn(&A) -> u64,
}

impl<I: Sync + Send, M: Send, A: Send> Prepared for PreparedMapOnly<I, M, A> {
    fn sequential(&self) -> u64 {
        let exec = Executor::new(RunConfig::default().with_threads(1));
        let out = exec
            .run_map_only(&self.task, &self.data)
            .expect("bench task must not panic");
        (self.digest)(&out.value)
    }
    fn parallel(&self, cfg: RunConfig) -> u64 {
        let out = Executor::new(cfg)
            .run_map_only(&self.task, &self.data)
            .expect("bench task must not panic");
        (self.digest)(&out.value)
    }
    fn outer_len(&self) -> usize {
        self.data.len()
    }
}

/// All performance workloads (Figure 9's 26 curves: every benchmark
/// except LCS, which does not parallelize).
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    out.extend(two_d::workloads());
    out.extend(three_d::workloads());
    out.extend(one_d::workloads());
    out
}

/// Look up a workload by benchmark id.
pub fn workload(id: &str) -> Option<Workload> {
    workloads().into_iter().find(|w| w.id == id)
}

/// Fold an `i64` into a digest.
pub(crate) fn mix(acc: u64, v: i64) -> u64 {
    acc.rotate_left(7) ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Digest a slice of `i64`s.
pub(crate) fn digest_slice(values: &[i64]) -> u64 {
    values.iter().fold(0u64, |acc, &v| mix(acc, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_parallelizable_benchmarks() {
        let ids: Vec<&str> = workloads().iter().map(|w| w.id).collect();
        assert_eq!(ids.len(), 26, "26 Figure-9 curves, got {ids:?}");
        for b in crate::sources::all_benchmarks() {
            if b.id == "lcs" {
                assert!(!ids.contains(&b.id), "lcs does not parallelize");
            } else {
                assert!(ids.contains(&b.id), "missing workload for `{}`", b.id);
            }
        }
    }

    #[test]
    fn every_workload_parallel_matches_sequential() {
        for w in workloads() {
            let prepared = (w.prepare)(20_000, 42);
            let seq = prepared.sequential();
            for threads in [2, 4] {
                let cfg = RunConfig::work_stealing(threads).with_grain(16);
                assert_eq!(
                    prepared.parallel(cfg),
                    seq,
                    "workload `{}` diverges at {threads} threads",
                    w.id
                );
            }
            let cfg = RunConfig::static_schedule(3).with_grain(16);
            assert_eq!(prepared.parallel(cfg), seq, "workload `{}` (static)", w.id);
        }
    }
}
