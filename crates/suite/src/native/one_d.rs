//! Native implementations of the 1-dimensional benchmarks (simple loops
//! over scalars or range pairs). Several have array-shaped state (mode)
//! or non-commutative boundary-aware joins (max-dist, the range
//! counters).

use super::{digest_slice, mix, FnTask, PreparedDnc, Workload};
use crate::data::{gen_1d, gen_brackets, gen_pairs};

// ------------------------------------------------- balanced substrings

/// `(matched, open, closeun)` — matched bracket pairs; `open` and
/// `closeun` are the unmatched-ends auxiliaries the join consumes.
type BalAcc = (i64, i64, i64);

fn bal_work(chunk: &[i64]) -> BalAcc {
    let (mut matched, mut open, mut closeun) = (0i64, 0i64, 0i64);
    for &c in chunk {
        if c == 1 {
            open += 1;
        } else if open > 0 {
            open -= 1;
            matched += 1;
        } else {
            closeun += 1;
        }
    }
    (matched, open, closeun)
}

fn bal_join(l: BalAcc, r: BalAcc) -> BalAcc {
    let bridged = l.1.min(r.2);
    (
        l.0 + r.0 + bridged,
        r.1 + (l.1 - bridged),
        l.2 + (r.2 - bridged),
    )
}

fn balanced_substrings_workload() -> Workload {
    Workload {
        id: "balanced_substrings",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_brackets(total, seed),
                task: FnTask {
                    identity: || (0, 0, 0),
                    work: bal_work,
                    join: bal_join,
                },
                digest: |acc| acc.0 as u64,
            })
        },
    }
}

// --------------------------------------------------------------- mode

const DOMAIN: usize = 8;

/// `(counts, mode)` — the counts array makes the summarized depth
/// k = 2, so the join loops (zip-add then recompute the max).
type ModeAcc = (Vec<i64>, i64);

fn mode_work(chunk: &[i64]) -> ModeAcc {
    let mut counts = vec![0i64; DOMAIN];
    let mut mode = 0;
    for &v in chunk {
        let idx = v as usize;
        counts[idx] += 1;
        mode = mode.max(counts[idx]);
    }
    (counts, mode)
}

fn mode_join(l: ModeAcc, r: ModeAcc) -> ModeAcc {
    let counts: Vec<i64> = l.0.iter().zip(&r.0).map(|(a, b)| a + b).collect();
    let mode = counts.iter().copied().max().unwrap_or(0);
    (counts, mode)
}

fn mode_workload() -> Workload {
    Workload {
        id: "mode",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_1d(total, seed, 0, DOMAIN as i64 - 1),
                task: FnTask {
                    identity: || (vec![0; DOMAIN], 0),
                    work: mode_work,
                    join: mode_join,
                },
                digest: |acc| mix(acc.1 as u64, digest_slice(&acc.0) as i64),
            })
        },
    }
}

// ----------------------------------------------------------- max-dist

/// `(md, first, last, seen)` — maximum absolute adjacent difference;
/// `first`/`last` are the boundary auxiliaries.
type MdAcc = (i64, i64, i64, bool);

fn max_dist_work(chunk: &[i64]) -> MdAcc {
    let mut md = 0;
    for w in chunk.windows(2) {
        md = md.max((w[1] - w[0]).abs());
    }
    match (chunk.first(), chunk.last()) {
        (Some(&f), Some(&l)) => (md, f, l, true),
        _ => (0, 0, 0, false),
    }
}

fn max_dist_join(l: MdAcc, r: MdAcc) -> MdAcc {
    if !l.3 {
        return r;
    }
    if !r.3 {
        return l;
    }
    (l.0.max(r.0).max((r.1 - l.2).abs()), l.1, r.2, true)
}

fn max_dist_workload() -> Workload {
    Workload {
        id: "max_dist",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_1d(total, seed, -50, 50),
                task: FnTask {
                    identity: || (0, 0, 0, false),
                    work: max_dist_work,
                    join: max_dist_join,
                },
                digest: |acc| acc.0 as u64,
            })
        },
    }
}

// ------------------------------------------------- range-pair counters

/// `(cnt, first, last, seen)` where `first`/`last` are boundary range
/// pairs; the per-benchmark predicate decides adjacent hits.
type RangeAcc = (i64, [i64; 2], [i64; 2], bool);

fn range_work(chunk: &[[i64; 2]], pred: fn(&[i64; 2], &[i64; 2]) -> bool) -> RangeAcc {
    let mut cnt = 0;
    for w in chunk.windows(2) {
        if pred(&w[0], &w[1]) {
            cnt += 1;
        }
    }
    match (chunk.first(), chunk.last()) {
        (Some(&f), Some(&l)) => (cnt, f, l, true),
        _ => (0, [0, 0], [0, 0], false),
    }
}

fn range_join(l: RangeAcc, r: RangeAcc, pred: fn(&[i64; 2], &[i64; 2]) -> bool) -> RangeAcc {
    if !l.3 {
        return r;
    }
    if !r.3 {
        return l;
    }
    let bridge = i64::from(pred(&l.2, &r.1));
    (l.0 + r.0 + bridge, l.1, r.2, true)
}

fn intersects(p: &[i64; 2], c: &[i64; 2]) -> bool {
    p[0].max(c[0]) <= p[1].min(c[1])
}

fn increases(p: &[i64; 2], c: &[i64; 2]) -> bool {
    c[0] > p[0]
}

fn overlaps_extending(p: &[i64; 2], c: &[i64; 2]) -> bool {
    c[0] <= p[1] && c[1] > p[1]
}

fn nested(p: &[i64; 2], c: &[i64; 2]) -> bool {
    p[0] < c[0] && c[1] < p[1]
}

macro_rules! range_workload {
    ($fn_name:ident, $id:literal, $pred:ident) => {
        fn $fn_name() -> Workload {
            Workload {
                id: $id,
                map_only: false,
                prepare: |total, seed| {
                    Box::new(PreparedDnc {
                        data: gen_pairs(total / 2, seed, -50, 50),
                        task: FnTask {
                            identity: || (0, [0, 0], [0, 0], false),
                            work: |chunk| range_work(chunk, $pred),
                            join: |l, r| range_join(l, r, $pred),
                        },
                        digest: |acc| acc.0 as u64,
                    })
                },
            }
        }
    };
}

range_workload!(
    intersecting_ranges_workload,
    "intersecting_ranges",
    intersects
);
range_workload!(increasing_ranges_workload, "increasing_ranges", increases);
range_workload!(
    overlapping_ranges_workload,
    "overlapping_ranges",
    overlaps_extending
);
range_workload!(pyramid_ranges_workload, "pyramid_ranges", nested);

/// The 1-D workload registry.
pub fn workloads() -> Vec<Workload> {
    vec![
        balanced_substrings_workload(),
        mode_workload(),
        max_dist_workload(),
        intersecting_ranges_workload(),
        increasing_ranges_workload(),
        overlapping_ranges_workload(),
        pyramid_ranges_workload(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_join_agrees_with_whole() {
        // "(()" + "))(" = "(()))(" — matched pairs: 2.
        let x = [1, 1, -1];
        let y = [-1, -1, 1];
        let whole: Vec<i64> = x.iter().chain(&y).copied().collect();
        assert_eq!(bal_join(bal_work(&x), bal_work(&y)), bal_work(&whole));
        assert_eq!(bal_work(&whole).0, 2);
    }

    #[test]
    fn mode_join_recomputes_max() {
        let x = [1, 1, 2];
        let y = [2, 2, 3];
        let whole: Vec<i64> = x.iter().chain(&y).copied().collect();
        assert_eq!(mode_join(mode_work(&x), mode_work(&y)), mode_work(&whole));
        assert_eq!(mode_work(&whole).1, 3); // three 2s
    }

    #[test]
    fn max_dist_join_catches_boundary() {
        let x = [0, 1, 2];
        let y = [50, 51];
        let joined = max_dist_join(max_dist_work(&x), max_dist_work(&y));
        assert_eq!(joined.0, 48); // |50 - 2|
    }

    #[test]
    fn range_predicates() {
        assert!(intersects(&[0, 5], &[3, 8]));
        assert!(!intersects(&[0, 2], &[3, 8]));
        assert!(increases(&[0, 5], &[1, 2]));
        assert!(overlaps_extending(&[0, 5], &[3, 8]));
        assert!(!overlaps_extending(&[0, 5], &[1, 4]));
        assert!(nested(&[0, 9], &[2, 5]));
        assert!(!nested(&[0, 9], &[0, 5]));
    }

    #[test]
    fn range_join_counts_bridge_pair() {
        let data = gen_pairs(100, 9, -20, 20);
        for split in [1, 33, 99] {
            let joined = range_join(
                range_work(&data[..split], intersects),
                range_work(&data[split..], intersects),
                intersects,
            );
            assert_eq!(joined, range_work(&data, intersects), "split {split}");
        }
    }
}
