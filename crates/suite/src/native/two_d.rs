//! Native implementations of the 2-dimensional benchmarks.
//!
//! Inputs are row vectors; the divide dimension is the row index. Every
//! `join` mirrors the join the pipeline synthesizes for the same
//! benchmark (see `sources.rs`), including the lifted auxiliaries.

use super::{digest_slice, mix, FnMapTask, FnTask, PreparedDnc, PreparedMapOnly, Workload};
use crate::data::{gen_2d, gen_2d_mostly_increasing, gen_brackets};

type Row = Vec<i64>;

const COLS: usize = 100;

fn rows(total: usize, seed: u64) -> Vec<Row> {
    gen_2d(total, seed, COLS, -50, 50)
}

fn bracket_rows(total: usize, seed: u64) -> Vec<Row> {
    gen_brackets(total, seed)
        .chunks(COLS)
        .map(<[i64]>::to_vec)
        .collect()
}

// ---------------------------------------------------------------- sum

fn sum_work(chunk: &[Row]) -> i64 {
    chunk.iter().flat_map(|r| r.iter()).sum()
}

fn sum_workload() -> Workload {
    Workload {
        id: "sum",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || 0,
                    work: sum_work,
                    join: |l, r| l + r,
                },
                digest: |acc| *acc as u64,
            })
        },
    }
}

// ------------------------------------------------------------- sorted

/// `(sorted, first, last, seen)` over the row-major flattening.
type SortedAcc = (bool, i64, i64, bool);

fn sorted_work(chunk: &[Row]) -> SortedAcc {
    let mut acc: SortedAcc = (true, 0, 0, false);
    for row in chunk {
        for &v in row {
            if acc.3 {
                acc.0 &= v >= acc.2;
            } else {
                acc.1 = v;
                acc.3 = true;
            }
            acc.2 = v;
        }
    }
    acc
}

fn sorted_join(l: SortedAcc, r: SortedAcc) -> SortedAcc {
    if !l.3 {
        return r;
    }
    if !r.3 {
        return l;
    }
    (l.0 && r.0 && r.1 >= l.2, l.1, r.2, true)
}

fn sorted_workload() -> Workload {
    Workload {
        id: "sorted",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (true, 0, 0, false),
                    work: sorted_work,
                    join: sorted_join,
                },
                digest: |acc| u64::from(acc.0),
            })
        },
    }
}

// ---------------------------------------------------- gradients (2x)

/// `(ok, first_row, last_row, seen)`.
type GradAcc = (bool, Row, Row, bool);

fn vgrad_work(chunk: &[Row]) -> GradAcc {
    let mut ok = true;
    for w in chunk.windows(2) {
        ok &= w[1].iter().zip(&w[0]).all(|(b, a)| b > a);
    }
    match (chunk.first(), chunk.last()) {
        (Some(f), Some(l)) => (ok, f.clone(), l.clone(), true),
        _ => (true, Vec::new(), Vec::new(), false),
    }
}

fn vgrad_join(l: GradAcc, r: GradAcc) -> GradAcc {
    if !l.3 {
        return r;
    }
    if !r.3 {
        return l;
    }
    let boundary = r.1.iter().zip(&l.2).all(|(b, a)| b > a);
    (l.0 && r.0 && boundary, l.1, r.2, true)
}

fn vertical_gradient_workload() -> Workload {
    Workload {
        id: "vertical_gradient",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_2d_mostly_increasing(total, seed, COLS),
                task: FnTask {
                    identity: || (true, Vec::new(), Vec::new(), false),
                    work: vgrad_work,
                    join: vgrad_join,
                },
                digest: |acc| u64::from(acc.0),
            })
        },
    }
}

/// Diagonal variant: compare `row[j] > prev[j-1]`; the shifted last row
/// is stored (index 0 slot holds 0 and never constrains positive data).
fn dgrad_shift(row: &[i64]) -> Row {
    let mut s = vec![0; row.len()];
    if !row.is_empty() {
        s[1..].copy_from_slice(&row[..row.len() - 1]);
    }
    s
}

fn dgrad_work(chunk: &[Row]) -> GradAcc {
    let mut ok = true;
    for w in chunk.windows(2) {
        ok &= w[1].iter().skip(1).zip(&w[0][..]).all(|(b, a)| b > a);
    }
    match (chunk.first(), chunk.last()) {
        (Some(f), Some(l)) => (ok, f.clone(), dgrad_shift(l), true),
        _ => (true, Vec::new(), Vec::new(), false),
    }
}

fn dgrad_join(l: GradAcc, r: GradAcc) -> GradAcc {
    if !l.3 {
        return r;
    }
    if !r.3 {
        return l;
    }
    let boundary = r.1.iter().zip(&l.2).all(|(b, a)| b > a);
    (l.0 && r.0 && boundary, l.1, r.2, true)
}

fn diagonal_gradient_workload() -> Workload {
    Workload {
        id: "diagonal_gradient",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_2d_mostly_increasing(total, seed, COLS),
                task: FnTask {
                    identity: || (true, Vec::new(), Vec::new(), false),
                    work: dgrad_work,
                    join: dgrad_join,
                },
                digest: |acc| u64::from(acc.0),
            })
        },
    }
}

// ------------------------------------------------------------ min-max

fn min_max_work(chunk: &[Row]) -> (i64, i64) {
    let mut mn = 1_000_000;
    let mut mx = -1_000_000;
    for row in chunk {
        for &v in row {
            mn = mn.min(v);
            mx = mx.max(v);
        }
    }
    (mn, mx)
}

fn min_max_workload() -> Workload {
    Workload {
        id: "min_max",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (1_000_000, -1_000_000),
                    work: min_max_work,
                    join: |l, r| (l.0.min(r.0), l.1.max(r.1)),
                },
                digest: |acc| mix(acc.0 as u64, acc.1),
            })
        },
    }
}

// -------------------------------------------------------- min-max col

type ColAcc = (Row, Row, bool); // (cmin, cmax, seen)

fn min_max_col_work(chunk: &[Row]) -> ColAcc {
    let Some(first) = chunk.first() else {
        return (Vec::new(), Vec::new(), false);
    };
    let mut cmin = first.clone();
    let mut cmax = first.clone();
    for row in &chunk[1..] {
        for (j, &v) in row.iter().enumerate() {
            cmin[j] = cmin[j].min(v);
            cmax[j] = cmax[j].max(v);
        }
    }
    (cmin, cmax, true)
}

fn min_max_col_join(l: ColAcc, r: ColAcc) -> ColAcc {
    if !l.2 {
        return r;
    }
    if !r.2 {
        return l;
    }
    let cmin = l.0.iter().zip(&r.0).map(|(a, b)| *a.min(b)).collect();
    let cmax = l.1.iter().zip(&r.1).map(|(a, b)| *a.max(b)).collect();
    (cmin, cmax, true)
}

fn min_max_col_workload() -> Workload {
    Workload {
        id: "min_max_col",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new(), false),
                    work: min_max_col_work,
                    join: min_max_col_join,
                },
                digest: |acc| mix(digest_slice(&acc.0), digest_slice(&acc.1) as i64),
            })
        },
    }
}

// ------------------------------------------------------- saddle point

type SaddleAcc = (i64, Row); // (max of row mins, column maxes)

fn saddle_work(chunk: &[Row]) -> SaddleAcc {
    let mut mrm = -1_000_000;
    let mut cmax = vec![0; chunk.first().map_or(0, Vec::len)];
    for row in chunk {
        let mut rmin = row[0];
        for (j, &v) in row.iter().enumerate() {
            rmin = rmin.min(v);
            cmax[j] = cmax[j].max(v);
        }
        mrm = mrm.max(rmin);
    }
    (mrm, cmax)
}

fn saddle_join(l: SaddleAcc, r: SaddleAcc) -> SaddleAcc {
    if l.1.is_empty() {
        return r;
    }
    if r.1.is_empty() {
        return l;
    }
    let cmax = l.1.iter().zip(&r.1).map(|(a, b)| *a.max(b)).collect();
    (l.0.max(r.0), cmax)
}

fn saddle_workload() -> Workload {
    Workload {
        id: "saddle_point",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: gen_2d(total, seed, COLS, 1, 9),
                task: FnTask {
                    identity: || (-1_000_000, Vec::new()),
                    work: saddle_work,
                    join: saddle_join,
                },
                digest: |acc| mix(acc.0 as u64, digest_slice(&acc.1) as i64),
            })
        },
    }
}

// ---------------------------------------------------------- strips

/// max top strip: `(cur, mts)`.
fn mts_work(chunk: &[Row]) -> (i64, i64) {
    let mut cur = 0;
    let mut mts = 0;
    for row in chunk {
        cur += row.iter().sum::<i64>();
        mts = mts.max(cur);
    }
    (cur, mts)
}

fn max_top_strip_workload() -> Workload {
    Workload {
        id: "max_top_strip",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (0, 0),
                    work: mts_work,
                    join: |l, r| (l.0 + r.0, l.1.max(l.0 + r.1)),
                },
                digest: |acc| acc.1 as u64,
            })
        },
    }
}

/// max bottom strip: `(mbs, sum)` — the lifted aux is the chunk sum.
fn mbs_work(chunk: &[Row]) -> (i64, i64) {
    let mut mbs = 0;
    let mut sum = 0;
    for row in chunk {
        let s: i64 = row.iter().sum();
        sum += s;
        mbs = (mbs + s).max(0);
    }
    (mbs, sum)
}

fn max_bottom_strip_workload() -> Workload {
    Workload {
        id: "max_bottom_strip",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (0, 0),
                    work: mbs_work,
                    join: |l, r| (r.0.max(l.0 + r.1), l.1 + r.1),
                },
                digest: |acc| acc.0 as u64,
            })
        },
    }
}

/// max segment strip (Kadane over row sums):
/// `(cur, best, sum, pre)` — `sum` and `pre` are the lifted auxiliaries.
type MssAcc = (i64, i64, i64, i64);

fn mss_work(chunk: &[Row]) -> MssAcc {
    let (mut cur, mut best, mut sum, mut pre) = (0i64, 0i64, 0i64, 0i64);
    for row in chunk {
        let s: i64 = row.iter().sum();
        sum += s;
        pre = pre.max(sum);
        cur = (cur + s).max(0);
        best = best.max(cur);
    }
    (cur, best, sum, pre)
}

fn mss_join(l: MssAcc, r: MssAcc) -> MssAcc {
    let cur = r.0.max(l.0 + r.2);
    let best = l.1.max(r.1).max(l.0 + r.3);
    let sum = l.2 + r.2;
    let pre = l.3.max(l.2 + r.3);
    (cur, best, sum, pre)
}

fn max_segment_strip_workload() -> Workload {
    Workload {
        id: "max_segment_strip",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (0, 0, 0, 0),
                    work: mss_work,
                    join: mss_join,
                },
                digest: |acc| acc.1 as u64,
            })
        },
    }
}

/// max left strip: `(cols, pref)` — both zip-additive; the scalar
/// maximum is a constant-time post-pass over `pref`.
type MlsAcc = (Row, Row);

fn mls_work(chunk: &[Row]) -> MlsAcc {
    let width = chunk.first().map_or(0, Vec::len);
    let mut cols = vec![0; width];
    let mut pref = vec![0; width];
    for row in chunk {
        let mut rpre = 0;
        for (j, &v) in row.iter().enumerate() {
            cols[j] += v;
            rpre += v;
            pref[j] += rpre;
        }
    }
    (cols, pref)
}

fn zip_add(l: Row, r: Row) -> Row {
    if l.is_empty() {
        return r;
    }
    if r.is_empty() {
        return l;
    }
    l.iter().zip(&r).map(|(a, b)| a + b).collect()
}

fn max_left_strip_workload() -> Workload {
    Workload {
        id: "max_left_strip",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new()),
                    work: mls_work,
                    join: |l: MlsAcc, r: MlsAcc| (zip_add(l.0, r.0), zip_add(l.1, r.1)),
                },
                digest: |acc| {
                    let best = acc.1.iter().copied().max().unwrap_or(0);
                    mix(digest_slice(&acc.0), best)
                },
            })
        },
    }
}

// ----------------------------------------------------------- mtls

/// mtls (§2.2): `(rec, max_rec, mtl)`; `max_rec` is the lifted array
/// auxiliary of Figure 5(c), joined as in Figure 6.
type MtlsAcc = (Row, Row, i64);

fn mtls_work(chunk: &[Row]) -> MtlsAcc {
    let width = chunk.first().map_or(0, Vec::len);
    let mut rec = vec![0; width];
    let mut max_rec = vec![i64::MIN / 2; width];
    let mut mtl = 0;
    for row in chunk {
        let mut rpre = 0;
        for (j, &v) in row.iter().enumerate() {
            rpre += v;
            rec[j] += rpre;
            max_rec[j] = max_rec[j].max(rec[j]);
            mtl = mtl.max(rec[j]);
        }
    }
    (rec, max_rec, mtl)
}

fn mtls_join(l: MtlsAcc, r: MtlsAcc) -> MtlsAcc {
    if l.0.is_empty() {
        return r;
    }
    if r.0.is_empty() {
        return l;
    }
    let mut rec = vec![0; l.0.len()];
    let mut max_rec = vec![0; l.0.len()];
    let mut mtl = l.2;
    for j in 0..l.0.len() {
        rec[j] = l.0[j] + r.0[j];
        max_rec[j] = l.1[j].max(l.0[j] + r.1[j]);
        mtl = mtl.max(max_rec[j]);
    }
    (rec, max_rec, mtl)
}

fn mtls_workload() -> Workload {
    Workload {
        id: "mtls",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new(), 0),
                    work: mtls_work,
                    join: mtls_join,
                },
                digest: |acc| acc.2 as u64,
            })
        },
    }
}

// ------------------------------------------- bottom-left / top-right

/// max bot-left rect: `(psum, recb)`; answer is a post-pass max.
type MblAcc = (Row, Row);

fn mbl_work(chunk: &[Row]) -> MblAcc {
    let width = chunk.first().map_or(0, Vec::len);
    let mut psum = vec![0; width];
    let mut recb = vec![0; width];
    for row in chunk {
        let mut rpre = 0;
        for (j, &v) in row.iter().enumerate() {
            rpre += v;
            psum[j] += rpre;
            recb[j] = recb[j].max(0) + rpre;
        }
    }
    (psum, recb)
}

fn mbl_join(l: MblAcc, r: MblAcc) -> MblAcc {
    if l.0.is_empty() {
        return r;
    }
    if r.0.is_empty() {
        return l;
    }
    let psum = zip_add(l.0.clone(), r.0.clone());
    let recb =
        l.1.iter()
            .zip(&r.1)
            .zip(&r.0)
            .map(|((bl, br), sr)| (*br).max(bl + sr))
            .collect();
    (psum, recb)
}

fn max_bot_left_rect_workload() -> Workload {
    Workload {
        id: "max_bot_left_rect",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new()),
                    work: mbl_work,
                    join: mbl_join,
                },
                digest: |acc| {
                    let best = acc.1.iter().copied().max().unwrap_or(0);
                    mix(digest_slice(&acc.0), best)
                },
            })
        },
    }
}

/// max top-right rect: mtls mirrored onto row *suffix* sums.
type MtrAcc = (Row, Row, i64); // (psuf, max_psuf, mtr)

fn mtr_work(chunk: &[Row]) -> MtrAcc {
    let width = chunk.first().map_or(0, Vec::len);
    let mut psuf = vec![0; width];
    let mut max_psuf = vec![i64::MIN / 2; width];
    let mut mtr = 0;
    for row in chunk {
        let mut rsuf = 0;
        for j in (0..width).rev() {
            rsuf += row[j];
            psuf[j] += rsuf;
            max_psuf[j] = max_psuf[j].max(psuf[j]);
            mtr = mtr.max(psuf[j]);
        }
    }
    (psuf, max_psuf, mtr)
}

fn mtr_join(l: MtrAcc, r: MtrAcc) -> MtrAcc {
    if l.0.is_empty() {
        return r;
    }
    if r.0.is_empty() {
        return l;
    }
    let mut psuf = vec![0; l.0.len()];
    let mut maxp = vec![0; l.0.len()];
    let mut mtr = l.2;
    for j in 0..l.0.len() {
        psuf[j] = l.0[j] + r.0[j];
        maxp[j] = l.1[j].max(l.0[j] + r.1[j]);
        mtr = mtr.max(maxp[j]);
    }
    (psuf, maxp, mtr)
}

fn max_top_right_rect_workload() -> Workload {
    Workload {
        id: "max_top_right_rect",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: rows(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new(), 0),
                    work: mtr_work,
                    join: mtr_join,
                },
                digest: |acc| acc.2 as u64,
            })
        },
    }
}

// -------------------------------------------------------------- bp

/// Balanced parentheses (§2.1): map-only — the inner loop computes each
/// line's `(line_offset, min_offset)` in parallel (the Figure 4 lift);
/// the outer fold over lines stays sequential.
type BpState = (i64, bool, i64); // (offset, bal, count)

fn bp_map(line: &Row) -> (i64, i64) {
    let mut lo = 0;
    let mut mo = 0;
    for &c in line {
        lo += if c == 1 { 1 } else { -1 };
        mo = mo.min(lo);
    }
    (lo, mo)
}

fn bp_fold(acc: BpState, mapped: (i64, i64)) -> BpState {
    let (mut offset, mut bal, mut count) = acc;
    let (lo, mo) = mapped;
    bal = bal && offset + mo >= 0;
    offset += lo;
    if bal && lo == 0 && offset == 0 {
        count += 1;
    }
    (offset, bal, count)
}

fn bp_workload() -> Workload {
    Workload {
        id: "bp",
        map_only: true,
        prepare: |total, seed| {
            Box::new(PreparedMapOnly {
                data: bracket_rows(total, seed),
                task: FnMapTask {
                    init: || (0, true, 0),
                    map: bp_map,
                    fold: bp_fold,
                },
                digest: |acc| acc.2 as u64,
            })
        },
    }
}

/// The 2-D workload registry.
pub fn workloads() -> Vec<Workload> {
    vec![
        sorted_workload(),
        sum_workload(),
        vertical_gradient_workload(),
        diagonal_gradient_workload(),
        min_max_workload(),
        min_max_col_workload(),
        saddle_workload(),
        max_top_strip_workload(),
        max_bottom_strip_workload(),
        max_segment_strip_workload(),
        max_left_strip_workload(),
        mtls_workload(),
        max_bot_left_rect_workload(),
        max_top_right_rect_workload(),
        bp_workload(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtls_matches_brute_force_on_small_input() {
        let data = vec![vec![3, -1, 2], vec![-2, 4, -1], vec![1, 1, 1]];
        let (_, _, mtl) = mtls_work(&data);
        // Brute force over all top-left rectangles.
        let mut best = i64::MIN;
        for i in 0..3 {
            for j in 0..3 {
                let s: i64 = (0..=i).map(|r| data[r][..=j].iter().sum::<i64>()).sum();
                best = best.max(s);
            }
        }
        assert_eq!(mtl, best);
    }

    #[test]
    fn mtls_join_agrees_with_whole_run() {
        let data = vec![vec![3, -1], vec![-2, 4], vec![1, 1], vec![-5, 2]];
        let whole = mtls_work(&data);
        let joined = mtls_join(mtls_work(&data[..2]), mtls_work(&data[2..]));
        assert_eq!(whole.0, joined.0);
        assert_eq!(whole.2, joined.2);
    }

    #[test]
    fn mss_join_agrees_with_whole_run() {
        let data: Vec<Row> = (0..20)
            .map(|i| vec![((i * 13) % 7) as i64 - 3, ((i * 5) % 11) as i64 - 5])
            .collect();
        for split in [1, 7, 13, 19] {
            let joined = mss_join(mss_work(&data[..split]), mss_work(&data[split..]));
            assert_eq!(joined, mss_work(&data), "split at {split}");
        }
    }

    #[test]
    fn bp_counts_level_lines() {
        // Lines: "()", "((", "))", "()" — offsets 0,+2,-2,0.
        let data = vec![vec![1, -1], vec![1, 1], vec![-1, -1], vec![1, -1]];
        let mut acc = (0, true, 0);
        for line in &data {
            acc = bp_fold(acc, bp_map(line));
        }
        // Level lines: line 0 (balanced, offset 0) and line 3 (offset back
        // to 0, never dipped). Line 2 ends at 0 but the prefix never dips
        // below 0 here either... count manually: after l0: (0,true,1);
        // l1: (2,true,1); l2: offset 2 + min(-1,-2)=-2 >= 0 ✓ bal stays,
        // offset 0, lo=-2 ≠ 0 so no count; l3: (0,true,2).
        assert_eq!(acc, (0, true, 2));
    }

    #[test]
    fn bot_left_rect_join_agrees() {
        let data = vec![
            vec![2, -3, 1],
            vec![-1, 4, -2],
            vec![3, 0, 1],
            vec![-2, -2, 5],
        ];
        let whole = mbl_work(&data);
        let joined = mbl_join(mbl_work(&data[..1]), mbl_work(&data[1..]));
        assert_eq!(whole, joined);
    }

    #[test]
    fn gradient_detects_violations_across_chunks() {
        let ok_data = [vec![1, 1], vec![2, 2], vec![3, 3]];
        assert!(vgrad_join(vgrad_work(&ok_data[..1]), vgrad_work(&ok_data[1..])).0);
        let bad = [vec![1, 5], vec![2, 2], vec![3, 3]];
        assert!(!vgrad_join(vgrad_work(&bad[..1]), vgrad_work(&bad[1..])).0);
    }
}
