//! Native implementations of the 3-dimensional benchmarks. The divide
//! dimension is the plane index; a plane is a row-major matrix.

use super::{FnTask, PreparedDnc, Workload};
use crate::data::gen_3d;

type Plane = Vec<Vec<i64>>;

const ROWS: usize = 10;
const COLS: usize = 10;

fn planes(total: usize, seed: u64) -> Vec<Plane> {
    gen_3d(total, seed, ROWS, COLS, -50, 50)
}

fn plane_sum(p: &Plane) -> i64 {
    p.iter().flat_map(|r| r.iter()).sum()
}

// -------------------------------------------------------- max top box

/// `(cur, mtb)` — max prefix of plane sums.
fn mtb_work(chunk: &[Plane]) -> (i64, i64) {
    let mut cur = 0;
    let mut mtb = 0;
    for p in chunk {
        cur += plane_sum(p);
        mtb = mtb.max(cur);
    }
    (cur, mtb)
}

fn max_top_box_workload() -> Workload {
    Workload {
        id: "max_top_box",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: planes(total, seed),
                task: FnTask {
                    identity: || (0, 0),
                    work: mtb_work,
                    join: |l, r| (l.0 + r.0, l.1.max(l.0 + r.1)),
                },
                digest: |acc| acc.1 as u64,
            })
        },
    }
}

// --------------------------------------------------------------- mbbs

/// Figure 1: `(mbbs, sum)` with the lifted `aux_sum` and the
/// Figure 1(c) join.
fn mbbs_work(chunk: &[Plane]) -> (i64, i64) {
    let mut mbbs = 0;
    let mut sum = 0;
    for p in chunk {
        let s = plane_sum(p);
        sum += s;
        mbbs = (mbbs + s).max(0);
    }
    (mbbs, sum)
}

fn mbbs_workload() -> Workload {
    Workload {
        id: "mbbs",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: planes(total, seed),
                task: FnTask {
                    identity: || (0, 0),
                    work: mbbs_work,
                    join: |l, r| (r.0.max(l.0 + r.1), l.1 + r.1),
                },
                digest: |acc| acc.0 as u64,
            })
        },
    }
}

// ---------------------------------------------------- max segment box

/// Kadane over plane sums: `(cur, best, sum, pre)`.
type MsbAcc = (i64, i64, i64, i64);

fn msb_work(chunk: &[Plane]) -> MsbAcc {
    let (mut cur, mut best, mut sum, mut pre) = (0i64, 0i64, 0i64, 0i64);
    for p in chunk {
        let s = plane_sum(p);
        sum += s;
        pre = pre.max(sum);
        cur = (cur + s).max(0);
        best = best.max(cur);
    }
    (cur, best, sum, pre)
}

fn msb_join(l: MsbAcc, r: MsbAcc) -> MsbAcc {
    (
        r.0.max(l.0 + r.2),
        l.1.max(r.1).max(l.0 + r.3),
        l.2 + r.2,
        l.3.max(l.2 + r.3),
    )
}

fn max_segment_box_workload() -> Workload {
    Workload {
        id: "max_segment_box",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: planes(total, seed),
                task: FnTask {
                    identity: || (0, 0, 0, 0),
                    work: msb_work,
                    join: msb_join,
                },
                digest: |acc| acc.1 as u64,
            })
        },
    }
}

// ------------------------------------------------------- max left box

/// `(rec, max_rec, mlb)` over per-plane row-sum vectors — the 3-D
/// analogue of mtls (n = 3, k = 2).
type MlbAcc = (Vec<i64>, Vec<i64>, i64);

fn mlb_work(chunk: &[Plane]) -> MlbAcc {
    let rows = chunk.first().map_or(0, Vec::len);
    let mut rec = vec![0; rows];
    let mut max_rec = vec![i64::MIN / 2; rows];
    let mut mlb = 0;
    for p in chunk {
        for (j, row) in p.iter().enumerate() {
            let rv: i64 = row.iter().sum();
            rec[j] += rv;
            max_rec[j] = max_rec[j].max(rec[j]);
            mlb = mlb.max(rec[j]);
        }
    }
    (rec, max_rec, mlb)
}

fn mlb_join(l: MlbAcc, r: MlbAcc) -> MlbAcc {
    if l.0.is_empty() {
        return r;
    }
    if r.0.is_empty() {
        return l;
    }
    let mut rec = vec![0; l.0.len()];
    let mut max_rec = vec![0; l.0.len()];
    let mut mlb = l.2;
    for j in 0..l.0.len() {
        rec[j] = l.0[j] + r.0[j];
        max_rec[j] = l.1[j].max(l.0[j] + r.1[j]);
        mlb = mlb.max(max_rec[j]);
    }
    (rec, max_rec, mlb)
}

fn max_left_box_workload() -> Workload {
    Workload {
        id: "max_left_box",
        map_only: false,
        prepare: |total, seed| {
            Box::new(PreparedDnc {
                data: planes(total, seed),
                task: FnTask {
                    identity: || (Vec::new(), Vec::new(), 0),
                    work: mlb_work,
                    join: mlb_join,
                },
                digest: |acc| acc.2 as u64,
            })
        },
    }
}

/// The 3-D workload registry.
pub fn workloads() -> Vec<Workload> {
    vec![
        max_top_box_workload(),
        mbbs_workload(),
        max_segment_box_workload(),
        max_left_box_workload(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Plane> {
        vec![
            vec![vec![5, -2], vec![1, 0]],
            vec![vec![-3, -3], vec![0, 1]],
            vec![vec![4, 4], vec![-1, 2]],
        ]
    }

    #[test]
    fn mbbs_join_agrees_with_whole() {
        let data = sample();
        for split in [1, 2] {
            let l = mbbs_work(&data[..split]);
            let r = mbbs_work(&data[split..]);
            let joined = (r.0.max(l.0 + r.1), l.1 + r.1);
            assert_eq!(joined, mbbs_work(&data), "split {split}");
        }
    }

    #[test]
    fn mbbs_intro_example() {
        // Figure 1's argument: b = [5], b' = [-3,3] vs [0,3] give the
        // same mbbs(b') but different mbbs(b•b') — our lifted join
        // resolves this through the sum auxiliary.
        let b = vec![vec![vec![5]]];
        let b1 = vec![vec![vec![-3]], vec![vec![3]]];
        let b2 = vec![vec![vec![0]], vec![vec![3]]];
        assert_eq!(mbbs_work(&b1).0, mbbs_work(&b2).0);
        let join = |l: (i64, i64), r: (i64, i64)| (r.0.max(l.0 + r.1), l.1 + r.1);
        let w1 = join(mbbs_work(&b), mbbs_work(&b1));
        let w2 = join(mbbs_work(&b), mbbs_work(&b2));
        assert_ne!(w1.0, w2.0);
        let mut whole1 = b.clone();
        whole1.extend(b1);
        assert_eq!(w1.0, mbbs_work(&whole1).0);
    }

    #[test]
    fn mlb_join_agrees_with_whole() {
        let data = sample();
        let joined = mlb_join(mlb_work(&data[..2]), mlb_work(&data[2..]));
        let whole = mlb_work(&data);
        assert_eq!(joined.0, whole.0);
        assert_eq!(joined.2, whole.2);
    }

    #[test]
    fn msb_join_agrees_with_whole() {
        let data = sample();
        let joined = msb_join(msb_work(&data[..1]), msb_work(&data[1..]));
        assert_eq!(joined, msb_work(&data));
    }
}
