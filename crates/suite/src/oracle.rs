//! Brute-force specification oracles: independent, obviously-correct
//! (but slow) definitions of each benchmark's answer, used to validate
//! both the mini-language sources and the native single-pass
//! implementations on small inputs.
//!
//! Everything here enumerates candidate regions explicitly (`O(n²)` to
//! `O(n⁴)`), the opposite of the clever single-pass loops the paper
//! parallelizes — which is exactly what makes them trustworthy specs.

/// Maximum over all bottom-anchored strips (suffix row ranges) of the
/// strip sum; at least 0 (the empty strip).
pub fn max_bottom_strip(rows: &[Vec<i64>]) -> i64 {
    let sums: Vec<i64> = rows.iter().map(|r| r.iter().sum()).collect();
    let mut best = 0;
    for k in 0..sums.len() {
        best = best.max(sums[k..].iter().sum::<i64>());
    }
    best
}

/// Maximum over all top-anchored strips (prefix row ranges), at least 0.
pub fn max_top_strip(rows: &[Vec<i64>]) -> i64 {
    let sums: Vec<i64> = rows.iter().map(|r| r.iter().sum()).collect();
    let mut best = 0;
    for k in 0..=sums.len() {
        best = best.max(sums[..k].iter().sum::<i64>());
    }
    best
}

/// Maximum over all contiguous row ranges, at least 0 (Kadane's spec).
pub fn max_segment_strip(rows: &[Vec<i64>]) -> i64 {
    let sums: Vec<i64> = rows.iter().map(|r| r.iter().sum()).collect();
    let mut best = 0;
    for lo in 0..sums.len() {
        for hi in lo..=sums.len().saturating_sub(1) {
            best = best.max(sums[lo..=hi].iter().sum::<i64>());
        }
    }
    best
}

/// Maximum over all rectangles anchored at the top-left corner
/// `(0,0)..(k,ℓ)`, at least 0 (§2.2's mtls).
pub fn max_top_left_rect(rows: &[Vec<i64>]) -> i64 {
    let mut best = 0;
    for k in 0..rows.len() {
        for l in 0..rows[k].len() {
            let s: i64 = rows[..=k].iter().map(|r| r[..=l].iter().sum::<i64>()).sum();
            best = best.max(s);
        }
    }
    best
}

/// Maximum over rectangles touching the bottom edge and the left edge:
/// rows `k..n`, columns `0..=ℓ`, for any `k`, `ℓ` (non-empty).
pub fn max_bottom_left_rect(rows: &[Vec<i64>]) -> i64 {
    let n = rows.len();
    let mut best = i64::MIN;
    for k in 0..n {
        for l in 0..rows[0].len() {
            let s: i64 = rows[k..n].iter().map(|r| r[..=l].iter().sum::<i64>()).sum();
            best = best.max(s);
        }
    }
    best
}

/// Maximum over rectangles anchored at the top-right corner region:
/// rows `0..=k`, columns `ℓ..m`, accumulated over all row prefixes.
pub fn max_top_right_rect(rows: &[Vec<i64>]) -> i64 {
    let mut best = 0;
    for k in 0..rows.len() {
        for l in 0..rows[k].len() {
            let s: i64 = rows[..=k].iter().map(|r| r[l..].iter().sum::<i64>()).sum();
            best = best.max(s);
        }
    }
    best
}

/// Maximum over bottom-anchored boxes of the box sum (Figure 1's mbbs),
/// at least 0.
pub fn max_bottom_box(planes: &[Vec<Vec<i64>>]) -> i64 {
    let sums: Vec<i64> = planes.iter().map(|p| p.iter().flatten().sum()).collect();
    let mut best = 0;
    for k in 0..sums.len() {
        best = best.max(sums[k..].iter().sum::<i64>());
    }
    best
}

/// The number of *level* lines of a bracket text (§2.1's bp): lines `l`
/// with `x = x₁·l·x₂` where `l` and `x₁` are both balanced.
pub fn level_lines(lines: &[Vec<i64>]) -> i64 {
    let mut count = 0;
    let mut offset = 0i64;
    let mut balanced_so_far = true;
    for line in lines {
        let mut line_balanced = true;
        let mut lo = 0i64;
        for &c in line {
            lo += if c == 1 { 1 } else { -1 };
            if offset + lo < 0 {
                // A dip below zero means the prefix is not balanced.
                line_balanced = false;
            }
        }
        if !line_balanced {
            balanced_so_far = false;
        }
        offset += lo;
        if balanced_so_far && lo == 0 && offset == 0 {
            count += 1;
        }
    }
    count
}

/// Matched bracket pairs of a single bracket stream.
pub fn matched_pairs(stream: &[i64]) -> i64 {
    let mut open = 0i64;
    let mut matched = 0i64;
    for &c in stream {
        if c == 1 {
            open += 1;
        } else if open > 0 {
            open -= 1;
            matched += 1;
        }
    }
    matched
}

/// Count of the most frequent value.
pub fn mode_count(values: &[i64]) -> i64 {
    let mut best = 0;
    for &v in values {
        let c = values.iter().filter(|&&x| x == v).count() as i64;
        best = best.max(c);
    }
    best
}

/// Longest run of aligned equal pairs (the modified-LCS benchmark).
pub fn longest_aligned_run(pairs: &[[i64; 2]]) -> i64 {
    let mut best = 0i64;
    let mut cur = 0i64;
    for p in pairs {
        cur = if p[0] == p[1] { cur + 1 } else { 0 };
        best = best.max(cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_2d, gen_3d, gen_brackets};

    /// The native single-pass implementations must agree with the
    /// quadratic specs on random small inputs.
    #[test]
    fn native_strip_implementations_match_specs() {
        for seed in 0..10 {
            let rows = gen_2d(200, seed, 5, -9, 9);
            // Re-derive single-pass answers from row sums.
            let sums: Vec<i64> = rows.iter().map(|r| r.iter().sum()).collect();
            let mut mbs = 0i64;
            let mut cur = 0i64;
            let mut best = 0i64;
            let mut pre = 0i64;
            let mut total = 0i64;
            for &s in &sums {
                mbs = (mbs + s).max(0);
                cur = (cur + s).max(0);
                best = best.max(cur);
                total += s;
                pre = pre.max(total);
            }
            assert_eq!(mbs, max_bottom_strip(&rows), "seed {seed}");
            assert_eq!(best, max_segment_strip(&rows), "seed {seed}");
            assert_eq!(pre, max_top_strip(&rows), "seed {seed}");
        }
    }

    #[test]
    fn mtls_single_pass_matches_quadratic_spec() {
        for seed in 0..10 {
            let rows = gen_2d(60, seed, 4, -9, 9);
            let mut rec = vec![0i64; 4];
            let mut mtl = 0i64;
            for row in &rows {
                let mut rpre = 0;
                for (j, &v) in row.iter().enumerate() {
                    rpre += v;
                    rec[j] += rpre;
                    mtl = mtl.max(rec[j]);
                }
            }
            assert_eq!(mtl, max_top_left_rect(&rows), "seed {seed}");
        }
    }

    #[test]
    fn rect_variants_match_their_specs() {
        for seed in 0..10 {
            let rows = gen_2d(60, seed, 4, -9, 9);
            // bottom-left: single pass recb[j] = max(recb, 0) + rpre,
            // answer = max_j of final recb.
            let mut recb = vec![0i64; 4];
            for row in &rows {
                let mut rpre = 0;
                for (j, &v) in row.iter().enumerate() {
                    rpre += v;
                    recb[j] = recb[j].max(0) + rpre;
                }
            }
            assert_eq!(
                recb.iter().copied().max().unwrap(),
                max_bottom_left_rect(&rows),
                "seed {seed}"
            );
            // top-right: running max over suffix-sum accumulations.
            let mut psuf = vec![0i64; 4];
            let mut mtr = 0i64;
            for row in &rows {
                let mut rsuf = 0;
                for j in (0..4).rev() {
                    rsuf += row[j];
                    psuf[j] += rsuf;
                    mtr = mtr.max(psuf[j]);
                }
            }
            assert_eq!(mtr, max_top_right_rect(&rows), "seed {seed}");
        }
    }

    #[test]
    fn mbbs_matches_spec() {
        for seed in 0..10 {
            let planes = gen_3d(240, seed, 3, 4, -9, 9);
            let mut mbbs = 0i64;
            for p in &planes {
                let s: i64 = p.iter().flatten().sum();
                mbbs = (mbbs + s).max(0);
            }
            assert_eq!(mbbs, max_bottom_box(&planes), "seed {seed}");
        }
    }

    #[test]
    fn bp_fold_matches_level_line_spec() {
        for seed in 0..10 {
            let stream = gen_brackets(120, seed);
            let lines: Vec<Vec<i64>> = stream.chunks(6).map(<[i64]>::to_vec).collect();
            // Single pass with the min-offset lift.
            let (mut offset, mut bal, mut cnt) = (0i64, true, 0i64);
            for line in &lines {
                let (mut lo, mut mo) = (0i64, 0i64);
                for &c in line {
                    lo += if c == 1 { 1 } else { -1 };
                    mo = mo.min(lo);
                }
                bal = bal && offset + mo >= 0;
                offset += lo;
                if bal && lo == 0 && offset == 0 {
                    cnt += 1;
                }
            }
            assert_eq!(cnt, level_lines(&lines), "seed {seed}");
        }
    }

    #[test]
    fn small_oracle_sanity() {
        assert_eq!(matched_pairs(&[1, 1, -1, -1, -1]), 2);
        assert_eq!(mode_count(&[3, 1, 3, 2, 3]), 3);
        assert_eq!(longest_aligned_run(&[[1, 1], [2, 2], [3, 0], [4, 4]]), 2);
    }
}
