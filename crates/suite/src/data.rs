//! Native input generation for the performance experiments (Figure 9).
//!
//! Inputs are sized by *total scalar elements* so speedup measurements
//! are comparable across dimensionalities (the paper uses ~2bn elements
//! on a 64-core machine; the harness defaults to laptop-scale sizes).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A 1-dimensional input of `n` elements in `[lo, hi]`.
pub fn gen_1d(n: usize, seed: u64, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// A balanced-ish bracket stream (`1` = `(`, `-1` = `)`), slightly
/// biased toward opens so interesting prefixes appear.
pub fn gen_brackets(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| if rng.gen_ratio(52, 100) { 1 } else { -1 })
        .collect()
}

/// `n` integer pairs (ranges) with endpoints in `[lo, hi]`.
pub fn gen_pairs(n: usize, seed: u64, lo: i64, hi: i64) -> Vec<[i64; 2]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = rng.gen_range(lo..=hi);
            let b = rng.gen_range(lo..=hi);
            [a.min(b), a.max(b)]
        })
        .collect()
}

/// A 2-dimensional input with `total / cols` rows of width `cols`.
pub fn gen_2d(total: usize, seed: u64, cols: usize, lo: i64, hi: i64) -> Vec<Vec<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = (total / cols).max(1);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(lo..=hi)).collect())
        .collect()
}

/// A strictly-increasing-columns 2-D input *perturbed*: mostly
/// increasing so gradient checks exercise both outcomes.
pub fn gen_2d_mostly_increasing(total: usize, seed: u64, cols: usize) -> Vec<Vec<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = (total / cols).max(1);
    let mut out: Vec<Vec<i64>> = Vec::with_capacity(rows);
    for i in 0..rows {
        let row: Vec<i64> = (0..cols)
            .map(|_| (i as i64 + 1) * 10 + rng.gen_range(0..9))
            .collect();
        out.push(row);
    }
    out
}

/// A 3-dimensional input with `total / (rows * cols)` planes.
pub fn gen_3d(
    total: usize,
    seed: u64,
    rows: usize,
    cols: usize,
    lo: i64,
    hi: i64,
) -> Vec<Vec<Vec<i64>>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let planes = (total / (rows * cols)).max(1);
    (0..planes)
        .map(|_| {
            (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(lo..=hi)).collect())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_total_elements() {
        let d2 = gen_2d(1000, 1, 10, -4, 4);
        assert_eq!(d2.len(), 100);
        assert!(d2.iter().all(|r| r.len() == 10));
        let d3 = gen_3d(1000, 1, 5, 10, -4, 4);
        assert_eq!(d3.len(), 20);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(gen_1d(100, 7, -4, 4), gen_1d(100, 7, -4, 4));
        assert_ne!(gen_1d(100, 7, -4, 4), gen_1d(100, 8, -4, 4));
    }

    #[test]
    fn pairs_are_ordered() {
        for [lo, hi] in gen_pairs(200, 3, -50, 50) {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn brackets_are_plus_minus_one() {
        assert!(gen_brackets(500, 5).iter().all(|&c| c == 1 || c == -1));
    }

    #[test]
    fn mostly_increasing_has_positive_values() {
        let d = gen_2d_mostly_increasing(500, 2, 5);
        assert!(d.iter().flatten().all(|&x| x > 0));
    }
}
