//! The mini-language sources of all 27 Table-1 benchmarks.
//!
//! The paper names its benchmarks but does not reproduce their code (the
//! artifact URL is dead), so these are reconstructions of the standard
//! single-pass algorithms the names denote; DESIGN.md records every
//! definitional choice. Each benchmark carries the input profile used
//! for bounded verification, the expected pipeline outcome, and the
//! paper-reported Table-1 numbers (best-effort column mapping — see
//! EXPERIMENTS.md).

use crate::PaperNumbers;
use parsynt_synth::examples::InputProfile;

/// Input dimensionality category (the column groups of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimensionality {
    /// Simple loop over a 1-dimensional collection (possibly of pairs).
    OneD,
    /// Doubly nested loop over a 2-dimensional collection.
    TwoD,
    /// Triply nested loop over a 3-dimensional collection.
    ThreeD,
}

/// What the pipeline is expected to produce for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// Full divide-and-conquer parallelization.
    DivideAndConquer,
    /// Parallel map, sequential outer loop (bp).
    MapOnly,
    /// ✗ — not parallelizable within the budget (LCS).
    Fails,
}

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Identifier (snake_case).
    pub id: &'static str,
    /// The paper's display name.
    pub display: &'static str,
    /// Input dimensionality.
    pub dim: Dimensionality,
    /// Mini-language source.
    pub source: &'static str,
    /// Input profile for bounded verification during synthesis.
    pub profile: InputProfile,
    /// Expected pipeline outcome.
    pub expected: ExpectedOutcome,
    /// Paper-reported Table 1 numbers.
    pub paper: PaperNumbers,
}

fn pairs_profile() -> InputProfile {
    InputProfile::default().with_cols(2, 2)
}

fn brackets_profile() -> InputProfile {
    InputProfile::default()
        .with_choices(&[-1, 1])
        .with_cols(1, 6)
}

fn positive_profile() -> InputProfile {
    InputProfile::default().with_value_range(1, 9)
}

fn mode_profile() -> InputProfile {
    InputProfile::default()
        .with_value_range(0, 7)
        .with_rows(2, 10)
}

/// Look up a benchmark by id.
pub fn benchmark(id: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.id == id)
}

/// The full suite, in Table-1 column order (2-D, 3-D, then 1-D).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        // ----------------------------------------------------- 2-D ----
        Benchmark {
            id: "sorted",
            display: "sorted",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state srt : bool = true;
                state first : int = 0;
                state last : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let rsrt : bool = true;
                  let rfirst : int = a[i][0];
                  let rlast : int = a[i][0];
                  for j in 0 .. len(a[i]) {
                    if (j > 0) {
                      if (a[i][j] < rlast) { rsrt = false; }
                      rlast = a[i][j];
                    }
                  }
                  if (seen && rfirst < last) { srt = false; }
                  srt = srt && rsrt;
                  if (!seen) { first = rfirst; }
                  last = rlast;
                  seen = true;
                }
                return srt;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(2.3),
            },
        },
        Benchmark {
            id: "sum",
            display: "sum",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state s : int = 0;
                for i in 0 .. len(a) {
                  for j in 0 .. len(a[i]) { s = s + a[i][j]; }
                }
                return s;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(1.1),
            },
        },
        Benchmark {
            id: "vertical_gradient",
            display: "vertical gradient",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state ok : bool = true;
                state prev : seq<int> = zeros(len(a[0]));
                state frow : seq<int> = zeros(len(a[0]));
                state seen : bool = false;
                for i in 0 .. len(a) {
                  for j in 0 .. len(a[i]) {
                    if (a[i][j] <= prev[j]) { ok = false; }
                    if (i == 0) { frow[j] = a[i][j]; }
                    prev[j] = a[i][j];
                  }
                  seen = true;
                }
                return ok;
            "#,
            profile: positive_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.1,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(1.1),
            },
        },
        Benchmark {
            id: "diagonal_gradient",
            display: "diagonal gradient",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state ok : bool = true;
                state prevs : seq<int> = zeros(len(a[0]));
                state frow : seq<int> = zeros(len(a[0]));
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let row : seq<int> = zeros(len(a[i]));
                  for j in 0 .. len(a[i]) {
                    row[j] = a[i][j];
                    if (a[i][j] <= prevs[j]) { ok = false; }
                    if (i == 0) { frow[j] = a[i][j]; }
                  }
                  for j2 in 0 .. len(a[i]) {
                    if (j2 > 0) { prevs[j2] = a[i][j2 - 1]; }
                  }
                  seen = true;
                }
                return ok;
            "#,
            profile: positive_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(1.1),
            },
        },
        Benchmark {
            id: "min_max",
            display: "min-max",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state mn : int = 1000000;
                state mx : int = 0 - 1000000;
                for i in 0 .. len(a) {
                  for j in 0 .. len(a[i]) {
                    mn = min(mn, a[i][j]);
                    mx = max(mx, a[i][j]);
                  }
                }
                return mn, mx;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(2.5),
            },
        },
        Benchmark {
            id: "min_max_col",
            display: "min-max col.",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state cmin : seq<int> = zeros(len(a[0]));
                state cmax : seq<int> = zeros(len(a[0]));
                state seen : bool = false;
                for i in 0 .. len(a) {
                  for j in 0 .. len(a[i]) {
                    if (seen) {
                      cmin[j] = min(cmin[j], a[i][j]);
                      cmax[j] = max(cmax[j], a[i][j]);
                    } else {
                      cmin[j] = a[i][j];
                      cmax[j] = a[i][j];
                    }
                  }
                  seen = true;
                }
                return cmin, cmax;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.5,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(2.3),
            },
        },
        Benchmark {
            id: "saddle_point",
            display: "saddle point",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state mrm : int = 0 - 1000000;
                state cmax : seq<int> = zeros(len(a[0]));
                for i in 0 .. len(a) {
                  let rmin : int = a[i][0];
                  for j in 0 .. len(a[i]) {
                    rmin = min(rmin, a[i][j]);
                    cmax[j] = max(cmax[j], a[i][j]);
                  }
                  mrm = max(mrm, rmin);
                }
                return mrm, cmax;
            "#,
            profile: positive_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 4.6,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(5.4),
            },
        },
        Benchmark {
            id: "max_top_strip",
            display: "max top strip",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state cur : int = 0;
                state mts : int = 0;
                for i in 0 .. len(a) {
                  let row : int = 0;
                  for j in 0 .. len(a[i]) { row = row + a[i][j]; }
                  cur = cur + row;
                  mts = max(mts, cur);
                }
                return mts;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(6.1),
            },
        },
        Benchmark {
            id: "max_bottom_strip",
            display: "max bottom strip",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state mbs : int = 0;
                for i in 0 .. len(a) {
                  let row : int = 0;
                  for j in 0 .. len(a[i]) { row = row + a[i][j]; }
                  mbs = max(mbs + row, 0);
                }
                return mbs;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(11.8),
            },
        },
        Benchmark {
            id: "max_segment_strip",
            display: "max segment strip",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state cur : int = 0;
                state best : int = 0;
                for i in 0 .. len(a) {
                  let row : int = 0;
                  for j in 0 .. len(a[i]) { row = row + a[i][j]; }
                  cur = max(cur + row, 0);
                  best = max(best, cur);
                }
                return best;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.2,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(64.1),
            },
        },
        Benchmark {
            id: "max_left_strip",
            display: "max left strip",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state cols : seq<int> = zeros(len(a[0]));
                state pref : seq<int> = zeros(len(a[0]));
                for i in 0 .. len(a) {
                  let rpre : int = 0;
                  for j in 0 .. len(a[i]) {
                    cols[j] = cols[j] + a[i][j];
                    rpre = rpre + a[i][j];
                    pref[j] = pref[j] + rpre;
                  }
                }
                return cols, pref;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.6,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(11.2),
            },
        },
        Benchmark {
            id: "mtls",
            display: "mtls (Sec. 2.2)",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state rec : seq<int> = zeros(len(a[0]));
                state mtl : int = 0;
                for i in 0 .. len(a) {
                  let rpre : int = 0;
                  for j in 0 .. len(a[i]) {
                    rpre = rpre + a[i][j];
                    rec[j] = rec[j] + rpre;
                    mtl = max(mtl, rec[j]);
                  }
                }
                return mtl;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 30.2,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(116.3),
            },
        },
        Benchmark {
            id: "max_bot_left_rect",
            display: "max bot-left rect.",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state psum : seq<int> = zeros(len(a[0]));
                state recb : seq<int> = zeros(len(a[0]));
                for i in 0 .. len(a) {
                  let rpre : int = 0;
                  for j in 0 .. len(a[i]) {
                    rpre = rpre + a[i][j];
                    psum[j] = psum[j] + rpre;
                    recb[j] = max(recb[j], 0) + rpre;
                  }
                }
                return psum, recb;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.4,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(216.2),
            },
        },
        Benchmark {
            id: "max_top_right_rect",
            display: "max top-right rect.",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state psuf : seq<int> = zeros(len(a[0]));
                state mtr : int = 0;
                for i in 0 .. len(a) {
                  let rsuf : int = 0;
                  for j in 0 .. len(a[i]) {
                    rsuf = rsuf + a[i][len(a[i]) - 1 - j];
                    psuf[len(a[i]) - 1 - j] = psuf[len(a[i]) - 1 - j] + rsuf;
                    mtr = max(mtr, psuf[len(a[i]) - 1 - j]);
                  }
                }
                return mtr;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.4,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(313.5),
            },
        },
        Benchmark {
            id: "bp",
            display: "bp (Sec. 2.1)",
            dim: Dimensionality::TwoD,
            source: r#"
                input a : seq<seq<int>>;
                state offset : int = 0;
                state bal : bool = true;
                state cnt : int = 0;
                for i in 0 .. len(a) {
                  let lo : int = 0;
                  for j in 0 .. len(a[i]) {
                    lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);
                    if (offset + lo < 0) { bal = false; }
                  }
                  offset = offset + lo;
                  if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }
                }
                return cnt;
            "#,
            profile: brackets_profile(),
            expected: ExpectedOutcome::MapOnly,
            paper: PaperNumbers {
                summarization_s: 5.3,
                aux: 1,
                aux_memoryless: true,
                join_s: None,
            },
        },
        // ----------------------------------------------------- 3-D ----
        Benchmark {
            id: "max_top_box",
            display: "max top box",
            dim: Dimensionality::ThreeD,
            source: r#"
                input a : seq<seq<seq<int>>>;
                state cur : int = 0;
                state mtb : int = 0;
                for i in 0 .. len(a) {
                  let plane : int = 0;
                  for j in 0 .. len(a[i]) {
                    for k in 0 .. len(a[i][j]) { plane = plane + a[i][j][k]; }
                  }
                  cur = cur + plane;
                  mtb = max(mtb, cur);
                }
                return mtb;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(2.6),
            },
        },
        Benchmark {
            id: "mbbs",
            display: "mbbs (Sec. 1)",
            dim: Dimensionality::ThreeD,
            source: r#"
                input a : seq<seq<seq<int>>>;
                state mbbs : int = 0;
                for i in 0 .. len(a) {
                  let plane : int = 0;
                  for j in 0 .. len(a[i]) {
                    for k in 0 .. len(a[i][j]) { plane = plane + a[i][j][k]; }
                  }
                  mbbs = max(mbbs + plane, 0);
                }
                return mbbs;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(3.3),
            },
        },
        Benchmark {
            id: "max_segment_box",
            display: "max segment box",
            dim: Dimensionality::ThreeD,
            source: r#"
                input a : seq<seq<seq<int>>>;
                state cur : int = 0;
                state best : int = 0;
                for i in 0 .. len(a) {
                  let plane : int = 0;
                  for j in 0 .. len(a[i]) {
                    for k in 0 .. len(a[i][j]) { plane = plane + a[i][j][k]; }
                  }
                  cur = max(cur + plane, 0);
                  best = max(best, cur);
                }
                return best;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(52.3),
            },
        },
        Benchmark {
            id: "max_left_box",
            display: "max left box",
            dim: Dimensionality::ThreeD,
            source: r#"
                input a : seq<seq<seq<int>>>;
                state rec : seq<int> = zeros(len(a[0]));
                state mlb : int = 0;
                for p in 0 .. len(a) {
                  let rv : seq<int> = zeros(len(a[p]));
                  for j in 0 .. len(a[p]) {
                    for c in 0 .. len(a[p][j]) { rv[j] = rv[j] + a[p][j][c]; }
                  }
                  for j2 in 0 .. len(a[p]) {
                    rec[j2] = rec[j2] + rv[j2];
                    mlb = max(mlb, rec[j2]);
                  }
                }
                return mlb;
            "#,
            profile: InputProfile::default(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 2.1,
                aux: 1,
                aux_memoryless: false,
                join_s: Some(22.7),
            },
        },
        // ----------------------------------------------------- 1-D ----
        Benchmark {
            id: "balanced_substrings",
            display: "balanced substr.",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<int>;
                state matched : int = 0;
                state open : int = 0;
                state closeun : int = 0;
                for i in 0 .. len(a) {
                  if (a[i] == 1) { open = open + 1; }
                  else {
                    if (open > 0) { open = open - 1; matched = matched + 1; }
                    else { closeun = closeun + 1; }
                  }
                }
                return matched;
            "#,
            profile: InputProfile::default()
                .with_choices(&[-1, 1])
                .with_rows(2, 10),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 2.4,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(8.1),
            },
        },
        Benchmark {
            id: "mode",
            display: "mode",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<int>;
                state counts : seq<int> = zeros(8);
                state mode : int = 0;
                for i in 0 .. len(a) {
                  counts[a[i]] = counts[a[i]] + 1;
                  mode = max(mode, counts[a[i]]);
                }
                return mode;
            "#,
            profile: mode_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 54.9,
                aux: 0,
                aux_memoryless: false,
                join_s: Some(11.5),
            },
        },
        Benchmark {
            id: "max_dist",
            display: "max-dist",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<int>;
                state md : int = 0;
                state first : int = 0;
                state last : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  if (seen) { md = max(md, max(a[i] - last, last - a[i])); }
                  if (!seen) { first = a[i]; }
                  last = a[i];
                  seen = true;
                }
                return md;
            "#,
            profile: InputProfile::default().with_rows(2, 10),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(10.5),
            },
        },
        Benchmark {
            id: "intersecting_ranges",
            display: "inter. ranges",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<seq<int>>;
                state cnt : int = 0;
                state llo : int = 0;
                state lhi : int = 0;
                state flo : int = 0;
                state fhi : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let lo : int = min(a[i][0], a[i][1]);
                  let hi : int = max(a[i][0], a[i][1]);
                  if (seen && max(llo, lo) <= min(lhi, hi)) { cnt = cnt + 1; }
                  if (!seen) { flo = lo; fhi = hi; }
                  llo = lo;
                  lhi = hi;
                  seen = true;
                }
                return cnt;
            "#,
            profile: pairs_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(1.5),
            },
        },
        Benchmark {
            id: "increasing_ranges",
            display: "increasing ranges",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<seq<int>>;
                state cnt : int = 0;
                state llo : int = 0;
                state flo : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let lo : int = min(a[i][0], a[i][1]);
                  if (seen && lo > llo) { cnt = cnt + 1; }
                  if (!seen) { flo = lo; }
                  llo = lo;
                  seen = true;
                }
                return cnt;
            "#,
            profile: pairs_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(2.5),
            },
        },
        Benchmark {
            id: "overlapping_ranges",
            display: "overlapping ranges",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<seq<int>>;
                state cnt : int = 0;
                state lhi : int = 0;
                state flo : int = 0;
                state fhi : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let lo : int = min(a[i][0], a[i][1]);
                  let hi : int = max(a[i][0], a[i][1]);
                  if (seen && lo <= lhi && hi > lhi) { cnt = cnt + 1; }
                  if (!seen) { flo = lo; fhi = hi; }
                  lhi = hi;
                  seen = true;
                }
                return cnt;
            "#,
            profile: pairs_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(7.1),
            },
        },
        Benchmark {
            id: "pyramid_ranges",
            display: "pyramid ranges",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<seq<int>>;
                state cnt : int = 0;
                state llo : int = 0;
                state lhi : int = 0;
                state flo : int = 0;
                state fhi : int = 0;
                state seen : bool = false;
                for i in 0 .. len(a) {
                  let lo : int = min(a[i][0], a[i][1]);
                  let hi : int = max(a[i][0], a[i][1]);
                  if (seen && llo < lo && hi < lhi) { cnt = cnt + 1; }
                  if (!seen) { flo = lo; fhi = hi; }
                  llo = lo;
                  lhi = hi;
                  seen = true;
                }
                return cnt;
            "#,
            profile: pairs_profile(),
            expected: ExpectedOutcome::DivideAndConquer,
            paper: PaperNumbers {
                summarization_s: 1.3,
                aux: 2,
                aux_memoryless: false,
                join_s: Some(4.0),
            },
        },
        Benchmark {
            id: "lcs",
            display: "LCS (modified)",
            dim: Dimensionality::OneD,
            source: r#"
                input a : seq<seq<int>>;
                state best : int = 0;
                state cur : int = 0;
                for i in 0 .. len(a) {
                  if (a[i][0] == a[i][1]) { cur = cur + 1; } else { cur = 0; }
                  best = max(best, cur);
                }
                return best;
            "#,
            profile: InputProfile::default()
                .with_cols(2, 2)
                .with_value_range(0, 2),
            expected: ExpectedOutcome::Fails,
            paper: PaperNumbers {
                summarization_s: 2.3,
                aux: 0,
                aux_memoryless: false,
                join_s: None,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    #[test]
    fn all_sources_parse_and_check() {
        for b in all_benchmarks() {
            assert!(
                parse(b.source).is_ok(),
                "benchmark `{}` failed to parse/check: {:?}",
                b.id,
                parse(b.source).err()
            );
        }
    }

    #[test]
    fn suite_has_27_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 27);
        // Exactly one map-only (bp) and one failure (LCS).
        assert_eq!(
            all.iter()
                .filter(|b| b.expected == ExpectedOutcome::MapOnly)
                .count(),
            1
        );
        assert_eq!(
            all.iter()
                .filter(|b| b.expected == ExpectedOutcome::Fails)
                .count(),
            1
        );
    }

    #[test]
    fn ids_are_unique() {
        let all = all_benchmarks();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
        assert!(benchmark("mbbs").is_some());
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn loop_depths_match_dimensionality() {
        for b in all_benchmarks() {
            let p = parse(b.source).unwrap();
            let depth = p.loop_depth();
            match b.dim {
                Dimensionality::OneD => assert_eq!(depth, 1, "{}", b.id),
                Dimensionality::TwoD => assert_eq!(depth, 2, "{}", b.id),
                Dimensionality::ThreeD => assert_eq!(depth, 3, "{}", b.id),
            }
        }
    }
}
