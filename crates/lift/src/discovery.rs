//! Normalization-driven discovery of auxiliary accumulators (§8).
//!
//! The algorithm of §8.2:
//!
//! 1. **Unfold** the summarized loop symbolically over `k = 2` abstract
//!    elements (the left-hand side of Equation 3);
//! 2. **Normalize** each state variable's unfolding with the phase-1
//!    cost (state variables to minimal depth/occurrences);
//! 3. In the resulting (constant or ⊳-recursive) normal form, the
//!    **input-only subexpressions** are exactly the values a parallel
//!    join additionally needs;
//! 4. **Recursion discovery**: express the `k`-element value `u_k` as
//!    `u_{k-1} ⊞ a_k` by matching `u_{k-1}` as a subtree of `u_k`
//!    (subtree isomorphism specialised to fold/last schemes), which
//!    yields the accumulator's update statement.

use parsynt_lang::ast::{BinOp, Expr, Program, Sym};
use parsynt_lang::functional::RightwardFn;
use parsynt_rewrite::cost::Phase1Cost;
use parsynt_rewrite::normal_form::{classify, flatten, Purity};
use parsynt_rewrite::normalize::Normalizer;
use parsynt_rewrite::symbolic::{sym_exec_all, SymEnv, SymVal};
use parsynt_trace as trace;
use parsynt_trace::Deadline;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A discovered auxiliary accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuxSpec {
    /// Suggested variable name.
    pub hint: String,
    /// Fold operator, or `None` for an overwrite ("last element")
    /// accumulator.
    pub op: Option<BinOp>,
    /// Per-iteration contribution, over the program's inner-accumulator
    /// symbols (or input element projections for 1-dimensional loops).
    pub contribution: Expr,
    /// Initial value.
    pub init: Expr,
}

/// Result of a discovery run.
#[derive(Debug, Clone, Default)]
pub struct Discovery {
    /// Discovered accumulators, deduplicated.
    pub specs: Vec<AuxSpec>,
    /// Time spent unfolding + normalizing (the paper's "lifting time",
    /// reported as negligible in §9).
    pub elapsed: Duration,
}

/// The element interface of one unfolding step: for each inner
/// accumulator (or the 1-D input element), a fresh leaf symbol.
#[derive(Debug, Clone)]
struct StepLeaves {
    /// leaf symbol → the expression it denotes in the real program.
    back: BTreeMap<Sym, Expr>,
}

/// Best-effort type inference for a contribution expression: auxiliary
/// accumulators are integers, so boolean-valued discoveries (e.g. the
/// conditional guards of LCS-style loops) are rejected here — exactly
/// the "conditional auxiliary accumulators fall beyond the reach of the
/// heuristics" limitation of §10.
fn is_int_expr(e: &Expr) -> bool {
    match e {
        Expr::Int(_) => true,
        Expr::Bool(_) => false,
        Expr::Var(_) | Expr::Index(..) | Expr::Len(_) => true,
        Expr::Zeros(_) => false,
        Expr::Unary(op, a) => matches!(op, parsynt_lang::ast::UnOp::Neg) && is_int_expr(a),
        Expr::Binary(op, a, b) => {
            op.result_ty() == parsynt_lang::Ty::Int && is_int_expr(a) && is_int_expr(b)
        }
        Expr::Ite(_, t, e2) => is_int_expr(t) && is_int_expr(e2),
    }
}

/// Run aux discovery on a (memoryless) program.
pub fn discover(program: &Program) -> Discovery {
    discover_with_deadline(program, &Deadline::none())
}

/// Run aux discovery under a wall-clock budget: normalization stops
/// expanding once `deadline` expires and per-variable work is skipped.
pub fn discover_with_deadline(program: &Program, deadline: &Deadline) -> Discovery {
    let start = Instant::now();
    let mut discovery_span = trace::span("lift", "discovery");
    let mut specs = Vec::new();
    if let Some((u2_map, state_leaves)) = unfold(program, 2) {
        let u1_map = unfold(program, 1);
        let is_state = {
            let leaves = state_leaves.clone();
            move |s: Sym| leaves.contains(&s)
        };
        let cost = Phase1Cost::new(is_state.clone());
        let normalizer = Normalizer::new().with_deadline(deadline.clone());
        for (sym, (expr2, leaves2)) in &u2_map {
            if deadline.is_expired() {
                break;
            }
            let norm2 = normalizer.run(expr2, &cost).best;
            let mut inputs_only = Vec::new();
            maximal_input_only(&norm2, &is_state, &mut inputs_only);
            let u1_info = u1_map.as_ref().and_then(|(m, _)| m.get(sym));
            for u2 in inputs_only {
                if let Some(spec) = recover_recursion(program, &u2, u1_info, leaves2) {
                    if is_int_expr(&spec.contribution) && !specs.contains(&spec) {
                        specs.push(spec);
                    }
                }
            }
        }
    }
    discovery_span.record("specs", specs.len());
    Discovery {
        specs,
        elapsed: start.elapsed(),
    }
}

type UnfoldMap = BTreeMap<Sym, (Expr, Vec<StepLeaves>)>;

/// Symbolically unfold the summarized loop body `k` times. Returns per
/// scalar state variable its unfolded expression, plus the state-leaf
/// set. `None` when symbolic execution fails (e.g. array state).
fn unfold(program: &Program, k: usize) -> Option<(UnfoldMap, Vec<Sym>)> {
    let f = RightwardFn::new(program).ok()?;
    let mut interner = program.interner.clone();
    let mut env = SymEnv::new();
    let mut state_leaves = Vec::new();
    for decl in &program.state {
        if !decl.ty.is_scalar() {
            return None;
        }
        // State starts as an opaque leaf standing for h(x).
        let leaf = interner.fresh(&format!("{}@0", program.name(decl.name)));
        env.set(decl.name, SymVal::leaf(leaf));
        state_leaves.push(leaf);
    }

    let one_dimensional = f.inner_vars().is_empty();
    // For 1-dimensional loops, bind the main input once to an array of
    // fresh element leaves; each step advances the loop counter.
    let mut element_leaves: Vec<Sym> = Vec::new();
    if one_dimensional {
        let main = &program.inputs[f.main_input()];
        let elems: Vec<SymVal> = (0..k)
            .map(|j| {
                let leaf = interner.fresh(&format!("elem{j}"));
                element_leaves.push(leaf);
                SymVal::leaf(leaf)
            })
            .collect();
        env.set(main.name, SymVal::Array(elems));
    }

    let mut all_leaves: Vec<StepLeaves> = Vec::new();
    for step in 1..=k {
        let mut leaves = StepLeaves {
            back: BTreeMap::new(),
        };
        if one_dimensional {
            let main = &program.inputs[f.main_input()];
            leaves.back.insert(
                element_leaves[step - 1],
                Expr::index(Expr::var(main.name), Expr::var(f.loop_var())),
            );
            env.set(f.loop_var(), SymVal::int((step - 1) as i64));
        } else {
            for (sym, ty) in f.inner_vars() {
                if !ty.is_scalar() {
                    return None;
                }
                let leaf = interner.fresh(&format!("{}@{step}", program.name(*sym)));
                env.set(*sym, SymVal::leaf(leaf));
                leaves.back.insert(leaf, Expr::var(*sym));
            }
        }
        let mut scratch = env.clone();
        sym_exec_all(&mut scratch, f.outer_phase()).ok()?;
        env = scratch;
        all_leaves.push(leaves);
    }

    let mut out = BTreeMap::new();
    for decl in &program.state {
        if let Ok(SymVal::Scalar(e)) = env.get(decl.name) {
            out.insert(decl.name, (e.clone(), all_leaves.clone()));
        }
    }
    Some((out, state_leaves))
}

/// Collect the maximal input-only subexpressions of a normal form (the
/// `exp_i` leaves of the paper's constant normal form).
fn maximal_input_only(e: &Expr, is_state: &dyn Fn(Sym) -> bool, out: &mut Vec<Expr>) {
    match classify(e, is_state) {
        Purity::InputOnly => {
            // Skip bare constants and trivial leaves.
            if e.size() >= 1 && !matches!(e, Expr::Int(_) | Expr::Bool(_)) && !out.contains(e) {
                out.push(e.clone());
            }
        }
        Purity::Mixed => match e {
            Expr::Len(a) | Expr::Zeros(a) | Expr::Unary(_, a) => {
                maximal_input_only(a, is_state, out)
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                maximal_input_only(a, is_state, out);
                maximal_input_only(b, is_state, out);
            }
            Expr::Ite(c, t, e2) => {
                maximal_input_only(c, is_state, out);
                maximal_input_only(t, is_state, out);
                maximal_input_only(e2, is_state, out);
            }
            _ => {}
        },
        Purity::Constant | Purity::StateOnly => {}
    }
}

/// Given the 2-step input-only value `u2`, recover a recursive
/// computation for it: either a fold `u_k = u_{k-1} ⊞ a_k` or an
/// overwrite (`u_k` mentions only the last element).
fn recover_recursion(
    program: &Program,
    u2: &Expr,
    _u1: Option<&(Expr, Vec<StepLeaves>)>,
    leaves2: &[StepLeaves],
) -> Option<AuxSpec> {
    let step_of =
        |s: Sym| -> Option<usize> { leaves2.iter().position(|sl| sl.back.contains_key(&s)) };
    let map_back = |e: &Expr| -> Option<Expr> {
        let mut ok = true;
        let mapped = e.map(&mut |sub| {
            if let Expr::Var(s) = sub {
                for sl in leaves2 {
                    if let Some(real) = sl.back.get(s) {
                        return Some(real.clone());
                    }
                }
                ok = false;
            }
            None
        });
        ok.then_some(mapped)
    };

    let vars = u2.vars();
    let steps: Vec<Option<usize>> = vars.iter().map(|&v| step_of(v)).collect();
    if steps.iter().any(Option::is_none) {
        return None;
    }
    let steps: Vec<usize> = steps.into_iter().flatten().collect();
    let last_step = leaves2.len() - 1;

    // Case A: only last-step leaves — an overwrite accumulator
    // ("remember the last line", the shape of Prop. 5.4's default lift
    // restricted to what the join needs).
    if steps.iter().all(|&s| s == last_step) {
        let contribution = map_back(u2)?;
        return Some(AuxSpec {
            hint: "aux_last".to_owned(),
            op: None,
            init: Expr::int(0),
            contribution,
        });
    }

    // Case B: fold — flatten on an associative operator and split the
    // chunks by step.
    for op in [BinOp::Add, BinOp::Max, BinOp::Min, BinOp::And, BinOp::Or] {
        let mut chunks = Vec::new();
        flatten(u2, op, &mut chunks);
        if chunks.len() < 2 {
            continue;
        }
        let mut last_chunks = Vec::new();
        let mut earlier_chunks = Vec::new();
        let mut mixed = false;
        for chunk in &chunks {
            let cvars = chunk.vars();
            if cvars.is_empty() {
                earlier_chunks.push(*chunk);
                continue;
            }
            let csteps: Vec<usize> = cvars.iter().filter_map(|&v| step_of(v)).collect();
            if csteps.iter().all(|&s| s == last_step) {
                last_chunks.push(*chunk);
            } else if csteps.iter().all(|&s| s != last_step) {
                earlier_chunks.push(*chunk);
            } else {
                mixed = true;
            }
        }
        if mixed || last_chunks.is_empty() || earlier_chunks.is_empty() {
            continue;
        }
        // The last-step chunks are the per-iteration contribution.
        let contribution_raw = last_chunks
            .iter()
            .skip(1)
            .fold((*last_chunks[0]).clone(), |acc, c| {
                Expr::bin(op, acc, (*c).clone())
            });
        let contribution = map_back(&contribution_raw)?;
        let hint = format!(
            "aux_{}",
            match op {
                BinOp::Add => "sum",
                BinOp::Max => "max",
                BinOp::Min => "min",
                BinOp::And => "all",
                BinOp::Or => "any",
                _ => "fold",
            }
        );
        let _ = program;
        return Some(AuxSpec {
            hint,
            op: Some(op),
            init: Expr::int(0),
            contribution,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    #[test]
    fn discovers_sum_accumulator_for_mbbs() {
        // The introduction's example: lifting mbbs needs aux_sum
        // (Figure 1(b)). The summarized body is s = max(s + t, 0).
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let t : int = 0;\n\
               for j in 0 .. len(a[i]) { t = t + a[i][j]; }\n\
               s = max(s + t, 0);\n\
             }",
        )
        .unwrap();
        let found = discover(&p);
        let t = p.sym("t").unwrap();
        assert!(
            found
                .specs
                .iter()
                .any(|s| s.op == Some(BinOp::Add) && s.contribution == Expr::var(t)),
            "specs: {:?}",
            found.specs
        );
    }

    #[test]
    fn discovers_sum_for_1d_max_prefix() {
        // max top strip, 1-D view: m = max(m, m + ... ) — actually
        // m = max(m + a[i], 0) needs the element sum a[1]+a[2].
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }",
        )
        .unwrap();
        let found = discover(&p);
        assert!(
            found.specs.iter().any(|s| s.op == Some(BinOp::Add)),
            "specs: {:?}",
            found.specs
        );
    }

    #[test]
    fn lifting_time_is_fast() {
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }",
        )
        .unwrap();
        let found = discover(&p);
        // §9: "lifting ... less than a second for all our benchmarks".
        assert!(found.elapsed.as_secs() < 1);
    }

    #[test]
    fn array_state_is_skipped() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; } }",
        )
        .unwrap();
        // No panic; discovery yields nothing for array state.
        let found = discover(&p);
        assert!(found.specs.is_empty());
    }
}
