//! Program-transformation utilities used by the lifting algorithms.

use parsynt_lang::ast::{Expr, LValue, Program, StateDecl, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::Ty;

/// Substitute variable `from` with expression `to` in a statement tree
/// (expressions only; assignment targets are renamed when `to` is a
/// plain variable).
pub fn substitute_stmt(stmt: &Stmt, from: Sym, to: &Expr) -> Stmt {
    let target_rename = match to {
        Expr::Var(s) => Some(*s),
        _ => None,
    };
    match stmt {
        Stmt::Let { name, ty, init } => Stmt::Let {
            name: *name,
            ty: ty.clone(),
            init: init.substitute(from, to),
        },
        Stmt::Assign { target, value } => {
            let base = if target.base == from {
                target_rename.unwrap_or(target.base)
            } else {
                target.base
            };
            Stmt::Assign {
                target: LValue {
                    base,
                    indices: target
                        .indices
                        .iter()
                        .map(|e| e.substitute(from, to))
                        .collect(),
                },
                value: value.substitute(from, to),
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: cond.substitute(from, to),
            then_branch: then_branch
                .iter()
                .map(|s| substitute_stmt(s, from, to))
                .collect(),
            else_branch: else_branch
                .iter()
                .map(|s| substitute_stmt(s, from, to))
                .collect(),
        },
        Stmt::For { var, bound, body } => Stmt::For {
            var: *var,
            bound: bound.substitute(from, to),
            body: body.iter().map(|s| substitute_stmt(s, from, to)).collect(),
        },
    }
}

/// Declare a fresh auxiliary state variable and return its symbol.
pub fn add_state_var(program: &mut Program, base_name: &str, ty: Ty, init: Expr) -> Sym {
    let sym = program.interner.fresh(base_name);
    program.state.push(StateDecl {
        name: sym,
        ty,
        init,
    });
    sym
}

/// Remove a state variable's declaration (used when pruning dead
/// auxiliaries). Statements updating it must be removed separately with
/// [`remove_assignments`].
pub fn remove_state_var(program: &mut Program, sym: Sym) {
    program.state.retain(|d| d.name != sym);
    program.returns.retain(|&r| r != sym);
}

/// Remove every assignment to `sym` (and `let` declarations of it) from
/// a statement list, recursively. Empty `if`s and loops left behind are
/// removed as well.
pub fn remove_assignments(stmts: &mut Vec<Stmt>, sym: Sym) {
    stmts.retain_mut(|stmt| match stmt {
        Stmt::Let { name, .. } => *name != sym,
        Stmt::Assign { target, .. } => target.base != sym,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            remove_assignments(then_branch, sym);
            remove_assignments(else_branch, sym);
            !(then_branch.is_empty() && else_branch.is_empty())
        }
        Stmt::For { body, .. } => {
            remove_assignments(body, sym);
            !body.is_empty()
        }
    });
}

/// Append a statement at the end of the outer loop's body.
///
/// # Errors
///
/// Fails if the program has no outer loop.
pub fn append_to_outer_body(program: &mut Program, stmt: Stmt) -> Result<()> {
    let pos = program
        .body
        .iter()
        .position(|s| matches!(s, Stmt::For { .. }))
        .ok_or_else(|| LangError::ty("program has no outer loop"))?;
    match &mut program.body[pos] {
        Stmt::For { body, .. } => {
            body.push(stmt);
            Ok(())
        }
        _ => unreachable!(),
    }
}

/// Insert `mk(assigned_lvalue)` immediately after every assignment to
/// `watched` in the statement tree. Returns how many updates were
/// inserted.
pub fn insert_after_assignments(
    stmts: &mut Vec<Stmt>,
    watched: Sym,
    mk: &dyn Fn(&LValue) -> Stmt,
) -> usize {
    let mut inserted = 0;
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Assign { target, .. } if target.base == watched => {
                let new_stmt = mk(&target.clone());
                stmts.insert(i + 1, new_stmt);
                inserted += 1;
                i += 2;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                inserted += insert_after_assignments(then_branch, watched, mk);
                inserted += insert_after_assignments(else_branch, watched, mk);
                i += 1;
            }
            Stmt::For { body, .. } => {
                inserted += insert_after_assignments(body, watched, mk);
                i += 1;
            }
            _ => i += 1,
        }
    }
    inserted
}

/// Whether any statement in the tree assigns to `sym`.
pub fn assigns_to(stmts: &[Stmt], sym: Sym) -> bool {
    let mut found = false;
    for stmt in stmts {
        stmt.walk(&mut |s| {
            if let Stmt::Assign { target, .. } = s {
                if target.base == sym {
                    found = true;
                }
            }
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::interp::run_program;
    use parsynt_lang::{parse, Value};

    #[test]
    fn substitute_renames_reads_and_writes() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; }",
        )
        .unwrap();
        let mut p2 = p.clone();
        let s = p2.sym("s").unwrap();
        let t = p2.interner.fresh("t");
        let body = p2.body[0].clone();
        let renamed = substitute_stmt(&body, s, &Expr::var(t));
        let mut found = false;
        renamed.walk(&mut |st| {
            if let Stmt::Assign { target, value } = st {
                assert_eq!(target.base, t);
                assert!(value.mentions(t) && !value.mentions(s));
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn substitute_with_constant_replaces_reads_only() {
        let p = parse(
            "input a : seq<int>; state s : int = 0; state q : int = 0;\n\
             for i in 0 .. len(a) { q = q + s; }",
        )
        .unwrap();
        let s = p.sym("s").unwrap();
        let body = p.body[0].clone();
        let replaced = substitute_stmt(&body, s, &Expr::int(0));
        replaced.walk(&mut |st| {
            if let Stmt::Assign { value, .. } = st {
                assert!(!value.mentions(s));
            }
        });
    }

    #[test]
    fn add_and_use_aux_var() {
        let mut p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }\n\
             return m;",
        )
        .unwrap();
        let aux = add_state_var(&mut p, "aux_sum", Ty::Int, Expr::int(0));
        let i = p.sym("i").unwrap();
        let a = p.sym("a").unwrap();
        append_to_outer_body(
            &mut p,
            Stmt::Assign {
                target: LValue::var(aux),
                value: Expr::add(Expr::var(aux), Expr::index(Expr::var(a), Expr::var(i))),
            },
        )
        .unwrap();
        let out = run_program(&p, &[Value::seq_of_ints(&[3, -1, 2])]).unwrap();
        assert_eq!(out.scalar_named(&p, "aux_sum"), Some(4));
        assert_eq!(out.scalar_named(&p, "m"), Some(4));
        // Returns are unchanged: aux is not observable.
        assert_eq!(p.returns.len(), 1);
    }

    #[test]
    fn insert_after_assignments_tracks_running_min() {
        let mut p = parse(
            "input a : seq<seq<int>>; state q : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) { lo = lo + a[i][j]; }\n\
               q = q + lo;\n\
             }",
        )
        .unwrap();
        let lo = p.sym("lo").unwrap();
        let mo = p.interner.fresh("mo");
        // Find the outer body and insert the `let mo` + tracking update.
        let Stmt::For { body, .. } = &mut p.body[0] else {
            panic!()
        };
        body.insert(
            1,
            Stmt::Let {
                name: mo,
                ty: Ty::Int,
                init: Expr::int(0),
            },
        );
        let count = insert_after_assignments(body, lo, &|_| Stmt::Assign {
            target: LValue::var(mo),
            value: Expr::min(Expr::var(mo), Expr::var(lo)),
        });
        assert_eq!(count, 1);
        assert!(assigns_to(body, mo));
    }

    #[test]
    fn remove_assignments_cleans_empty_blocks() {
        let mut p = parse(
            "input a : seq<int>; state s : int = 0; state t : int = 0;\n\
             for i in 0 .. len(a) { if (a[i] > 0) { t = t + 1; } s = s + a[i]; }",
        )
        .unwrap();
        let t = p.sym("t").unwrap();
        remove_assignments(&mut p.body, t);
        remove_state_var(&mut p, t);
        // The `if` became empty and was removed.
        let Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(body.len(), 1);
        assert_eq!(p.state.len(), 1);
    }
}
