//! The homomorphism lift (module III of Figure 7, §5.1, §8) driving
//! join synthesis to success.
//!
//! Strategy: attempt the join directly; on failure, *lift* the program
//! by adding auxiliary accumulators and retry. Auxiliaries come from two
//! sources, in order:
//!
//! 1. the normalization-driven [discovery](crate::discovery) algorithm
//!    (§8.1–8.2), and
//! 2. a catalog of standard accumulators within the Corollary-6.3 space
//!    budget — running extrema of scalar state, last-element snapshots,
//!    and (for array-shaped state, `k = 2`) elementwise zip extrema like
//!    `max_rec[]` of Figure 5(c).
//!
//! After a join is found, auxiliaries the join does not (transitively)
//! need for the returned variables are pruned, and the pruned join is
//! re-verified.

use crate::augment::{
    add_state_var, append_to_outer_body, insert_after_assignments, remove_assignments,
    remove_state_var,
};
use crate::discovery::{discover_with_deadline, AuxSpec};
use parsynt_lang::analysis::analyze;
use parsynt_lang::ast::{BinOp, Expr, LValue, Program, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::Ty;
use parsynt_synth::examples::{join_examples, InputProfile};
use parsynt_synth::join::{apply_join, synthesize_join, JoinVocab, SynthesizedJoin};
use parsynt_synth::report::SynthConfig;
use parsynt_trace as trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Duration;

/// Outcome of the homomorphism-lift phase.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Success carries the whole program by design
pub enum HomLiftOutcome {
    /// A join was synthesized (after `rounds` lifting rounds).
    Success {
        /// The (possibly lifted, then pruned) program.
        program: Program,
        /// The synthesized join for it.
        join: SynthesizedJoin,
        /// The join vocabulary matching `program`.
        vocab: JoinVocab,
        /// Names of auxiliary accumulators retained after pruning.
        aux: Vec<String>,
        /// Total join-synthesis time across all rounds (Table 1's
        /// "join synthesis time").
        join_time: Duration,
        /// Time spent in normalization-driven discovery.
        lift_time: Duration,
        /// Number of lifting rounds used (0 = no lift needed).
        rounds: usize,
    },
    /// No efficient lifting was found (Theorem 6.4 permits this): the
    /// loop cannot be parallelized divide-and-conquer style within the
    /// complexity budget.
    Failure {
        /// Total join-synthesis time spent before giving up.
        join_time: Duration,
        /// The state variable that resisted synthesis in the last round.
        failed_var: Option<String>,
        /// Whether the failure was caused by the synthesis deadline
        /// expiring rather than search-space exhaustion.
        timed_out: bool,
        /// Total candidates screened across all rounds before giving up.
        candidates: usize,
    },
}

impl HomLiftOutcome {
    /// Whether a join was found.
    pub fn is_success(&self) -> bool {
        matches!(self, HomLiftOutcome::Success { .. })
    }
}

/// Run the homomorphism lift on a (memoryless) program.
///
/// # Errors
///
/// Propagates interpreter errors; an unliftable program is a
/// [`HomLiftOutcome::Failure`], not an error.
pub fn homomorphism_lift(
    program: &Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<HomLiftOutcome> {
    let mut phase_span = trace::span("join_search", "homomorphism_lift");
    let mut join_time = Duration::ZERO;
    let mut lift_time = Duration::ZERO;
    let mut current = program.clone();
    let mut added: Vec<Sym> = Vec::new();
    let mut last_failed: Option<String> = None;
    let mut candidates = 0usize;

    for round in 0..4 {
        if cfg.deadline.is_expired() {
            phase_span.record("failed", true);
            phase_span.record("timed_out", true);
            return Ok(HomLiftOutcome::Failure {
                join_time,
                failed_var: last_failed,
                timed_out: true,
                candidates,
            });
        }
        trace::point(
            "lift",
            "round",
            &[("round", round.into()), ("aux_so_far", added.len().into())],
        );
        let mut attempt = current.clone();
        let (result, vocab) = synthesize_join(&mut attempt, profile, cfg)?;
        join_time += result.elapsed;
        candidates += result.stats.iter().map(|s| s.tries).sum::<usize>();
        if let Some(join) = result.join {
            let (pruned_program, pruned_join, pruned_vocab, kept) =
                prune_dead_aux(&attempt, &join, &vocab, &added, profile, cfg)?;
            phase_span.record("rounds", round);
            phase_span.record("aux_kept", kept.len());
            return Ok(HomLiftOutcome::Success {
                aux: kept,
                program: pruned_program,
                join: pruned_join,
                vocab: pruned_vocab,
                join_time,
                lift_time,
                rounds: round,
            });
        }
        last_failed = result.failed_var;
        if result.timed_out {
            // The deadline expired mid-synthesis; lifting further rounds
            // would only time out again.
            phase_span.record("failed", true);
            phase_span.record("timed_out", true);
            return Ok(HomLiftOutcome::Failure {
                join_time,
                failed_var: last_failed,
                timed_out: true,
                candidates,
            });
        }

        // Lift and retry.
        let (new_aux, source) = match round {
            0 => {
                let found = discover_with_deadline(&current, &cfg.deadline);
                lift_time += found.elapsed;
                (add_discovered(&mut current, &found.specs)?, "discovery")
            }
            1 => (add_scalar_catalog(&mut current)?, "scalar_catalog"),
            2 => (add_array_catalog(&mut current)?, "array_catalog"),
            _ => (Vec::new(), "none"),
        };
        if trace::enabled() {
            for &sym in &new_aux {
                trace::point(
                    "lift",
                    "aux_discovered",
                    &[("var", current.name(sym).into()), ("source", source.into())],
                );
            }
        }
        if new_aux.is_empty() && round < 3 {
            continue;
        }
        added.extend(new_aux);
    }

    phase_span.record("failed", true);
    Ok(HomLiftOutcome::Failure {
        join_time,
        failed_var: last_failed,
        timed_out: cfg.deadline.is_expired(),
        candidates,
    })
}

/// Materialize discovered accumulators as state variables with update
/// statements at the end of the outer body.
fn add_discovered(program: &mut Program, specs: &[AuxSpec]) -> Result<Vec<Sym>> {
    let mut added = Vec::new();
    for spec in specs {
        let sym = add_state_var(program, &spec.hint, Ty::Int, spec.init.clone());
        let value = match spec.op {
            Some(op) => Expr::bin(op, Expr::var(sym), spec.contribution.clone()),
            None => spec.contribution.clone(),
        };
        append_to_outer_body(
            program,
            Stmt::Assign {
                target: LValue::var(sym),
                value,
            },
        )?;
        added.push(sym);
    }
    Ok(added)
}

/// Catalog round 1: running max/min of every scalar integer state
/// variable (the prefix-extremum shape; e.g. the max-prefix-sum that
/// lifts max top strip).
fn add_scalar_catalog(program: &mut Program) -> Result<Vec<Sym>> {
    let scalars: Vec<(Sym, String)> = program
        .state
        .iter()
        .filter(|d| d.ty == Ty::Int)
        .map(|d| (d.name, program.name(d.name).to_owned()))
        .collect();
    let mut added = Vec::new();
    for (watched, name) in scalars {
        for (tag, op) in [("pmax", BinOp::Max), ("pmin", BinOp::Min)] {
            let sym = add_state_var(program, &format!("{name}_{tag}"), Ty::Int, Expr::int(0));
            append_to_outer_body(
                program,
                Stmt::Assign {
                    target: LValue::var(sym),
                    value: Expr::bin(op, Expr::var(sym), Expr::var(watched)),
                },
            )?;
            added.push(sym);
        }
    }
    Ok(added)
}

/// Catalog round 2 (array-shaped state, `k = 2`): elementwise running
/// extrema `aux[j] = max(aux[j], w[j])` inserted right after each update
/// of `w[j]` — exactly the `max_rec[]` lifting of §2.2 / Figure 5(c).
fn add_array_catalog(program: &mut Program) -> Result<Vec<Sym>> {
    let arrays: Vec<(Sym, Ty, Expr, String)> = program
        .state
        .iter()
        .filter(|d| d.ty == Ty::seq(Ty::Int))
        .map(|d| {
            (
                d.name,
                d.ty.clone(),
                d.init.clone(),
                program.name(d.name).to_owned(),
            )
        })
        .collect();
    let mut added = Vec::new();
    for (watched, ty, init, name) in arrays {
        for (tag, op) in [("zmax", BinOp::Max), ("zmin", BinOp::Min)] {
            let sym = add_state_var(program, &format!("{name}_{tag}"), ty.clone(), init.clone());
            let inserted = insert_after_assignments(&mut program.body, watched, &|lv| {
                let idx = lv.indices.first().cloned().unwrap_or(Expr::int(0));
                Stmt::Assign {
                    target: LValue::indexed(sym, idx.clone()),
                    value: Expr::bin(
                        op,
                        Expr::index(Expr::var(sym), idx.clone()),
                        Expr::index(Expr::var(watched), idx),
                    ),
                }
            });
            if inserted == 0 {
                remove_state_var(program, sym);
            } else {
                added.push(sym);
            }
        }
    }
    Ok(added)
}

/// Remove auxiliary variables the join does not (transitively) need to
/// reconstruct the returned variables, then re-verify the pruned join.
fn prune_dead_aux(
    program: &Program,
    join: &SynthesizedJoin,
    vocab: &JoinVocab,
    added: &[Sym],
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<(Program, SynthesizedJoin, JoinVocab, Vec<String>)> {
    if added.is_empty() {
        return Ok((program.clone(), join.clone(), vocab.clone(), Vec::new()));
    }
    // Map any vocabulary symbol back to its state variable.
    let var_of = |s: Sym| -> Option<Sym> {
        vocab
            .vars
            .iter()
            .find(|v| v.sym == s || v.l == s || v.r == s)
            .map(|v| v.sym)
    };
    // Liveness fixpoint over the join statements AND the lifted
    // program's own updates: a live variable's program update may read
    // another auxiliary (e.g. a prefix-max reading the sum it tracks),
    // which must then survive pruning too.
    let mut live: BTreeSet<Sym> = program.returns.iter().copied().collect();
    loop {
        let before = live.len();
        for stmt in &join.stmts {
            mark_live(stmt, &var_of, &mut live);
        }
        for stmt in &program.body {
            stmt.walk(&mut |st| {
                if let Stmt::Assign { target, value } = st {
                    if live.contains(&target.base) {
                        for v in value.vars() {
                            if program.is_state(v) {
                                live.insert(v);
                            }
                        }
                    }
                }
            });
        }
        if live.len() == before {
            break;
        }
    }

    let dead: Vec<Sym> = added
        .iter()
        .copied()
        .filter(|s| !live.contains(s))
        .collect();
    let kept: Vec<String> = added
        .iter()
        .filter(|s| live.contains(s))
        .map(|s| program.name(*s).to_owned())
        .collect();
    if dead.is_empty() {
        return Ok((program.clone(), join.clone(), vocab.clone(), kept));
    }

    let mut pruned = program.clone();
    for &sym in &dead {
        remove_assignments(&mut pruned.body, sym);
        remove_state_var(&mut pruned, sym);
    }
    let mut join_stmts = join.stmts.clone();
    for &sym in &dead {
        remove_assignments(&mut join_stmts, sym);
    }
    let pruned_vocab = JoinVocab {
        vars: vocab
            .vars
            .iter()
            .filter(|v| !dead.contains(&v.sym))
            .cloned()
            .collect(),
        loop_var: vocab.loop_var,
    };
    let pruned_join = SynthesizedJoin { stmts: join_stmts };

    // Re-verify the pruned join.
    trace::point("lift", "aux_pruned", &[("count", dead.len().into())]);
    let mut verify_span = trace::span("verify", "pruned_join_check");
    verify_span.record("examples", 40usize);
    let f = RightwardFn::new(&pruned)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(7));
    let examples = join_examples(&f, profile, &mut rng, 40)?;
    for ex in &examples {
        let got = apply_join(&pruned, &pruned_vocab, &pruned_join, &ex.left, &ex.right)?;
        if got != ex.whole {
            return Err(LangError::eval(
                "pruning broke the join (an auxiliary was live after all)",
            ));
        }
    }
    // Sanity: the pruned program still analyzes cleanly.
    let _ = analyze(&pruned);
    Ok((pruned, pruned_join, pruned_vocab, kept))
}

fn mark_live(stmt: &Stmt, var_of: &dyn Fn(Sym) -> Option<Sym>, live: &mut BTreeSet<Sym>) {
    match stmt {
        Stmt::Assign { target, value } => {
            let target_var = var_of(target.base).unwrap_or(target.base);
            if live.contains(&target_var) {
                for v in value.vars() {
                    if let Some(sv) = var_of(v) {
                        live.insert(sv);
                    }
                }
                for idx in &target.indices {
                    for v in idx.vars() {
                        if let Some(sv) = var_of(v) {
                            live.insert(sv);
                        }
                    }
                }
            }
        }
        Stmt::Let { init, .. } => {
            for v in init.vars() {
                if let Some(sv) = var_of(v) {
                    live.insert(sv);
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            for v in cond.vars() {
                if let Some(sv) = var_of(v) {
                    live.insert(sv);
                }
            }
            for s in then_branch.iter().chain(else_branch) {
                mark_live(s, var_of, live);
            }
        }
        Stmt::For { body, .. } => {
            for s in body {
                mark_live(s, var_of, live);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::interp::run_program;
    use parsynt_lang::{parse, Value};

    #[test]
    fn mbs_1d_lifts_with_sum_and_joins() {
        // max bottom strip (1-D Kadane suffix): needs aux_sum; the join
        // is m = max(m_r, m_l + sum_r).
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }\n\
             return m;",
        )
        .unwrap();
        let out = homomorphism_lift(&p, &InputProfile::default(), &SynthConfig::default()).unwrap();
        let HomLiftOutcome::Success {
            program,
            join,
            vocab,
            aux,
            rounds,
            ..
        } = out
        else {
            panic!("mbs must lift");
        };
        assert_eq!(rounds, 1, "one discovery round should suffice");
        assert_eq!(aux.len(), 1, "exactly the sum accumulator: {aux:?}");
        // End-to-end: join(h(x), h(y)) == h(x•y) on a fixed input.
        let f = RightwardFn::new(&program).unwrap();
        let input = Value::seq_of_ints(&[3, -5, 4, -1, 2, -7, 6]);
        let whole = f.apply(std::slice::from_ref(&input)).unwrap();
        let l = f.apply_slice(std::slice::from_ref(&input), 0, 3).unwrap();
        let r = f.apply_slice(&[input], 3, 7).unwrap();
        let joined = apply_join(&program, &vocab, &join, &l, &r).unwrap();
        assert_eq!(joined, whole);
    }

    #[test]
    fn already_homomorphic_sum_needs_no_lift() {
        let p = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; } return s;",
        )
        .unwrap();
        let out = homomorphism_lift(&p, &InputProfile::default(), &SynthConfig::default()).unwrap();
        let HomLiftOutcome::Success { aux, rounds, .. } = out else {
            panic!("sum joins directly");
        };
        assert_eq!(rounds, 0);
        assert!(aux.is_empty());
    }

    #[test]
    fn pruning_keeps_program_semantics() {
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }\n\
             return m;",
        )
        .unwrap();
        let out = homomorphism_lift(&p, &InputProfile::default(), &SynthConfig::default()).unwrap();
        let HomLiftOutcome::Success { program, .. } = out else {
            panic!()
        };
        let input = Value::seq_of_ints(&[1, -2, 3, 4, -1]);
        let a = run_program(&p, std::slice::from_ref(&input)).unwrap();
        let b = run_program(&program, &[input]).unwrap();
        assert_eq!(a.scalar_named(&p, "m"), b.scalar_named(&program, "m"));
    }
}
