//! # parsynt-lift
//!
//! Automatic lifting (§5 and §8 of *Modular Divide-and-Conquer
//! Parallelization of Nested Loops*): when a loop nest is not memoryless
//! (no merge `⊚` exists) or its summarized form is not a homomorphism
//! (no join `⊙` exists), the program must be *lifted* — extended with
//! auxiliary computation — until the operators exist.
//!
//! * [`augment`] — program-transformation utilities (declaring auxiliary
//!   state, inserting accumulator updates, renaming).
//! * [`memoryless`] — the memoryless lift and the memoryless-normal-form
//!   transformation (Figure 4's rewrite of balanced parentheses), module
//!   (IV) of Figure 7.
//! * [`discovery`] — normalization-driven auxiliary discovery: unfold
//!   the summarized loop symbolically, rewrite to (constant or
//!   ⊳-recursive) normal form, extract the input-only subexpressions,
//!   and recover their recursive computation (§8.1–8.2).
//! * [`homomorphism`] — the homomorphism lift, module (III): iterate
//!   discovery + a catalog of standard accumulators, re-running join
//!   synthesis, then prune auxiliaries the final join does not use.
//! * [`trivial`] — the always-admissible lifts of Props. 5.2 and 5.4
//!   (remember the whole input / the last line), as executable
//!   constructions.

pub mod augment;
pub mod discovery;
pub mod homomorphism;
pub mod memoryless;
pub mod trivial;

pub use homomorphism::{homomorphism_lift, HomLiftOutcome};
pub use memoryless::{memoryless_lift, memoryless_transform, MemorylessOutcome};
