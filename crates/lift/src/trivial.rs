//! The *trivial* (always-admissible) lifts of §5: Prop. 5.2's
//! homomorphism lift `f × ι` (remember the whole input) and Prop. 5.4's
//! default memoryless lift `f × ι′` (remember the last line).
//!
//! Neither yields real parallelism — the paper introduces them to prove
//! every function *can* be lifted, setting up the efficiency budget of
//! §6 that the algorithmic lifts must beat. They are implemented here as
//! executable constructions so the theory is testable: the trivial join
//! literally re-runs the loop over the remembered input.

use parsynt_lang::ast::Program;
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::{run_program, run_program_from, StateVec};
use parsynt_lang::Value;

/// The Prop. 5.2 lift of a program: the lifted state is
/// `(D, S^n)` — the computed state *plus the entire input seen so far*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriviallyLifted {
    /// The original state component.
    pub state: StateVec,
    /// The remembered input (the `ι` component).
    pub input: Value,
}

/// Run a program on `input`, producing the trivially lifted result.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn apply_trivial(program: &Program, input: &Value) -> Result<TriviallyLifted> {
    let state = run_program(program, std::slice::from_ref(input))?;
    Ok(TriviallyLifted {
        state,
        input: input.clone(),
    })
}

/// The Prop. 5.2 join: `⊙` ignores the left partial result and re-runs
/// the loop over the concatenated inputs from scratch — associative by
/// construction, but "analogous to a sequential computation".
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn trivial_join(
    program: &Program,
    left: &TriviallyLifted,
    right: &TriviallyLifted,
) -> Result<TriviallyLifted> {
    let input = left.input.concat(&right.input);
    // Re-running only the right part from the left state is the small
    // optimization the construction permits (the left state is a valid
    // prefix summary by the rightward property).
    let state = run_program_from(program, std::slice::from_ref(&right.input), &left.state)?;
    Ok(TriviallyLifted { state, input })
}

/// The Prop. 5.4 default memoryless lift: the merge `⊚` re-processes the
/// remembered last line `δ` from the current state — no inner-loop
/// parallelism is gained, but the construction always exists and
/// preserves the time complexity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultMemoryless {
    /// The computed state.
    pub state: StateVec,
    /// The remembered last line (`ι′(σ • [δ]) = δ`).
    pub last_line: Option<Value>,
}

/// Fold one row with the default memoryless lift: remember `δ` and
/// replay the full outer step sequentially.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn default_memoryless_step(
    f: &RightwardFn<'_>,
    inputs: &[Value],
    i: usize,
    acc: &DefaultMemoryless,
) -> Result<DefaultMemoryless> {
    let state = f.outer_step(inputs, i, &acc.state)?;
    let main = inputs
        .get(f.main_input())
        .and_then(|v| v.as_seq())
        .ok_or_else(|| LangError::eval("missing main input"))?;
    let last_line = main.get(i).cloned();
    Ok(DefaultMemoryless { state, last_line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::interp::{init_env, read_state};
    use parsynt_lang::parse;

    /// mbbs: not a homomorphism, yet the trivial lift joins correctly.
    #[test]
    fn trivial_lift_makes_mbbs_joinable() {
        let p = parse(
            "input a : seq<seq<int>>; state m : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               m = max(m + row, 0);\n\
             }",
        )
        .unwrap();
        // The introduction's counterexample pair: same h(b'), different
        // h(b • b') — the trivial lift distinguishes them via ι.
        let b = Value::seq2_of_ints(&[vec![5]]);
        let b1 = Value::seq2_of_ints(&[vec![-3], vec![3]]);
        let b2 = Value::seq2_of_ints(&[vec![0], vec![3]]);
        let hb = apply_trivial(&p, &b).unwrap();
        let h1 = apply_trivial(&p, &b1).unwrap();
        let h2 = apply_trivial(&p, &b2).unwrap();
        assert_eq!(h1.state, h2.state, "mbbs(b') agrees — the paper's setup");
        let j1 = trivial_join(&p, &hb, &h1).unwrap();
        let j2 = trivial_join(&p, &hb, &h2).unwrap();
        assert_ne!(j1.state, j2.state, "the lifted join distinguishes them");
        // And each equals the from-scratch run on the concatenation.
        let whole1 = apply_trivial(&p, &b.concat(&b1)).unwrap();
        assert_eq!(j1.state, whole1.state);
        assert_eq!(j1.input, whole1.input);
    }

    #[test]
    fn trivial_join_is_associative_on_samples() {
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); }",
        )
        .unwrap();
        let x = apply_trivial(&p, &Value::seq_of_ints(&[3, -2])).unwrap();
        let y = apply_trivial(&p, &Value::seq_of_ints(&[5])).unwrap();
        let z = apply_trivial(&p, &Value::seq_of_ints(&[-1, 4])).unwrap();
        let left_first = trivial_join(&p, &trivial_join(&p, &x, &y).unwrap(), &z).unwrap();
        let right_first = trivial_join(&p, &x, &trivial_join(&p, &y, &z).unwrap()).unwrap();
        assert_eq!(left_first, right_first);
    }

    #[test]
    fn default_memoryless_fold_replays_the_loop() {
        let p = parse(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state bal : bool = true;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + a[i][j];\n\
                 if (offset + lo < 0) { bal = false; }\n\
               }\n\
               offset = offset + lo;\n\
             }",
        )
        .unwrap();
        let f = RightwardFn::new(&p).unwrap();
        let input = Value::seq2_of_ints(&[vec![1, 1], vec![-3], vec![2]]);
        let inputs = vec![input.clone()];
        let env = init_env(&p, &inputs).unwrap();
        let mut acc = DefaultMemoryless {
            state: read_state(&p, &env).unwrap(),
            last_line: None,
        };
        for i in 0..3 {
            acc = default_memoryless_step(&f, &inputs, i, &acc).unwrap();
        }
        let whole = run_program(&p, &inputs).unwrap();
        assert_eq!(acc.state, whole);
        // ι′ remembers exactly the last line.
        assert_eq!(acc.last_line, Some(Value::seq_of_ints(&[2])));
    }
}
