//! The memoryless lift (module IV of Figure 7, §5.2–5.3) and the
//! memoryless-normal-form transformation.
//!
//! A loop nest is memoryless when every instance of its inner loop nest
//! computes the same function from the fixed initial state `0̸`
//! (Definition 4.2). When it is not, we
//!
//! 1. try to synthesize the merge `⊚` directly (Prop. 7.2 reduces this
//!    to join synthesis);
//! 2. on failure, *lift*: add auxiliary inner accumulators (running
//!    min/max of the existing inner scalars — the shape the normal-form
//!    analysis of §8 produces for threshold guards like balanced
//!    parentheses) and retry;
//! 3. once a merge exists, rewrite the program into *memoryless normal
//!    form*: the inner nest runs from `0̸` into fresh locals, and the
//!    merge folds the result into the outer state (Figure 4).

use crate::augment::{assigns_to, insert_after_assignments, substitute_stmt};
use parsynt_lang::ast::{Expr, LValue, Program, Stmt, Sym};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::run_program;
use parsynt_lang::{Ty, Value};
use parsynt_synth::examples::{random_inputs, InputProfile};
use parsynt_synth::merge::{synthesize_merge, MergeVocab, SynthesizedMerge};
use parsynt_synth::report::SynthConfig;
use parsynt_trace as trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

/// Result of the memoryless phase of the pipeline.
#[derive(Debug, Clone)]
pub struct MemorylessOutcome {
    /// The memoryless program (transformed when a merge was needed).
    pub program: Program,
    /// Names of auxiliary inner accumulators added by the lift.
    pub aux_added: Vec<String>,
    /// Total time spent in merge synthesis (the paper's
    /// "summarization time" column of Table 1).
    pub summarization_time: Duration,
    /// Whether the loop was already (syntactically) memoryless.
    pub already_memoryless: bool,
    /// Whether the memoryless lift failed and the *default* lift of
    /// Prop. 5.4 would be required (the inner nest stays sequential).
    pub failed: bool,
    /// Whether a failure was caused by the synthesis deadline expiring
    /// rather than exhausting the lift catalog.
    pub timed_out: bool,
    /// Total candidates screened across all merge-synthesis rounds.
    pub candidates: usize,
}

/// Run the memoryless phase on `program`.
///
/// # Errors
///
/// Propagates interpreter errors from example generation or the
/// correctness cross-check of the transformation.
pub fn memoryless_lift(
    program: &Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<MemorylessOutcome> {
    let mut phase_span = trace::span("summarize", "memoryless_lift");
    let analysis = parsynt_lang::analysis::analyze(program);
    if analysis.is_syntactically_memoryless() {
        phase_span.record("already_memoryless", true);
        return Ok(MemorylessOutcome {
            program: program.clone(),
            aux_added: Vec::new(),
            summarization_time: Duration::ZERO,
            already_memoryless: true,
            failed: false,
            timed_out: false,
            candidates: 0,
        });
    }

    let mut total = Duration::ZERO;
    let mut aux_added: Vec<String> = Vec::new();
    let mut candidates = 0usize;

    // Round 0: direct merge synthesis on the original program.
    trace::point("summarize", "merge_attempt", &[("batch", "none".into())]);
    let mut attempt = program.clone();
    let (result, vocab) = synthesize_merge(&mut attempt, profile, cfg)?;
    total += result.elapsed;
    candidates += result.stats.iter().map(|s| s.tries).sum::<usize>();
    if let Some(merge) = result.merge {
        let transformed = memoryless_transform(&attempt, &vocab, &merge)?;
        cross_check(program, &transformed, profile, cfg)?;
        return Ok(MemorylessOutcome {
            program: transformed,
            aux_added,
            summarization_time: total,
            already_memoryless: false,
            failed: false,
            timed_out: false,
            candidates,
        });
    }
    if result.timed_out {
        phase_span.record("failed", true);
        phase_span.record("timed_out", true);
        return Ok(MemorylessOutcome {
            program: program.clone(),
            aux_added: Vec::new(),
            summarization_time: total,
            already_memoryless: false,
            failed: true,
            timed_out: true,
            candidates,
        });
    }

    // Lift rounds: add running min/max accumulators over inner scalar
    // accumulators, one batch at a time, and retry.
    for batch in [AuxBatch::Min, AuxBatch::Max, AuxBatch::MinAndMax] {
        if cfg.deadline.is_expired() {
            phase_span.record("failed", true);
            phase_span.record("timed_out", true);
            return Ok(MemorylessOutcome {
                program: program.clone(),
                aux_added: Vec::new(),
                summarization_time: total,
                already_memoryless: false,
                failed: true,
                timed_out: true,
                candidates,
            });
        }
        let mut lifted = program.clone();
        let added = add_inner_extrema(&mut lifted, batch)?;
        if added.is_empty() {
            continue;
        }
        trace::point(
            "summarize",
            "merge_attempt",
            &[
                ("batch", format!("{batch:?}").into()),
                ("aux_candidates", added.len().into()),
            ],
        );
        let mut attempt = lifted.clone();
        let (result, vocab) = synthesize_merge(&mut attempt, profile, cfg)?;
        total += result.elapsed;
        candidates += result.stats.iter().map(|s| s.tries).sum::<usize>();
        if let Some(merge) = result.merge {
            aux_added = added;
            for name in &aux_added {
                trace::point(
                    "lift",
                    "aux_discovered",
                    &[
                        ("var", name.as_str().into()),
                        ("source", "memoryless".into()),
                    ],
                );
            }
            let transformed = memoryless_transform(&attempt, &vocab, &merge)?;
            cross_check(program, &transformed, profile, cfg)?;
            phase_span.record("aux_added", aux_added.len());
            return Ok(MemorylessOutcome {
                program: transformed,
                aux_added,
                summarization_time: total,
                already_memoryless: false,
                failed: false,
                timed_out: false,
                candidates,
            });
        }
        if result.timed_out {
            break;
        }
    }

    // All lifts failed: fall back to the default memoryless lift of
    // Prop. 5.4 (remember the last row; practically: the loop nest stays
    // as-is and only coarser parallelism is available).
    phase_span.record("failed", true);
    Ok(MemorylessOutcome {
        program: program.clone(),
        aux_added: Vec::new(),
        summarization_time: total,
        already_memoryless: false,
        failed: true,
        timed_out: cfg.deadline.is_expired(),
        candidates,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AuxBatch {
    Min,
    Max,
    MinAndMax,
}

/// Add running-extremum accumulators for every scalar integer inner
/// accumulator updated inside the inner loop nest. Returns the names of
/// the accumulators added.
fn add_inner_extrema(program: &mut Program, batch: AuxBatch) -> Result<Vec<String>> {
    let inner_vars: Vec<(Sym, Ty)> = {
        let f = RightwardFn::new(program)?;
        f.inner_vars().to_vec()
    };
    let mut added = Vec::new();
    let pos = program
        .body
        .iter()
        .position(|s| matches!(s, Stmt::For { .. }))
        .ok_or_else(|| LangError::ty("program has no outer loop"))?;
    for (sym, ty) in inner_vars {
        if ty != Ty::Int {
            continue;
        }
        // Only lift accumulators that the inner *loops* update (a let
        // updated only outside loops carries no per-element history).
        let Stmt::For { body, .. } = &program.body[pos] else {
            unreachable!()
        };
        let updated_in_loop = body.iter().any(|s| {
            matches!(s, Stmt::For { .. }) && {
                let mut found = false;
                s.walk(&mut |st| {
                    if let Stmt::Assign { target, .. } = st {
                        if target.base == sym {
                            found = true;
                        }
                    }
                });
                found
            }
        });
        if !updated_in_loop {
            continue;
        }
        let name = program.name(sym).to_owned();
        let mut ops: Vec<(&str, parsynt_lang::ast::BinOp)> = Vec::new();
        if matches!(batch, AuxBatch::Min | AuxBatch::MinAndMax) {
            ops.push(("min", parsynt_lang::ast::BinOp::Min));
        }
        if matches!(batch, AuxBatch::Max | AuxBatch::MinAndMax) {
            ops.push(("max", parsynt_lang::ast::BinOp::Max));
        }
        for (tag, op) in ops {
            let aux = program.interner.fresh(&format!("{name}_{tag}"));
            let Stmt::For { body, .. } = &mut program.body[pos] else {
                unreachable!()
            };
            // Declare next to the tracked accumulator, then update after
            // each of its assignments.
            let decl_pos = body
                .iter()
                .position(|s| matches!(s, Stmt::Let { name: n, .. } if *n == sym))
                .map(|p| p + 1)
                .unwrap_or(0);
            body.insert(
                decl_pos,
                Stmt::Let {
                    name: aux,
                    ty: Ty::Int,
                    init: Expr::int(0),
                },
            );
            let inserted = insert_after_assignments(body, sym, &|_| Stmt::Assign {
                target: LValue::var(aux),
                value: Expr::bin(op, Expr::var(aux), Expr::var(sym)),
            });
            if inserted == 0 {
                // Nothing to track; undo the declaration.
                let Stmt::For { body, .. } = &mut program.body[pos] else {
                    unreachable!()
                };
                body.remove(decl_pos);
                continue;
            }
            added.push(program.name(aux).to_owned());
        }
    }
    Ok(added)
}

/// Rewrite a program (with a synthesized merge) into memoryless normal
/// form:
///
/// ```text
/// for i in 0..n {
///   <inner phase from 0̸ into fresh locals>   // the parallel map
///   <snapshots of old state>                  // w__d = w
///   <merge ⊚ statements>                      // sequential combine
/// }
/// ```
///
/// # Errors
///
/// Fails if the program has no outer loop.
pub fn memoryless_transform(
    program: &Program,
    vocab: &MergeVocab,
    merge: &SynthesizedMerge,
) -> Result<Program> {
    let mut out = program.clone();
    let (inner_phase, loop_var, bound) = {
        let f = RightwardFn::new(program)?;
        let Some((_, Stmt::For { var, bound, .. }, _)) = program.outer_loop() else {
            return Err(LangError::ty("program has no outer loop"));
        };
        (f.inner_phase().to_vec(), *var, bound.clone())
    };

    // 1. Zero-variant inner phase: state variables written inside the
    //    inner phase are redirected into fresh locals initialized from
    //    the declared initial state; state variables merely *read* are
    //    replaced by their initial value (the `0 + line_offset` of
    //    Figure 4).
    let mut new_body: Vec<Stmt> = Vec::new();
    let mut zero_phase = inner_phase.clone();
    for decl in &program.state {
        let written = assigns_to(&inner_phase, decl.name);
        if written {
            // Redirect to the `__t` local from the merge vocabulary.
            let t_sym = vocab
                .inner
                .iter()
                .find(|iv| iv.orig == decl.name)
                .map(|iv| iv.t)
                .ok_or_else(|| LangError::ty("missing merge slot for written state"))?;
            zero_phase = zero_phase
                .iter()
                .map(|s| substitute_stmt(s, decl.name, &Expr::var(t_sym)))
                .collect();
            new_body.push(Stmt::Let {
                name: t_sym,
                ty: decl.ty.clone(),
                init: decl.init.clone(),
            });
        } else if inner_phase.iter().any(|s| {
            let mut reads = false;
            s.walk(&mut |st| {
                let mentions = match st {
                    Stmt::Let { init, .. } => init.mentions(decl.name),
                    Stmt::Assign { target, value } => {
                        value.mentions(decl.name)
                            || target.indices.iter().any(|e| e.mentions(decl.name))
                    }
                    Stmt::If { cond, .. } => cond.mentions(decl.name),
                    Stmt::For { bound, .. } => bound.mentions(decl.name),
                };
                reads |= mentions;
            });
            reads
        }) {
            zero_phase = zero_phase
                .iter()
                .map(|s| substitute_stmt(s, decl.name, &decl.init))
                .collect();
        }
    }
    new_body.extend(zero_phase);
    let inner_phase_end = new_body.len();

    // 2. Rename `__t` slots of plain inner accumulators (lets) back to
    //    the original local names in the merge statements, and snapshot
    //    old state for the `__d` symbols the merge reads.
    let mut merge_stmts = merge.stmts.clone();
    for iv in &vocab.inner {
        if !program.is_state(iv.orig) {
            merge_stmts = merge_stmts
                .iter()
                .map(|s| substitute_stmt(s, iv.t, &Expr::var(iv.orig)))
                .collect();
        }
    }
    for v in &vocab.vars {
        let used = merge_stmts.iter().any(|s| {
            let mut found = false;
            s.walk(&mut |st| match st {
                Stmt::Let { init, .. } => found |= init.mentions(v.old),
                Stmt::Assign { target, value } => {
                    found |=
                        value.mentions(v.old) || target.indices.iter().any(|e| e.mentions(v.old));
                }
                Stmt::If { cond, .. } => found |= cond.mentions(v.old),
                Stmt::For { bound, .. } => found |= bound.mentions(v.old),
            });
            found
        });
        if used {
            new_body.push(Stmt::Let {
                name: v.old,
                ty: v.ty.clone(),
                init: Expr::var(v.sym),
            });
        }
    }
    new_body.extend(merge_stmts);

    // 3. Install the new outer body, recording where the sequential
    //    combine begins so analysis treats the merge loop as the outer
    //    phase rather than an inner nest.
    let pos = out
        .body
        .iter()
        .position(|s| matches!(s, Stmt::For { .. }))
        .ok_or_else(|| LangError::ty("program has no outer loop"))?;
    out.body[pos] = Stmt::For {
        var: loop_var,
        bound,
        body: new_body,
    };
    out.summarize_split = Some(inner_phase_end);
    Ok(out)
}

/// Cross-check that a transformed program is observationally equal to
/// the original on random inputs (a guard against unsound merges that
/// slipped past bounded verification).
fn cross_check(
    original: &Program,
    transformed: &Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<()> {
    let mut verify_span = trace::span("verify", "memoryless_cross_check");
    verify_span.record("examples", 40usize);
    let f = RightwardFn::new(original)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(99));
    for _ in 0..40 {
        let inputs: Vec<Value> = random_inputs(&f, profile, &mut rng);
        let a = run_program(original, &inputs)?.project_returns(original);
        let b = run_program(transformed, &inputs)?.project_returns(original);
        if a != b {
            return Err(LangError::eval(
                "memoryless transformation changed program semantics",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::analysis::analyze;
    use parsynt_lang::parse;

    const BP_SRC: &str = "input a : seq<seq<int>>;\n\
        state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
        for i in 0 .. len(a) {\n\
          let lo : int = 0;\n\
          for j in 0 .. len(a[i]) {\n\
            lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
            if (offset + lo < 0) { bal = false; }\n\
          }\n\
          offset = offset + lo;\n\
          if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
        }\n\
        return cnt;";

    #[test]
    fn already_memoryless_is_identity() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let row : int = 0;\n\
               for j in 0 .. len(a[i]) { row = row + a[i][j]; }\n\
               s = max(s + row, 0);\n\
             }",
        )
        .unwrap();
        let out = memoryless_lift(&p, &InputProfile::default(), &SynthConfig::default()).unwrap();
        assert!(out.already_memoryless);
        assert!(out.aux_added.is_empty());
        assert_eq!(out.program, p);
    }

    #[test]
    fn balanced_parentheses_lifts_with_min_accumulator() {
        // The paper's flagship memoryless lift (§2.1 / Figure 4): the
        // minimum of line_offset must be tracked to recover `bal`.
        let p = parse(BP_SRC).unwrap();
        let profile = InputProfile::default().with_choices(&[-1, 1]);
        let out = memoryless_lift(&p, &profile, &SynthConfig::default()).unwrap();
        assert!(!out.failed, "bp must lift");
        assert!(!out.already_memoryless);
        assert_eq!(
            out.aux_added.len(),
            1,
            "exactly the min accumulator: {:?}",
            out.aux_added
        );
        assert!(out.aux_added[0].contains("min"));
        // The transformed program is memoryless.
        let analysis = analyze(&out.program);
        assert!(
            analysis.is_syntactically_memoryless(),
            "transformed bp must be memoryless:\n{}",
            parsynt_lang::pretty::program_to_string(&out.program)
        );
    }

    #[test]
    fn transformed_bp_agrees_with_original_on_brackets() {
        let p = parse(BP_SRC).unwrap();
        let profile = InputProfile::default().with_choices(&[-1, 1]);
        let out = memoryless_lift(&p, &profile, &SynthConfig::default()).unwrap();
        // "(()" then ")" per row: rows = [[1,1,-1],[-1]] — balanced at end?
        // offset: row0 -> +1, row1 -> 0; prefix dips? never below 0.
        let input = Value::seq2_of_ints(&[vec![1, 1, -1], vec![-1]]);
        let a = run_program(&p, std::slice::from_ref(&input)).unwrap();
        let b = run_program(&out.program, &[input]).unwrap();
        assert_eq!(
            a.scalar_named(&p, "cnt"),
            b.scalar_named(&out.program, "cnt")
        );
    }

    #[test]
    fn mtls_transforms_to_figure_5b_shape() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }\n\
             return mtl;",
        )
        .unwrap();
        let out = memoryless_lift(&p, &InputProfile::default(), &SynthConfig::default()).unwrap();
        assert!(!out.failed);
        let analysis = analyze(&out.program);
        assert!(analysis.is_syntactically_memoryless());
        // Spot-check the semantics.
        let input = Value::seq2_of_ints(&[vec![2, -1], vec![-1, 3]]);
        let a = run_program(&p, std::slice::from_ref(&input)).unwrap();
        let b = run_program(&out.program, &[input]).unwrap();
        assert_eq!(
            a.scalar_named(&p, "mtl"),
            b.scalar_named(&out.program, "mtl")
        );
    }
}
