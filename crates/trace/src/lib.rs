//! # parsynt-trace
//!
//! A lightweight structured-event layer for observing the synthesis
//! pipeline. The hot paths of `rewrite`, `synth`, `lift`, `core` and
//! `runtime` emit [`Event`]s — phase-scoped timers ([`Span`]s),
//! counters and key-value points — into a [`TraceSink`] chosen by the
//! caller. When no sink is installed every emission is a cheap no-op
//! (one thread-local lookup, no allocation), so instrumentation can
//! live permanently in library code.
//!
//! ## Event schema
//!
//! Every event carries the same envelope, serialized as one JSON
//! object per line by [`WriterSink`]:
//!
//! | field    | type   | meaning                                              |
//! |----------|--------|------------------------------------------------------|
//! | `seq`    | u64    | monotone sequence number, unique per [`Tracer`]      |
//! | `t_us`   | u64    | microseconds since the tracer was created            |
//! | `phase`  | string | pipeline phase (see below)                           |
//! | `name`   | string | event name within the phase                          |
//! | `kind`   | string | `"span"`, `"counter"` or `"point"`                   |
//! | `dur_us` | u64    | (`span` only) wall-clock duration of the span        |
//! | `value`  | u64    | (`counter` only) amount added to `phase.name`        |
//! | `fields` | object | optional key-value payload (string/int/float/bool)   |
//!
//! Kinds:
//!
//! * **`span`** — emitted when a [`Span`] is dropped; `dur_us` is the
//!   time between construction and drop. [`PhaseAggregator`] sums span
//!   durations per `phase` to produce the `phase_timings` of a
//!   `PipelineReport`.
//! * **`counter`** — a monotone count; [`PhaseAggregator`] sums
//!   `value` per `"phase.name"` key.
//! * **`point`** — a moment-in-time observation with a payload;
//!   [`PhaseAggregator`] counts occurrences per `"phase.name"` key.
//!
//! Phases used by the pipeline (Figure 7 of the paper):
//!
//! * `analyze` — loop-nest analysis and budget inference,
//! * `summarize` — memoryless lift (merge ⊚ synthesis, aux batches),
//! * `join_search` — homomorphism lift driver (rounds, aux pruning),
//! * `lift` — auxiliary-accumulator discovery attempts,
//! * `normalize` — rewrite-rule normalization passes (rule firings),
//! * `synthesize` — CEGIS join/merge search (rounds, candidates,
//!   sketch holes, promoted verify failures),
//! * `verify` — example-based verification passes,
//! * `execute` — runtime execution (per-worker steals, chunks, joins).
//!
//! Well-known event names include `normalize/rule_fired` (counter,
//! `fields.rule`), `synthesize/cegis_round` (point, `fields.round`),
//! `synthesize/enum_candidates` / `synthesize/enum_pruned` (counters),
//! `lift/aux_discovered` (point), `execute/worker` (point,
//! `fields.steals`/`fields.chunks`) and `execute/steals` (counter).
//!
//! Parallel candidate screening (`SynthConfig::with_threads > 1`) adds:
//!
//! * `synthesize/par_screened` (counter) — total candidates screened by
//!   the worker pool;
//! * `synthesize/screen_worker` (point, `fields.worker`,
//!   `fields.screened`) — one per worker, its candidate tally;
//! * `synthesize/parallel_screen` (point, `fields.workers`,
//!   `fields.flushes`, `fields.screened`, `fields.cancel_latency_us`,
//!   `fields.winner`) — one per screened search, summarizing pool
//!   shape and the time between the first verified solution and full
//!   pool quiescence;
//! * `synthesize/eval_cache_hits` / `synthesize/eval_cache_misses`
//!   (counters) — memoized-evaluation hit rate of the hash-consed term
//!   pool (`parsynt-synth`'s `intern` module);
//! * the `synthesize/join` and `synthesize/merge` spans carry a
//!   `fields.threads` payload with the configured screening width.
//!
//! Robustness events (deadlines, panic isolation, cache bounds):
//!
//! * `schema/deadline_exceeded` (point, `fields.reason`,
//!   `fields.candidates`) — the synthesis [`Deadline`] expired and the
//!   run was converted into a typed `Unparallelizable` outcome;
//! * `execute/worker_panic` (point, `fields.chunk`, `fields.attempt`,
//!   `fields.payload`) — a worker panicked inside `catch_unwind`; the
//!   chunk is retried once on the coordinator;
//! * `execute/fallback_sequential` (point, `fields.failed_chunks`) —
//!   chunk retry also failed, so the whole plan re-ran sequentially
//!   (the report's `degraded` flag is set);
//! * `synthesize/eval_cache_evictions` (counter) — times the bounded
//!   `EvalCache` overflowed its capacity and was cleared wholesale;
//! * `synthesize/screen_panic` (counter) — candidates whose screening
//!   closure panicked (the candidate is treated as rejected).
//!
//! Streaming execution (`Executor::stream` / `run_stream_checked`):
//!
//! * `execute/interp_stream` (span) — one per interpreter-level
//!   streaming run, wrapping every chunk;
//! * `execute/stream_chunk` (point, `fields.chunk`, `fields.items`,
//!   `fields.degraded`, `fields.recovered`) — one per consumed chunk:
//!   its index, item count, and whether its parallel run degraded to
//!   (or recovered via) a chunk-local sequential re-run;
//! * `execute/stream_elements` (counter) — running total of streamed
//!   elements, for elements/sec derivation from event timestamps;
//! * `execute/stream_snapshot` (point, `fields.chunks`,
//!   `fields.elements`, `fields.elements_per_sec`) — one per emitted
//!   partial-prefix snapshot.
//!
//! ## Usage
//!
//! ```
//! use parsynt_trace::{set_ambient, CollectingSink, Tracer};
//!
//! let sink = CollectingSink::new();
//! let tracer = Tracer::from_sink(sink.clone());
//! {
//!     let _guard = set_ambient(tracer);
//!     let mut span = parsynt_trace::span("normalize", "pass");
//!     span.record("expansions", 17u64);
//!     parsynt_trace::counter("normalize", "rule_fired", 3);
//! } // guard dropped: ambient tracer uninstalled
//! assert_eq!(sink.events().len(), 2);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod deadline;
pub mod sinks;

pub use deadline::{CancelToken, Deadline};
pub use sinks::{CollectingSink, FanoutSink, NullSink, PhaseAggregator, TaggedSink, WriterSink};

/// Declarative tracing options for a pipeline run.
///
/// Consumed by `parsynt_core::PipelineConfig`: when [`jsonl_path`]
/// (TraceConfig::jsonl_path) is set, the pipeline opens a [`WriterSink`]
/// on that file and fans events out to it alongside any
/// programmatically installed sink. The default config traces nothing
/// extra (the in-memory [`PhaseAggregator`] always runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    jsonl_path: Option<std::path::PathBuf>,
}

impl TraceConfig {
    /// Write every event as one JSON object per line to `path`.
    pub fn jsonl(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.jsonl_path = Some(path.into());
        self
    }

    /// The JSONL output path, if one was configured.
    pub fn jsonl_path(&self) -> Option<&std::path::Path> {
        self.jsonl_path.as_deref()
    }

    /// Whether this config asks for any output beyond the built-in
    /// phase aggregation.
    pub fn is_enabled(&self) -> bool {
        self.jsonl_path.is_some()
    }
}

/// A typed scalar payload value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String payload.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] measures. Serialized flattened into the event
/// envelope under a `"kind"` tag (see the crate-level schema table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventKind {
    /// A completed timed region; `dur_us` is its wall-clock length.
    Span {
        /// Duration of the span in microseconds.
        dur_us: u64,
    },
    /// A monotone count added to the `phase.name` counter.
    Counter {
        /// Amount added.
        value: u64,
    },
    /// A moment-in-time observation carrying only `fields`.
    Point,
}

/// One structured trace event. See the crate-level docs for the
/// serialized schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone per-tracer sequence number.
    pub seq: u64,
    /// Microseconds since the tracer's epoch.
    pub t_us: u64,
    /// Pipeline phase (`normalize`, `synthesize`, `execute`, …).
    pub phase: String,
    /// Event name within the phase.
    pub name: String,
    /// Span / counter / point discriminant plus its measurement.
    #[serde(flatten)]
    pub kind: EventKind,
    /// Optional key-value payload.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub fields: BTreeMap<String, FieldValue>,
}

/// Receives every [`Event`] a [`Tracer`] emits. Implementations must
/// be thread-safe: the runtime emits from the coordinating thread, but
/// sinks may be shared across pipeline and execution phases.
pub trait TraceSink: Send + Sync {
    /// Record one event. Called synchronously on the emitting thread.
    fn record(&self, event: &Event);
    /// Flush buffered output (file sinks). Default: no-op.
    fn flush(&self) {}
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
}

/// Handle that stamps and forwards events to a [`TraceSink`].
///
/// Cloning is cheap (an `Arc` bump); a [`Tracer::disabled`] tracer
/// drops every emission without allocating.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer forwarding to `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// Convenience wrapper over [`Tracer::new`] for owned sinks.
    pub fn from_sink<S: TraceSink + 'static>(sink: S) -> Self {
        Tracer::new(Arc::new(sink))
    }

    /// A tracer that drops every event.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether events reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit a raw event with the given kind and payload.
    pub fn emit(
        &self,
        phase: &str,
        name: &str,
        kind: EventKind,
        fields: BTreeMap<String, FieldValue>,
    ) {
        if let Some(inner) = &self.inner {
            let event = Event {
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                t_us: inner.epoch.elapsed().as_micros() as u64,
                phase: phase.to_string(),
                name: name.to_string(),
                kind,
                fields,
            };
            inner.sink.record(&event);
        }
    }

    /// Emit a counter event adding `value` to `phase.name`.
    pub fn counter(&self, phase: &str, name: &str, value: u64) {
        self.emit(phase, name, EventKind::Counter { value }, BTreeMap::new());
    }

    /// Emit a counter event with a payload.
    pub fn counter_with(&self, phase: &str, name: &str, value: u64, fields: &[(&str, FieldValue)]) {
        self.emit(phase, name, EventKind::Counter { value }, to_map(fields));
    }

    /// Emit a point event with a payload.
    pub fn point(&self, phase: &str, name: &str, fields: &[(&str, FieldValue)]) {
        self.emit(phase, name, EventKind::Point, to_map(fields));
    }

    /// Start a timed span; the event is emitted when the span drops.
    pub fn span(&self, phase: &str, name: &str) -> Span {
        self.span_with(phase, name, &[])
    }

    /// Start a timed span carrying `fields` from the outset (e.g. a
    /// request id). [`Span::record`] can still add or override fields
    /// before the span drops.
    pub fn span_with(&self, phase: &str, name: &str, fields: &[(&str, FieldValue)]) -> Span {
        Span {
            tracer: self.clone(),
            data: self.inner.as_ref().map(|_| SpanData {
                phase: phase.to_string(),
                name: name.to_string(),
                start: Instant::now(),
                fields: to_map(fields),
            }),
        }
    }

    /// Ask the underlying sink to flush buffered output.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

fn to_map(fields: &[(&str, FieldValue)]) -> BTreeMap<String, FieldValue> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

struct SpanData {
    phase: String,
    name: String,
    start: Instant,
    fields: BTreeMap<String, FieldValue>,
}

/// RAII phase timer: created via [`Tracer::span`] or the free
/// [`span`] function, emits an [`EventKind::Span`] event with the
/// elapsed time (and any [`Span::record`]ed fields) on drop.
pub struct Span {
    tracer: Tracer,
    data: Option<SpanData>,
}

impl Span {
    /// Attach a key-value field to the span-end event.
    pub fn record(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(data) = &mut self.data {
            data.fields.insert(key.to_string(), value.into());
        }
    }

    /// Whether this span reaches a sink (false under a disabled tracer).
    pub fn is_enabled(&self) -> bool {
        self.data.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            let dur_us = data.start.elapsed().as_micros() as u64;
            self.tracer.emit(
                &data.phase,
                &data.name,
                EventKind::Span { dur_us },
                data.fields,
            );
        }
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<Tracer>> = const { RefCell::new(Vec::new()) };
}

/// Install `tracer` as this thread's ambient tracer until the returned
/// guard drops. Nested installs form a stack; the innermost wins.
#[must_use = "the ambient tracer is uninstalled when the guard drops"]
pub fn set_ambient(tracer: Tracer) -> AmbientGuard {
    AMBIENT.with(|stack| stack.borrow_mut().push(tracer));
    AmbientGuard { _priv: () }
}

/// Uninstalls the ambient tracer installed by [`set_ambient`] on drop.
pub struct AmbientGuard {
    _priv: (),
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The current thread's ambient tracer ([`Tracer::disabled`] if none).
pub fn ambient() -> Tracer {
    AMBIENT.with(|stack| stack.borrow().last().cloned().unwrap_or_default())
}

/// Whether an enabled ambient tracer is installed on this thread.
pub fn enabled() -> bool {
    AMBIENT.with(|stack| {
        stack
            .borrow()
            .last()
            .map(|t| t.is_enabled())
            .unwrap_or(false)
    })
}

/// Start a timed span on the ambient tracer.
pub fn span(phase: &str, name: &str) -> Span {
    ambient().span(phase, name)
}

/// Start a timed span with initial fields on the ambient tracer.
pub fn span_with(phase: &str, name: &str, fields: &[(&str, FieldValue)]) -> Span {
    ambient().span_with(phase, name, fields)
}

/// Emit a counter on the ambient tracer.
pub fn counter(phase: &str, name: &str, value: u64) {
    ambient().counter(phase, name, value)
}

/// Emit a counter with a payload on the ambient tracer.
pub fn counter_with(phase: &str, name: &str, value: u64, fields: &[(&str, FieldValue)]) {
    ambient().counter_with(phase, name, value, fields)
}

/// Emit a point event on the ambient tracer.
pub fn point(phase: &str, name: &str, fields: &[(&str, FieldValue)]) {
    ambient().point(phase, name, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_emits_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.counter("normalize", "rule_fired", 3);
        let mut span = tracer.span("synthesize", "join");
        assert!(!span.is_enabled());
        span.record("round", 1u64);
        drop(span);
        // Nothing to assert against — the point is that none of the
        // above panics or allocates a sink.
    }

    #[test]
    fn events_are_sequenced_and_stamped() {
        let sink = CollectingSink::new();
        let tracer = Tracer::from_sink(sink.clone());
        tracer.counter("normalize", "rule_fired", 2);
        tracer.point("lift", "aux_discovered", &[("hint", "min".into())]);
        {
            let mut span = tracer.span("synthesize", "join");
            span.record("vars", 3usize);
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, EventKind::Counter { value: 2 });
        assert_eq!(events[1].fields["hint"], FieldValue::Str("min".into()));
        match events[2].kind {
            EventKind::Span { .. } => {}
            ref other => panic!("expected span end, got {other:?}"),
        }
        assert_eq!(events[2].fields["vars"], FieldValue::Int(3));
    }

    #[test]
    fn ambient_stack_nests_and_restores() {
        assert!(!enabled());
        let outer = CollectingSink::new();
        let inner = CollectingSink::new();
        {
            let _outer = set_ambient(Tracer::from_sink(outer.clone()));
            counter("execute", "chunks", 1);
            {
                let _inner = set_ambient(Tracer::from_sink(inner.clone()));
                counter("execute", "chunks", 10);
            }
            counter("execute", "chunks", 2);
        }
        assert!(!enabled());
        counter("execute", "chunks", 99); // dropped: no ambient tracer
        let outer_total: u64 = outer
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::Counter { value } => value,
                _ => 0,
            })
            .sum();
        assert_eq!(outer_total, 3);
        assert_eq!(inner.events().len(), 1);
    }

    #[test]
    fn jsonl_round_trip() {
        let sink = Arc::new(WriterSink::new(Vec::<u8>::new()));
        let tracer = Tracer::new(sink.clone());
        tracer.counter_with("normalize", "rule_fired", 5, &[("rule", "fold-add".into())]);
        {
            let _span = tracer.span("verify", "cross_check");
        }
        tracer.point("synthesize", "cegis_round", &[("round", 0u64.into())]);
        drop(tracer);
        let bytes = sink.clone_buffer();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let event: Event = serde_json::from_str(line).unwrap();
            let back = serde_json::to_string(&event).unwrap();
            let reparsed: Event = serde_json::from_str(&back).unwrap();
            assert_eq!(event, reparsed);
        }
        let first: Event = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.kind, EventKind::Counter { value: 5 });
        assert_eq!(first.fields["rule"], FieldValue::Str("fold-add".into()));
    }

    #[test]
    fn phase_aggregator_sums_spans_and_counters() {
        let agg = PhaseAggregator::new();
        let tracer = Tracer::from_sink(agg.clone());
        tracer.emit(
            "normalize",
            "pass",
            EventKind::Span { dur_us: 1500 },
            BTreeMap::new(),
        );
        tracer.emit(
            "normalize",
            "pass",
            EventKind::Span { dur_us: 500 },
            BTreeMap::new(),
        );
        tracer.counter("normalize", "rule_fired", 4);
        tracer.counter("normalize", "rule_fired", 6);
        tracer.point("synthesize", "cegis_round", &[]);
        tracer.point("synthesize", "cegis_round", &[]);
        let timings = agg.phase_timings();
        assert_eq!(timings["normalize"], Duration::from_micros(2000));
        let counters = agg.counters();
        assert_eq!(counters["normalize.rule_fired"], 10);
        assert_eq!(counters["synthesize.cegis_round"], 2);
    }

    #[test]
    fn trace_config_builder() {
        let off = TraceConfig::default();
        assert!(!off.is_enabled());
        assert_eq!(off.jsonl_path(), None);
        let on = TraceConfig::default().jsonl("/tmp/trace.jsonl");
        assert!(on.is_enabled());
        assert_eq!(
            on.jsonl_path(),
            Some(std::path::Path::new("/tmp/trace.jsonl"))
        );
    }

    #[test]
    fn span_with_carries_initial_fields() {
        let sink = CollectingSink::new();
        let tracer = Tracer::from_sink(sink.clone());
        {
            let mut span = tracer.span_with("serve", "request", &[("request_id", "req-42".into())]);
            span.record("status", 200u64);
        }
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].fields["request_id"],
            FieldValue::Str("req-42".into())
        );
        assert_eq!(events[0].fields["status"], FieldValue::Int(200));
    }

    #[test]
    fn tagged_sink_stamps_every_event_without_clobbering() {
        let sink = CollectingSink::new();
        let tagged = TaggedSink::new(
            Arc::new(sink.clone()),
            &[
                ("request_id", "req-7".into()),
                ("status", "tag-must-lose".into()),
            ],
        );
        let tracer = Tracer::from_sink(tagged);
        tracer.counter("synthesize", "cegis_round", 1);
        tracer.point("serve", "done", &[("status", 206u64.into())]);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        for event in &events {
            assert_eq!(event.fields["request_id"], FieldValue::Str("req-7".into()));
        }
        // The event's own field wins over the tag.
        assert_eq!(events[1].fields["status"], FieldValue::Int(206));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = CollectingSink::new();
        let b = CollectingSink::new();
        let fan = FanoutSink::new(vec![
            Arc::new(a.clone()) as Arc<dyn TraceSink>,
            Arc::new(b.clone()),
        ]);
        let tracer = Tracer::from_sink(fan);
        tracer.counter("execute", "joins", 7);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
