//! Cooperative wall-clock deadlines and cancellation.
//!
//! A [`Deadline`] is a cheap, cloneable "stop by then" value threaded
//! through the search loops of the synthesis pipeline (normalization,
//! sketch hole-filling, enumerative search, parallel candidate
//! screening, CEGIS rounds). Loops poll [`Deadline::is_expired`] at
//! candidate granularity and unwind cooperatively — no thread is ever
//! killed, so partial statistics survive and a typed
//! `Unparallelizable` outcome can be reported instead of a hang.
//!
//! A deadline may also carry a [`CancelToken`], letting an external
//! controller abort a search early regardless of the clock.
//!
//! This lives in `parsynt-trace` because it is the one crate every
//! other pipeline crate already depends on (and deadline expiry is
//! reported through the same event stream); `parsynt-core` re-exports
//! both types as its public robustness surface.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperative cancellation of a running search.
///
/// Cloning shares the flag; [`CancelToken::cancel`] is visible to every
/// clone (and thus to every [`Deadline`] carrying one).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A wall-clock budget for a search, optionally combined with a
/// [`CancelToken`].
///
/// The default deadline is unlimited: [`Deadline::is_expired`] is
/// `false` forever and polling it costs one `Option` check. With a
/// time limit set, each poll reads `Instant::now()` — negligible next
/// to the interpreter-backed candidate checks it gates.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    expires_at: Option<Instant>,
    token: Option<CancelToken>,
}

impl Deadline {
    /// No limit: never expires (unless a token is attached and
    /// cancelled).
    pub fn none() -> Self {
        Deadline::default()
    }

    /// Expire `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            expires_at: Instant::now().checked_add(budget),
            token: None,
        }
    }

    /// Expire at `instant`.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            expires_at: Some(instant),
            token: None,
        }
    }

    /// Attach a cancellation token; the deadline also expires when the
    /// token is cancelled.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Whether this deadline ever limits anything (a time bound or a
    /// token is present).
    pub fn is_limited(&self) -> bool {
        self.expires_at.is_some() || self.token.is_some()
    }

    /// Whether the budget is exhausted or cancellation was requested.
    pub fn is_expired(&self) -> bool {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return true;
            }
        }
        match self.expires_at {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left before expiry; `None` when unlimited. Saturates at
    /// zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|t| t.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_limited());
        assert!(!d.is_expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_limited());
        assert!(d.is_expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired_yet() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_token_expires_any_deadline() {
        let token = CancelToken::new();
        let d = Deadline::none().with_token(token.clone());
        assert!(d.is_limited());
        assert!(!d.is_expired());
        token.cancel();
        assert!(d.is_expired());
        assert!(token.is_cancelled());
    }

    #[test]
    fn clones_share_the_token() {
        let token = CancelToken::new();
        let a = Deadline::after(Duration::from_secs(60)).with_token(token.clone());
        let b = a.clone();
        token.cancel();
        assert!(a.is_expired());
        assert!(b.is_expired());
    }
}
