//! Concrete [`TraceSink`] implementations: discard, collect in
//! memory, stream JSON lines, fan out, and aggregate per-phase
//! timings/counters.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::{Event, EventKind, TraceSink};

/// Discards every event. Useful as an explicit "tracing off" sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers every event in memory; clones share the same buffer, so a
/// test can keep one clone and hand the other to a `Tracer`.
#[derive(Clone, Default)]
pub struct CollectingSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Streams each event as one JSON object per line (JSONL) to a writer.
/// Serialization errors are silently dropped: tracing must never fail
/// the pipeline it observes.
pub struct WriterSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> WriterSink<W> {
    /// Wrap a writer. Use [`WriterSink::to_file`] for the common case.
    pub fn new(out: W) -> Self {
        WriterSink {
            out: Mutex::new(out),
        }
    }
}

impl WriterSink<BufWriter<File>> {
    /// Create (truncating) `path` and stream JSON lines into it.
    pub fn to_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(WriterSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl WriterSink<Vec<u8>> {
    /// Copy of the bytes written so far (in-memory sinks only).
    pub fn clone_buffer(&self) -> Vec<u8> {
        self.out.lock().unwrap().clone()
    }
}

impl<W: Write + Send> TraceSink for WriterSink<W> {
    fn record(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock().unwrap();
            let _ = writeln!(out, "{line}");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

impl<W: Write + Send> Drop for WriterSink<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Duplicates every event to a list of sinks, in order.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fan out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Stamps a fixed set of key-value tags onto every event before
/// forwarding it — the request-scoping building block of the daemon:
/// wrap the shared JSONL sink in a `TaggedSink` carrying the request's
/// trace id, and every span/counter/point emitted while serving that
/// request lands in the shared stream self-identified.
///
/// Event-local fields win on key collision: a tag never overwrites a
/// payload the instrumentation recorded deliberately.
pub struct TaggedSink {
    inner: Arc<dyn TraceSink>,
    tags: BTreeMap<String, crate::FieldValue>,
}

impl TaggedSink {
    /// Wrap `inner`, adding `tags` to every event.
    pub fn new(inner: Arc<dyn TraceSink>, tags: &[(&str, crate::FieldValue)]) -> Self {
        TaggedSink {
            inner,
            tags: tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl TraceSink for TaggedSink {
    fn record(&self, event: &Event) {
        let mut tagged = event.clone();
        for (key, value) in &self.tags {
            tagged
                .fields
                .entry(key.clone())
                .or_insert_with(|| value.clone());
        }
        self.inner.record(&tagged);
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

#[derive(Default)]
struct AggregatorState {
    /// Summed span durations (µs) per phase.
    phase_us: BTreeMap<String, u64>,
    /// Summed counter values / point occurrences per `phase.name`.
    counters: BTreeMap<String, u64>,
}

/// Folds the event stream into per-phase wall-clock totals (from span
/// events) and `phase.name` counters (from counter values and point
/// occurrences). This is what turns a raw trace into the
/// `phase_timings` / `counters` of a `PipelineReport`.
///
/// Span durations within one phase are summed, so non-nested repeated
/// spans (the instrumentation convention in this workspace) yield the
/// phase's total wall-clock time. Clones share state.
#[derive(Clone, Default)]
pub struct PhaseAggregator {
    state: Arc<Mutex<AggregatorState>>,
}

impl PhaseAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total span time per phase.
    pub fn phase_timings(&self) -> BTreeMap<String, Duration> {
        self.state
            .lock()
            .unwrap()
            .phase_us
            .iter()
            .map(|(phase, us)| (phase.clone(), Duration::from_micros(*us)))
            .collect()
    }

    /// Summed counters keyed by `"phase.name"`.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.state.lock().unwrap().counters.clone()
    }
}

impl TraceSink for PhaseAggregator {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().unwrap();
        match event.kind {
            EventKind::Span { dur_us } => {
                *state.phase_us.entry(event.phase.clone()).or_insert(0) += dur_us;
            }
            EventKind::Counter { value } => {
                let key = format!("{}.{}", event.phase, event.name);
                *state.counters.entry(key).or_insert(0) += value;
            }
            EventKind::Point => {
                let key = format!("{}.{}", event.phase, event.name);
                *state.counters.entry(key).or_insert(0) += 1;
            }
        }
    }
}
