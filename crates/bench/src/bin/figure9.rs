//! Regenerates **Figure 9**: speedup relative to the sequential run for
//! every parallelizable benchmark, across thread counts 1..32, using the
//! work-stealing ("TBB") backend with the paper's 50k grain size.
//!
//! The paper's hardware is a 64-core Xeon with 2bn-element inputs; here
//! sizes default to 4×10⁷ elements and curves saturate at the host's
//! core count — the *shape* (near-linear for cheap joins, flatter for
//! looped joins and bp's map-only pipeline) is the reproduced claim.
//!
//! Usage: `figure9 [--elements N] [--threads 1,2,4,...] [--filter s]
//!                 [--reps R] [--csv out.csv]`

use parsynt_bench::measure_speedup;
use parsynt_runtime::RunConfig;
use parsynt_suite::native::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let elements: usize = get("--elements")
        .map(|s| s.parse().expect("--elements"))
        .unwrap_or(40_000_000);
    let threads: Vec<usize> = get("--threads")
        .map(|s| {
            s.split(',')
                .map(|t| t.parse().expect("--threads"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 24, 32]);
    let reps: usize = get("--reps")
        .map(|s| s.parse().expect("--reps"))
        .unwrap_or(3);
    let filter = get("--filter");
    let csv = get("--csv");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# figure 9 — speedups (work-stealing backend, grain 50k)");
    println!("# host cores: {cores}; elements per benchmark: {elements}");
    print!("{:<22}", "benchmark");
    for t in &threads {
        print!(" {t:>7}");
    }
    println!();

    let mut csv_lines = vec![format!(
        "benchmark,{}",
        threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    )];
    for w in workloads() {
        if let Some(f) = &filter {
            if !w.id.contains(f.as_str()) {
                continue;
            }
        }
        let prepared = (w.prepare)(elements, 0xFEED);
        print!("{:<22}", w.id);
        let mut cells = Vec::new();
        for &t in &threads {
            let cfg = RunConfig::work_stealing(t);
            let (seq, par) = measure_speedup(prepared.as_ref(), cfg, reps);
            let speedup = seq.as_secs_f64() / par.as_secs_f64();
            print!(" {speedup:>7.2}");
            cells.push(format!("{speedup:.3}"));
        }
        println!();
        csv_lines.push(format!("{},{}", w.id, cells.join(",")));
    }
    if let Some(path) = csv {
        std::fs::write(&path, csv_lines.join("\n")).expect("write csv");
        println!("wrote {path}");
    }
}
