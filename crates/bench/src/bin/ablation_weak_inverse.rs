//! §7.1 / §9 ablation: the weak-inverse sketch restriction.
//!
//! With the restriction, hole candidates come from the loop-body sketch
//! over left/right state projections; without it, the synthesizer falls
//! back to unrestricted bottom-up enumeration. The paper reports
//! max top strip's join at 12.1 s without the restriction (vs ~6 s
//! with), and the mbbs *auxiliary* taking 40+ minutes under a
//! straightforward SyGuS scheme.
//!
//! Usage: `ablation_weak_inverse`

use parsynt_lang::parse;
use parsynt_suite::benchmark;
use parsynt_synth::join::synthesize_join;
use parsynt_synth::report::SynthConfig;

const PICKS: [&str; 3] = ["max_top_strip", "sum", "min_max"];

fn main() {
    println!(
        "{:<18} {:>12} {:>14} {:>8}",
        "benchmark", "sketched(s)", "unrestricted(s)", "ratio"
    );
    for id in PICKS {
        let b = benchmark(id).expect("known benchmark");

        let mut p1 = parse(b.source).unwrap();
        let (with, _) = synthesize_join(&mut p1, &b.profile, &SynthConfig::default()).unwrap();

        let mut p2 = parse(b.source).unwrap();
        let cfg_no = SynthConfig::default().without_sketches();
        let (without, _) = synthesize_join(&mut p2, &b.profile, &cfg_no).unwrap();

        let with_s = with.elapsed.as_secs_f64();
        let without_cell = if without.join.is_some() {
            format!("{:.2}", without.elapsed.as_secs_f64())
        } else {
            format!("fail @{:.1}", without.elapsed.as_secs_f64())
        };
        println!(
            "{:<18} {:>12.2} {:>14} {:>7.1}x",
            id,
            with_s,
            without_cell,
            without.elapsed.as_secs_f64() / with_s.max(1e-9),
        );
        assert!(with.join.is_some(), "sketched mode must solve {id}");
    }
    println!("\npaper anchor: max top strip 12.1 s without the weak-inverse restriction");
}
