//! §9 "Implementation" ablation: incremental join synthesis over the
//! dependency partition `D₁ ⊂ D₂ ⊂ …` versus the monolithic baseline
//! (each variable synthesized independently, no shared loop body and no
//! access to already-joined values).
//!
//! The paper reports mtls dropping from >1000 s to 116.3 s with the
//! incremental strategy; here the monolithic mode forces each looped
//! variable to re-derive everything inside its own candidate space,
//! with the same qualitative blow-up (or outright failure).
//!
//! Usage: `ablation_incremental`

use parsynt_lang::parse;
use parsynt_suite::benchmark;
use parsynt_synth::join::synthesize_join;
use parsynt_synth::merge::synthesize_merge;
use parsynt_synth::report::SynthConfig;

/// The lifted mtls of Figure 5(c) — join synthesis runs on it directly,
/// isolating the incremental-vs-monolithic comparison from lifting.
const MTLS_LIFTED: &str = r#"
    input a : seq<seq<int>>;
    state rec : seq<int> = zeros(len(a[0]));
    state max_rec : seq<int> = zeros(len(a[0]));
    state mtl : int = 0;
    for i in 0 .. len(a) {
      let rpre : int = 0;
      for j in 0 .. len(a[i]) {
        rpre = rpre + a[i][j];
        rec[j] = rec[j] + rpre;
        max_rec[j] = max(max_rec[j], rec[j]);
        mtl = max(mtl, rec[j]);
      }
    }
    return mtl;
"#;

/// The lifted bp of Figure 4: the merge for `cnt` must reference the
/// *already-merged* `bal` and `offset` — exactly what the incremental
/// strategy provides and the monolithic baseline forbids.
const BP_LIFTED: &str = r#"
    input a : seq<seq<int>>;
    state offset : int = 0;
    state bal : bool = true;
    state cnt : int = 0;
    for i in 0 .. len(a) {
      let lo : int = 0;
      let mo : int = 0;
      for j in 0 .. len(a[i]) {
        lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);
        if (offset + lo < 0) { bal = false; }
        mo = min(mo, lo);
      }
      offset = offset + lo;
      if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }
    }
    return cnt;
"#;

fn main() {
    println!(
        "{:<22} {:>14} {:>16} {:>10}",
        "benchmark", "incremental(s)", "monolithic(s)", "ratio"
    );
    let cases: Vec<(&str, String)> = vec![
        ("mtls (lifted)", MTLS_LIFTED.to_owned()),
        (
            "max_top_strip",
            benchmark("max_top_strip").unwrap().source.to_owned(),
        ),
        ("sum", benchmark("sum").unwrap().source.to_owned()),
    ];
    for (name, source) in cases {
        let profile = parsynt_synth::examples::InputProfile::default();

        let mut p1 = parse(&source).unwrap();
        let (inc, _) = synthesize_join(&mut p1, &profile, &SynthConfig::default()).unwrap();

        let mut p2 = parse(&source).unwrap();
        let (mono, _) =
            synthesize_join(&mut p2, &profile, &SynthConfig::default().monolithic()).unwrap();

        let inc_s = inc.elapsed.as_secs_f64();
        let mono_s = mono.elapsed.as_secs_f64();
        let mono_cell = if mono.join.is_some() {
            format!("{mono_s:.2}")
        } else {
            format!("fail @{mono_s:.1}")
        };
        println!(
            "{:<22} {:>14.2} {:>16} {:>9.1}x",
            name,
            inc_s,
            mono_cell,
            mono_s / inc_s.max(1e-9),
        );
        assert!(inc.join.is_some(), "incremental must solve {name}");
    }

    // Merge (⊚) synthesis shows the sharpest effect: bp's `cnt` update
    // needs the already-merged `bal` and `offset` values.
    let brackets = parsynt_synth::examples::InputProfile::default().with_choices(&[-1, 1]);
    let mut p1 = parse(BP_LIFTED).unwrap();
    let (inc, _) = synthesize_merge(&mut p1, &brackets, &SynthConfig::default()).unwrap();
    let mut p2 = parse(BP_LIFTED).unwrap();
    let (mono, _) =
        synthesize_merge(&mut p2, &brackets, &SynthConfig::default().monolithic()).unwrap();
    let inc_s = inc.elapsed.as_secs_f64();
    let mono_s = mono.elapsed.as_secs_f64();
    let mono_cell = if mono.merge.is_some() {
        format!("{mono_s:.2}")
    } else {
        format!("fail @{mono_s:.1}")
    };
    println!(
        "{:<22} {:>14.2} {:>16} {:>9.1}x",
        "bp merge (lifted)",
        inc_s,
        mono_cell,
        mono_s / inc_s.max(1e-9),
    );
    assert!(inc.merge.is_some(), "incremental must summarize bp");

    println!("\npaper anchor: mtls join synthesis 116.3 s incremental vs >1000 s monolithic");
}
