//! Regenerates **Table 1**: per benchmark, the summarization time, the
//! number of auxiliary accumulators discovered by lifting, and the join
//! synthesis time — alongside the paper-reported numbers.
//!
//! Absolute times are not comparable (the paper uses Rosette on a
//! laptop; we use an enumerative CEGIS engine), but the qualitative
//! shape is: trivial joins are fast, lifted joins cost more, looped
//! joins cost the most, bp yields map-only (the paper's †), and LCS
//! fails (✗).
//!
//! Usage: `table1 [--filter substring] [--json out.json]`

use parsynt_core::{Outcome, Pipeline, PipelineConfig};
use parsynt_lang::parse;
use parsynt_suite::{all_benchmarks, ExpectedOutcome};
use parsynt_synth::report::SynthConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    id: String,
    n: usize,
    k: usize,
    summarization_s: f64,
    lift_ms: f64,
    aux: usize,
    aux_names: Vec<String>,
    join_s: f64,
    total_s: f64,
    outcome: String,
    expected: String,
    as_expected: bool,
    paper_summarization_s: f64,
    paper_aux: usize,
    paper_join_s: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "{:<22} {:>2} {:>2} {:>9} {:>8} {:>4} {:>9} {:>12} | {:>9} {:>4} {:>8}",
        "benchmark",
        "n",
        "k",
        "summ(s)",
        "lift(ms)",
        "aux",
        "join(s)",
        "outcome",
        "P:summ",
        "P:aux",
        "P:join"
    );
    println!("{}", "-".repeat(110));

    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for b in all_benchmarks() {
        if let Some(f) = &filter {
            if !b.id.contains(f.as_str()) {
                continue;
            }
        }
        let program = parse(b.source).expect("benchmark parses");
        let cfg = SynthConfig::default();
        let report = Pipeline::new(&program)
            .configure(
                PipelineConfig::default()
                    .with_profile(b.profile.clone())
                    .with_synth(cfg),
            )
            .run()
            .unwrap_or_else(|e| panic!("pipeline error on {}: {e}", b.id));
        let result = &report.parallelization;
        let (outcome, ok) = match (&result.outcome, b.expected) {
            (Outcome::DivideAndConquer { .. }, ExpectedOutcome::DivideAndConquer) => {
                ("d&c".to_owned(), true)
            }
            (Outcome::MapOnly, ExpectedOutcome::MapOnly) => ("map-only †".to_owned(), true),
            (Outcome::Unparallelizable { .. }, ExpectedOutcome::Fails) => {
                ("fails ✗".to_owned(), true)
            }
            (o, _) => (
                format!(
                    "UNEXPECTED {}",
                    match o {
                        Outcome::DivideAndConquer { .. } => "d&c",
                        Outcome::MapOnly => "map-only",
                        Outcome::Unparallelizable { .. } => "fails",
                    }
                ),
                false,
            ),
        };
        if !ok {
            mismatches += 1;
        }
        let r = &result.report;
        let mut aux_names = r.aux_memoryless.clone();
        aux_names.extend(r.aux_homomorphism.iter().cloned());
        println!(
            "{:<22} {:>2} {:>2} {:>9.2} {:>8.2} {:>4} {:>9.2} {:>12} | {:>9.1} {:>4} {:>8}",
            b.id,
            r.loop_depth,
            r.summarized_depth,
            r.summarization_time.as_secs_f64(),
            r.lift_time.as_secs_f64() * 1000.0,
            r.aux_count(),
            r.join_time.as_secs_f64(),
            outcome,
            b.paper.summarization_s,
            b.paper.aux,
            b.paper
                .join_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "—".to_owned()),
        );
        rows.push(Row {
            id: b.id.to_owned(),
            n: r.loop_depth,
            k: r.summarized_depth,
            summarization_s: r.summarization_time.as_secs_f64(),
            lift_ms: r.lift_time.as_secs_f64() * 1000.0,
            aux: r.aux_count(),
            aux_names,
            join_s: r.join_time.as_secs_f64(),
            total_s: report
                .phase_timings
                .get("total")
                .map(|d| d.as_secs_f64())
                .unwrap_or_default(),
            outcome,
            expected: format!("{:?}", b.expected),
            as_expected: ok,
            paper_summarization_s: b.paper.summarization_s,
            paper_aux: b.paper.aux,
            paper_join_s: b.paper.join_s,
        });
    }
    println!("{}", "-".repeat(110));
    println!(
        "{} benchmarks, {} matching the paper's qualitative outcome",
        rows.len(),
        rows.len() - mismatches
    );
    if let Some(path) = json_path {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).unwrap()).expect("write json");
        println!("wrote {path}");
    }
    if mismatches > 0 {
        std::process::exit(1);
    }
}
