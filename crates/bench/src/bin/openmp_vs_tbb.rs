//! Regenerates the §9 inline table: speedups at 16 threads under the
//! OpenMP-flavoured (static) and TBB-flavoured (work-stealing) backends
//! for one benchmark of each category — max bottom strip, mbbs, mode,
//! and bp — matching the paper's finding that the work-stealing backend
//! performs at least as well.
//!
//! Usage: `openmp_vs_tbb [--elements N] [--threads T] [--reps R]`

use parsynt_bench::measure_speedup;
use parsynt_runtime::{Backend, RunConfig};
use parsynt_suite::native::workload;

const PICKS: [(&str, f64, f64); 4] = [
    // (benchmark, paper OpenMP speedup, paper TBB speedup) at 16 threads
    ("max_bottom_strip", 11.0, 12.7),
    ("mbbs", 8.6, 10.7),
    ("mode", 11.0, 11.5),
    ("bp", 7.8, 8.9),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let elements: usize = get("--elements")
        .map(|s| s.parse().expect("--elements"))
        .unwrap_or(40_000_000);
    let threads: usize = get("--threads")
        .map(|s| s.parse().expect("--threads"))
        .unwrap_or(16);
    let reps: usize = get("--reps")
        .map(|s| s.parse().expect("--reps"))
        .unwrap_or(3);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# OpenMP-style (static) vs TBB-style (work-stealing) at {threads} threads");
    println!("# host cores: {cores}; elements: {elements}");
    println!(
        "{:<18} {:>10} {:>10} | {:>10} {:>10}",
        "benchmark", "static", "stealing", "P:OpenMP", "P:TBB"
    );
    for (id, paper_omp, paper_tbb) in PICKS {
        let w = workload(id).expect("registered workload");
        let prepared = (w.prepare)(elements, 0xBEEF);
        let static_cfg = RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::Static,
        };
        let steal_cfg = RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::WorkStealing,
        };
        let (seq_s, par_s) = measure_speedup(prepared.as_ref(), static_cfg, reps);
        let (seq_w, par_w) = measure_speedup(prepared.as_ref(), steal_cfg, reps);
        let sp_static = seq_s.as_secs_f64() / par_s.as_secs_f64();
        let sp_steal = seq_w.as_secs_f64() / par_w.as_secs_f64();
        println!(
            "{id:<18} {sp_static:>10.2} {sp_steal:>10.2} | {paper_omp:>10.1} {paper_tbb:>10.1}"
        );
    }
}
