//! Measures how the CEGIS engine scales with parallel candidate
//! screening (`SynthConfig::with_threads`): per benchmark, the
//! `synthesize` phase wall-clock at 1 thread vs N threads, the speedup,
//! and a determinism cross-check (the N-thread join must be
//! byte-identical to the sequential one).
//!
//! The default set is the lifted-join benchmarks — the ones whose
//! searches screen enough candidates for sharding to pay off; trivial
//! joins (`sum`) finish in a handful of batches either way.
//!
//! Usage: `synth_scaling [--threads N] [--reps R] [--filter substring]
//!                       [--all] [--json out.json]`
//!
//! Writes `BENCH_synth.json` (override with `--json`).

use parsynt_bench::row;
use parsynt_core::{Outcome, Pipeline, PipelineConfig};
use parsynt_lang::parse;
use parsynt_suite::{all_benchmarks, Benchmark};
use parsynt_synth::report::SynthConfig;
use serde::Serialize;
use std::time::Duration;

/// Benchmarks whose joins only exist after auxiliary lifting — the
/// searches with enough candidates to shard.
const LIFTED_JOIN_SET: &[&str] = &[
    "max_top_strip",
    "max_bottom_strip",
    "max_left_strip",
    "max_dist",
    "mbbs",
];

#[derive(Serialize)]
struct Row {
    id: String,
    outcome: String,
    threads: usize,
    synth_seq_s: f64,
    synth_par_s: f64,
    speedup: f64,
    deterministic: bool,
}

struct Run {
    synth: Duration,
    join: Option<String>,
    outcome: String,
}

fn run_once(b: &Benchmark, threads: usize) -> Run {
    let program = parse(b.source).expect("benchmark parses");
    let report = Pipeline::new(&program)
        .configure(
            PipelineConfig::default()
                .with_profile(b.profile.clone())
                .with_synth(SynthConfig::default().with_threads(threads)),
        )
        .run()
        .unwrap_or_else(|e| panic!("pipeline error on {}: {e}", b.id));
    let plan = &report.parallelization;
    let (outcome, join) = match &plan.outcome {
        Outcome::DivideAndConquer { join, .. } => (
            "divide_and_conquer".to_owned(),
            Some(join.render(&plan.program)),
        ),
        Outcome::MapOnly => ("map_only".to_owned(), None),
        Outcome::Unparallelizable { .. } => ("unparallelizable".to_owned(), None),
    };
    Run {
        synth: report
            .phase_timings
            .get("synthesize")
            .copied()
            .unwrap_or_default(),
        join,
        outcome,
    }
}

/// Median `synthesize` time over `reps` runs; the joins of every run
/// must agree (synthesis itself is deterministic per thread count).
fn measure(b: &Benchmark, threads: usize, reps: usize) -> Run {
    let mut runs: Vec<Run> = (0..reps.max(1)).map(|_| run_once(b, threads)).collect();
    runs.sort_by_key(|r| r.synth);
    let median = runs.len() / 2;
    runs.swap_remove(median)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threads: usize = get("--threads").map_or(4, |v| v.parse().expect("--threads"));
    let reps: usize = get("--reps").map_or(3, |v| v.parse().expect("--reps"));
    let filter = get("--filter");
    let all = args.iter().any(|a| a == "--all");
    let json_path = get("--json").unwrap_or_else(|| "BENCH_synth.json".to_owned());

    let widths = [22, 18, 12, 12, 9, 14];
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "outcome".into(),
                "synth 1t (s)".into(),
                format!("synth {threads}t (s)"),
                "speedup".into(),
                "deterministic".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + widths.len())
    );

    let mut rows = Vec::new();
    let mut nondeterministic = 0usize;
    for b in all_benchmarks() {
        let selected = match (&filter, all) {
            (Some(f), _) => b.id.contains(f.as_str()),
            (None, true) => true,
            (None, false) => LIFTED_JOIN_SET.contains(&b.id),
        };
        if !selected {
            continue;
        }
        let seq = measure(&b, 1, reps);
        let par = measure(&b, threads, reps);
        let deterministic = seq.join == par.join && seq.outcome == par.outcome;
        if !deterministic {
            nondeterministic += 1;
        }
        let speedup = if par.synth.as_secs_f64() > 0.0 {
            seq.synth.as_secs_f64() / par.synth.as_secs_f64()
        } else {
            1.0
        };
        println!(
            "{}",
            row(
                &[
                    b.id.into(),
                    seq.outcome.clone(),
                    format!("{:.3}", seq.synth.as_secs_f64()),
                    format!("{:.3}", par.synth.as_secs_f64()),
                    format!("{speedup:.2}x"),
                    if deterministic { "yes" } else { "NO" }.into(),
                ],
                &widths
            )
        );
        rows.push(Row {
            id: b.id.to_owned(),
            outcome: seq.outcome,
            threads,
            synth_seq_s: seq.synth.as_secs_f64(),
            synth_par_s: par.synth.as_secs_f64(),
            speedup,
            deterministic,
        });
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write(&json_path, json).expect("write json");
    println!("\nwrote {json_path}");
    assert_eq!(
        nondeterministic, 0,
        "{nondeterministic} benchmark(s) produced a different join under parallel screening"
    );
}
