//! # parsynt-bench
//!
//! The harness binaries that regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md's experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — summarization time, #aux, join-synthesis time |
//! | `figure9` | Figure 9 — speedup vs threads, work-stealing backend |
//! | `openmp_vs_tbb` | §9 inline table — backends at 16 threads |
//! | `ablation_weak_inverse` | §9 — sketch restriction on/off |
//! | `ablation_incremental` | §9 — incremental vs monolithic synthesis |
//!
//! This library holds the shared measurement and formatting helpers.

use parsynt_runtime::RunConfig;
use parsynt_suite::native::Prepared;
use std::time::{Duration, Instant};

/// Median wall-clock time of `reps` executions of `f` (first run warm-up
/// excluded).
pub fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Measure the speedup of a prepared workload at `threads` relative to
/// its sequential run; returns `(sequential_time, parallel_time)`.
pub fn measure_speedup(
    prepared: &dyn Prepared,
    cfg: RunConfig,
    reps: usize,
) -> (Duration, Duration) {
    let seq_digest = prepared.sequential();
    let par_digest = prepared.parallel(cfg);
    assert_eq!(
        seq_digest, par_digest,
        "parallel execution diverged from sequential"
    );
    let seq = median_time(reps, || {
        std::hint::black_box(prepared.sequential());
    });
    let par = median_time(reps, || {
        std::hint::black_box(prepared.parallel(cfg));
    });
    (seq, par)
}

/// Format a duration as fractional seconds (2 decimals).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Render one row of a fixed-width ASCII table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn row_aligns_cells() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
