//! Criterion micro-benchmarks of the runtime: per-benchmark sequential
//! pass vs parallel execution, and the cost of looped vs scalar joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsynt_runtime::{Backend, RunConfig};
use parsynt_suite::native::workload;

const ELEMENTS: usize = 1_000_000;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends");
    group.sample_size(10);
    for id in ["sum", "mbbs", "mtls", "mode"] {
        let w = workload(id).expect("registered");
        let prepared = (w.prepare)(ELEMENTS, 7);
        group.bench_with_input(BenchmarkId::new("sequential", id), &(), |b, ()| {
            b.iter(|| std::hint::black_box(prepared.sequential()));
        });
        for (name, backend) in [
            ("static4", Backend::Static),
            ("stealing4", Backend::WorkStealing),
        ] {
            let cfg = RunConfig {
                threads: 4,
                grain: 4_096,
                backend,
            };
            group.bench_with_input(BenchmarkId::new(name, id), &(), |b, ()| {
                b.iter(|| std::hint::black_box(prepared.parallel(cfg)));
            });
        }
    }
    group.finish();
}

fn bench_grain_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("grain");
    group.sample_size(10);
    let w = workload("sum").expect("registered");
    let prepared = (w.prepare)(ELEMENTS, 9);
    for grain in [256usize, 4_096, 50_000] {
        let cfg = RunConfig::work_stealing(4).with_grain(grain);
        group.bench_with_input(BenchmarkId::from_parameter(grain), &(), |b, ()| {
            b.iter(|| std::hint::black_box(prepared.parallel(cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_grain_sensitivity);
criterion_main!(benches);
