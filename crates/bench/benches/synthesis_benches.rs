//! Criterion micro-benchmarks of the synthesis substrates: the
//! normalization engine (the paper's "lightning fast" lifting claim) and
//! join synthesis on small instances.

use criterion::{criterion_group, criterion_main, Criterion};
use parsynt_lang::ast::{Expr, Interner, Sym};
use parsynt_lang::parse;
use parsynt_lift::discovery::discover;
use parsynt_rewrite::cost::Phase1Cost;
use parsynt_rewrite::normalize::Normalizer;
use parsynt_synth::examples::InputProfile;
use parsynt_synth::join::synthesize_join;
use parsynt_synth::report::SynthConfig;

fn mbbs_unfolding() -> (Sym, Expr) {
    let mut i = Interner::new();
    let s_sym = i.intern("s");
    let s = Expr::var(s_sym);
    let a1 = Expr::var(i.intern("a1"));
    let a2 = Expr::var(i.intern("a2"));
    let step1 = Expr::max(Expr::add(s, a1), Expr::int(0));
    let step2 = Expr::max(Expr::add(step1, a2), Expr::int(0));
    (s_sym, step2)
}

fn bench_normalization(c: &mut Criterion) {
    let (s_sym, unfolding) = mbbs_unfolding();
    let cost = Phase1Cost::new(move |x: Sym| x == s_sym);
    let normalizer = Normalizer::new();
    c.bench_function("normalize_mbbs_unfolding", |b| {
        b.iter(|| std::hint::black_box(normalizer.run(&unfolding, &cost).best_cost));
    });
}

fn bench_discovery(c: &mut Criterion) {
    let p = parse(
        "input a : seq<int>; state m : int = 0;\n\
         for i in 0 .. len(a) { m = max(m + a[i], 0); }",
    )
    .unwrap();
    c.bench_function("discover_sum_aux", |b| {
        b.iter(|| std::hint::black_box(discover(&p).specs.len()));
    });
}

fn bench_join_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_synthesis");
    group.sample_size(10);
    group.bench_function("sum_join", |b| {
        b.iter(|| {
            let mut p = parse(
                "input a : seq<int>; state s : int = 0;\n\
                 for i in 0 .. len(a) { s = s + a[i]; }",
            )
            .unwrap();
            let (r, _) =
                synthesize_join(&mut p, &InputProfile::default(), &SynthConfig::default()).unwrap();
            assert!(r.join.is_some());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_normalization,
    bench_discovery,
    bench_join_synthesis
);
criterion_main!(benches);
