//! Reference parallel execution of a synthesized parallelization.
//!
//! These executors run the *synthesized artifacts themselves* (the
//! transformed program and the synthesized join) through the interpreter
//! on real OS threads — the semantic cross-check that the produced
//! divide-and-conquer plan is a faithful parallelization. Performance
//! measurements use the native `parsynt-runtime` crate instead.

use crate::schema::{Outcome, Parallelization};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::StateVec;
use parsynt_lang::Value;
use parsynt_synth::join::apply_join;
use parsynt_trace as trace;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of a panic-isolated interpreted execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The final state vector.
    pub state: StateVec,
    /// Whether the parallel plan was abandoned and the state recomputed
    /// by the sequential interpreter.
    pub degraded: bool,
    /// Chunks whose first attempt panicked and whose retry succeeded.
    pub recovered_chunks: usize,
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

fn emit_worker_panic(chunk: usize, attempt: u32, payload: &str) {
    if trace::enabled() {
        trace::point(
            "execute",
            "worker_panic",
            &[
                ("chunk", chunk.into()),
                ("attempt", attempt.into()),
                ("payload", payload.into()),
            ],
        );
    }
}

fn emit_fallback(failed_chunks: usize) {
    if trace::enabled() {
        trace::point(
            "execute",
            "fallback_sequential",
            &[("failed_chunks", failed_chunks.into())],
        );
    }
}

/// Split `n` items into at most `parts` contiguous non-empty chunks.
pub(crate) fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Execute a divide-and-conquer parallelization on `inputs` with
/// `threads` worker threads: chunks of the outer dimension run in
/// parallel, results are combined left-to-right with the synthesized
/// join.
///
/// # Errors
///
/// Fails if the parallelization is not divide-and-conquer, or on any
/// interpreter error.
pub fn run_divide_and_conquer(
    parallelization: &Parallelization,
    inputs: &[Value],
    threads: usize,
) -> Result<StateVec> {
    run_divide_and_conquer_checked(parallelization, inputs, threads).map(|o| o.state)
}

/// Panic-isolated variant of [`run_divide_and_conquer`]: a panicking
/// chunk is caught, retried once on the calling thread, and persistent
/// failures (including a panicking join) degrade the run to one
/// sequential pass of the interpreter, reported via
/// [`ExecOutcome::degraded`].
///
/// # Errors
///
/// Fails if the parallelization is not divide-and-conquer, on any
/// interpreter error, or when even the sequential fallback panics.
pub fn run_divide_and_conquer_checked(
    parallelization: &Parallelization,
    inputs: &[Value],
    threads: usize,
) -> Result<ExecOutcome> {
    let Outcome::DivideAndConquer { join, vocab } = &parallelization.outcome else {
        return Err(LangError::eval("not a divide-and-conquer parallelization"));
    };
    let program = &parallelization.program;
    let f = RightwardFn::new(program)?;
    let n = inputs[f.main_input()]
        .len()
        .ok_or_else(|| LangError::eval("main input is not a sequence"))?;
    if n == 0 {
        return f.apply(inputs).map(|state| ExecOutcome {
            state,
            degraded: false,
            recovered_chunks: 0,
        });
    }
    let ranges = chunk_ranges(n, threads);
    let mut exec_span = trace::span("execute", "interp_divide_and_conquer");
    exec_span.record("threads", threads);
    trace::counter("execute", "chunks", ranges.len() as u64);
    trace::counter("execute", "joins", ranges.len().saturating_sub(1) as u64);

    // Each worker's panic is caught in the worker itself so the scope
    // always joins cleanly; interpreter errors pass through untouched.
    let guarded: Vec<std::result::Result<Result<StateVec>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| f.apply_slice(inputs, lo, hi)))
                        .map_err(|p| payload_string(p.as_ref()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                Err(payload) => Err(payload_string(payload.as_ref())),
            })
            .collect()
    });

    let mut recovered = 0usize;
    let mut partials: Vec<Result<StateVec>> = Vec::with_capacity(guarded.len());
    let mut failed = 0usize;
    let mut first_failure: Option<(usize, String)> = None;
    for (chunk, (result, &(lo, hi))) in guarded.into_iter().zip(&ranges).enumerate() {
        match result {
            Ok(partial) => partials.push(partial),
            Err(payload) => {
                emit_worker_panic(chunk, 0, &payload);
                match catch_unwind(AssertUnwindSafe(|| f.apply_slice(inputs, lo, hi))) {
                    Ok(partial) => {
                        recovered += 1;
                        partials.push(partial);
                    }
                    Err(p) => {
                        let payload = payload_string(p.as_ref());
                        emit_worker_panic(chunk, 1, &payload);
                        failed += 1;
                        first_failure.get_or_insert((chunk, payload));
                    }
                }
            }
        }
    }

    if failed == 0 {
        // The join runs synthesized code through the interpreter; guard
        // it like a chunk and degrade on panic.
        let joined = catch_unwind(AssertUnwindSafe(|| -> Result<StateVec> {
            let mut acc: Option<StateVec> = None;
            for partial in partials {
                let partial = partial?;
                acc = Some(match acc {
                    None => partial,
                    Some(left) => apply_join(program, vocab, join, &left, &partial)?,
                });
            }
            acc.ok_or_else(|| LangError::eval("empty input"))
        }));
        match joined {
            Ok(state) => {
                return state.map(|state| ExecOutcome {
                    state,
                    degraded: false,
                    recovered_chunks: recovered,
                })
            }
            Err(p) => {
                emit_worker_panic(0, 1, &payload_string(p.as_ref()));
            }
        }
    }

    emit_fallback(failed);
    match catch_unwind(AssertUnwindSafe(|| f.apply(inputs))) {
        Ok(state) => state.map(|state| ExecOutcome {
            state,
            degraded: true,
            recovered_chunks: recovered,
        }),
        Err(p) => {
            let (chunk, _) = first_failure.unwrap_or((0, String::new()));
            Err(LangError::eval(format!(
                "worker panicked on chunk {chunk}: {}",
                payload_string(p.as_ref())
            )))
        }
    }
}

/// Execute a map-only parallelization: all instances of the inner loop
/// nest run in parallel from the initial state (the memoryless map of
/// Prop. 4.3); the outer loop folds their results sequentially.
///
/// # Errors
///
/// Fails on interpreter errors; the program must be memoryless (its
/// outer phase may only consume the inner results).
pub fn run_map_only(
    parallelization: &Parallelization,
    inputs: &[Value],
    threads: usize,
) -> Result<StateVec> {
    run_map_only_checked(parallelization, inputs, threads).map(|o| o.state)
}

/// Panic-isolated variant of [`run_map_only`]: recovery mirrors
/// [`run_divide_and_conquer_checked`] — retry a panicking map chunk
/// once, then degrade to one sequential pass of the interpreter.
///
/// # Errors
///
/// Fails on interpreter errors, on non-memoryless programs, or when
/// even the sequential fallback panics.
pub fn run_map_only_checked(
    parallelization: &Parallelization,
    inputs: &[Value],
    threads: usize,
) -> Result<ExecOutcome> {
    let program = &parallelization.program;
    // The map phase runs every inner nest from the zero state; that is
    // only sound for (transformed) memoryless programs.
    let analysis = parsynt_lang::analysis::analyze(program);
    if !analysis.is_syntactically_memoryless() {
        return Err(LangError::eval(
            "run_map_only requires a memoryless program (run the schema first)",
        ));
    }
    let f = RightwardFn::new(program)?;
    let n = inputs[f.main_input()]
        .len()
        .ok_or_else(|| LangError::eval("main input is not a sequence"))?;
    if n == 0 {
        return f.apply(inputs).map(|state| ExecOutcome {
            state,
            degraded: false,
            recovered_chunks: 0,
        });
    }
    let ranges = chunk_ranges(n, threads);
    let mut exec_span = trace::span("execute", "interp_map_only");
    exec_span.record("threads", threads);
    trace::counter("execute", "chunks", ranges.len() as u64);

    // Parallel map: compute 𝒢(0̸)(δ_i) for every row, panics caught in
    // the worker so the scope always joins cleanly.
    type InnerBlock = Result<Vec<parsynt_lang::functional::InnerResult>>;
    let map_chunk = |lo: usize, hi: usize| -> InnerBlock {
        (lo..hi)
            .map(|i| f.inner_phase_from_zero(inputs, i))
            .collect()
    };
    let guarded: Vec<std::result::Result<InnerBlock, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let map_chunk = &map_chunk;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| map_chunk(lo, hi)))
                        .map_err(|p| payload_string(p.as_ref()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(block) => block,
                Err(payload) => Err(payload_string(payload.as_ref())),
            })
            .collect()
    });

    let mut recovered = 0usize;
    let mut blocks: Vec<InnerBlock> = Vec::with_capacity(guarded.len());
    let mut failed = 0usize;
    let mut first_failure: Option<(usize, String)> = None;
    for (chunk, (result, &(lo, hi))) in guarded.into_iter().zip(&ranges).enumerate() {
        match result {
            Ok(block) => blocks.push(block),
            Err(payload) => {
                emit_worker_panic(chunk, 0, &payload);
                match catch_unwind(AssertUnwindSafe(|| map_chunk(lo, hi))) {
                    Ok(block) => {
                        recovered += 1;
                        blocks.push(block);
                    }
                    Err(p) => {
                        let payload = payload_string(p.as_ref());
                        emit_worker_panic(chunk, 1, &payload);
                        failed += 1;
                        first_failure.get_or_insert((chunk, payload));
                    }
                }
            }
        }
    }

    if failed == 0 {
        // Sequential fold of the outer phase over the precomputed
        // results, guarded like a chunk.
        let folded = catch_unwind(AssertUnwindSafe(|| -> Result<StateVec> {
            let env = parsynt_lang::interp::init_env(program, inputs)?;
            let mut state = parsynt_lang::interp::read_state(program, &env)?;
            let mut i = 0usize;
            for chunk in blocks {
                for inner in chunk? {
                    state = f.outer_phase_from(inputs, i, &state, &inner)?;
                    i += 1;
                }
            }
            Ok(state)
        }));
        match folded {
            Ok(state) => {
                return state.map(|state| ExecOutcome {
                    state,
                    degraded: false,
                    recovered_chunks: recovered,
                })
            }
            Err(p) => {
                emit_worker_panic(0, 1, &payload_string(p.as_ref()));
            }
        }
    }

    emit_fallback(failed);
    match catch_unwind(AssertUnwindSafe(|| f.apply(inputs))) {
        Ok(state) => state.map(|state| ExecOutcome {
            state,
            degraded: true,
            recovered_chunks: recovered,
        }),
        Err(p) => {
            let (chunk, _) = first_failure.unwrap_or((0, String::new()));
            Err(LangError::eval(format!(
                "worker panicked on chunk {chunk}: {}",
                payload_string(p.as_ref())
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testplans;

    #[test]
    fn chunking_is_contiguous_and_complete() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 4, 7] {
                let ranges = chunk_ranges(n, parts);
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, n.min(expect.max(n)));
                if n > 0 {
                    assert_eq!(ranges.last().unwrap().1, n);
                }
            }
        }
    }

    #[test]
    fn dnc_execution_matches_sequential() {
        let plan = testplans::sum2d();
        let input = Value::seq2_of_ints(&[
            vec![1, 2, 3],
            vec![-4, 5, 6],
            vec![7, -8, 9],
            vec![1, 1, 1],
            vec![0, 2, -3],
        ]);
        let seq =
            parsynt_lang::interp::run_program(&plan.program, std::slice::from_ref(&input)).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = run_divide_and_conquer(plan, std::slice::from_ref(&input), threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn map_only_execution_matches_sequential() {
        let plan = testplans::balanced_parens();
        assert!(plan.is_map_only());
        // "(()" ")" "()" rows
        let input = Value::seq2_of_ints(&[vec![1, 1, -1], vec![-1], vec![1, -1]]);
        let seq =
            parsynt_lang::interp::run_program(&plan.program, std::slice::from_ref(&input)).unwrap();
        let par = run_map_only(plan, &[input], 3).unwrap();
        assert_eq!(
            par.scalar_named(&plan.program, "cnt"),
            seq.scalar_named(&plan.program, "cnt")
        );
    }
}
