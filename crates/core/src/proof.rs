//! Correctness artifacts for a synthesized parallelization.
//!
//! The paper (§9 "Correctness") verifies solutions in two steps: Rosette
//! performs bounded verification, and a Dafny proof-generation scheme
//! (from \[11\]) establishes correctness over all inputs. Offline we
//! mirror this with (a) randomized checking of the homomorphism law
//! through the reference interpreter, and (b) emission of the Dafny-style
//! proof obligations as text, including the vector lemmas the bold
//! benchmarks of Table 1 additionally needed (e.g.
//! `x⃗ + max(y⃗, z⃗) = max(x⃗ + y⃗, x⃗ + z⃗)`).

use crate::schema::{Outcome, Parallelization};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::pretty::program_to_string;
use parsynt_lang::Value;
use parsynt_synth::examples::{random_inputs, InputProfile};
use parsynt_synth::join::apply_join;
use parsynt_trace as trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Randomly check the homomorphism law `h(x • y) = h(x) ⊙ h(y)` for a
/// divide-and-conquer parallelization over `tests` random inputs and
/// split points. Returns the number of checks performed.
///
/// # Errors
///
/// Fails on the first violated instance (with a description), on
/// interpreter errors, or if the plan is not divide-and-conquer.
#[deprecated(
    since = "0.2.0",
    note = "use `PipelineReport::check_homomorphism(tests)` on the result of a `Pipeline` run"
)]
pub fn check_homomorphism_law(
    parallelization: &Parallelization,
    profile: &InputProfile,
    tests: usize,
    seed: u64,
) -> Result<usize> {
    homomorphism_law_checks(parallelization, profile, tests, seed)
}

/// Implementation shared by [`check_homomorphism_law`] and
/// `PipelineReport::check_homomorphism`.
pub(crate) fn homomorphism_law_checks(
    parallelization: &Parallelization,
    profile: &InputProfile,
    tests: usize,
    seed: u64,
) -> Result<usize> {
    let mut verify_span = trace::span("verify", "homomorphism_law");
    verify_span.record("tests", tests);
    let Outcome::DivideAndConquer { join, vocab } = &parallelization.outcome else {
        return Err(LangError::eval("not a divide-and-conquer parallelization"));
    };
    let program = &parallelization.program;
    let f = RightwardFn::new(program)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut performed = 0usize;
    while performed < tests {
        let inputs: Vec<Value> = random_inputs(&f, profile, &mut rng);
        let n = inputs[f.main_input()].len().unwrap_or(0);
        if n < 2 {
            continue;
        }
        let p = rng.gen_range(1..n);
        let left = f.apply_slice(&inputs, 0, p)?;
        let right = f.apply_slice(&inputs, p, n)?;
        let whole = f.apply(&inputs)?;
        let joined = apply_join(program, vocab, join, &left, &right)?;
        if joined != whole {
            return Err(LangError::eval(format!(
                "homomorphism law violated at split {p} of an input with {n} rows"
            )));
        }
        performed += 1;
    }
    Ok(performed)
}

/// Randomly check that the synthesized join is *associative*
/// (Definition 3.2 notes `⊙` is necessarily associative because
/// concatenation is): `(a ⊙ b) ⊙ c = a ⊙ (b ⊙ c)` over random
/// three-way splits. Returns the number of checks performed.
///
/// # Errors
///
/// Fails on the first violated instance or interpreter error.
pub fn check_join_associativity(
    parallelization: &Parallelization,
    profile: &InputProfile,
    tests: usize,
    seed: u64,
) -> Result<usize> {
    let Outcome::DivideAndConquer { join, vocab } = &parallelization.outcome else {
        return Err(LangError::eval("not a divide-and-conquer parallelization"));
    };
    let program = &parallelization.program;
    let f = RightwardFn::new(program)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut performed = 0usize;
    while performed < tests {
        let inputs: Vec<Value> = random_inputs(&f, profile, &mut rng);
        let n = inputs[f.main_input()].len().unwrap_or(0);
        if n < 3 {
            continue;
        }
        let p1 = rng.gen_range(1..n - 1);
        let p2 = rng.gen_range(p1 + 1..n);
        let a = f.apply_slice(&inputs, 0, p1)?;
        let b = f.apply_slice(&inputs, p1, p2)?;
        let c = f.apply_slice(&inputs, p2, n)?;
        let left_first = apply_join(
            program,
            vocab,
            join,
            &apply_join(program, vocab, join, &a, &b)?,
            &c,
        )?;
        let right_first = apply_join(
            program,
            vocab,
            join,
            &a,
            &apply_join(program, vocab, join, &b, &c)?,
        )?;
        if left_first != right_first {
            return Err(LangError::eval(format!(
                "join is not associative at splits ({p1}, {p2}) of {n} rows"
            )));
        }
        performed += 1;
    }
    Ok(performed)
}

/// *Exhaustively* check the homomorphism law over every small input:
/// all shapes with up to `max_rows` rows (each of uniform width up to
/// `max_cols`, and depth ≤ 2 for 3-D inputs) and elements drawn from
/// `values`, at every split point. This is the closest offline analogue
/// of Rosette's bounded verification — complete within the bound rather
/// than sampled. Returns the number of (input, split) instances checked.
///
/// The instance count grows as `|values|^(rows·cols)`; keep
/// `max_rows·max_cols·|values|` small (e.g. 3·2 over {-1,0,1} ≈ 10³
/// instances).
///
/// # Errors
///
/// Fails on the first violated instance or interpreter error.
pub fn check_homomorphism_law_exhaustive(
    parallelization: &Parallelization,
    max_rows: usize,
    max_cols: usize,
    values: &[i64],
) -> Result<usize> {
    let Outcome::DivideAndConquer { join, vocab } = &parallelization.outcome else {
        return Err(LangError::eval("not a divide-and-conquer parallelization"));
    };
    let program = &parallelization.program;
    let f = RightwardFn::new(program)?;
    let dim = program.inputs[f.main_input()].ty.dim();
    let mut performed = 0usize;
    for rows in 2..=max_rows {
        for cols in 1..=max_cols {
            let scalars_per_row = match dim {
                1 => 1,
                2 => cols,
                _ => cols * 2, // 3-D: rows-within-plane fixed at 2
            };
            let total = rows * scalars_per_row;
            let instances = values.len().checked_pow(total as u32).unwrap_or(usize::MAX);
            if instances > 200_000 {
                continue; // keep the bound tractable
            }
            let mut assignment = vec![0usize; total];
            loop {
                // Materialize the input for this assignment.
                let flat: Vec<i64> = assignment.iter().map(|&i| values[i]).collect();
                let input = match dim {
                    1 => Value::Seq(flat.iter().map(|&v| Value::Int(v)).collect()),
                    2 => Value::Seq(
                        flat.chunks(cols)
                            .map(|r| Value::Seq(r.iter().map(|&v| Value::Int(v)).collect()))
                            .collect(),
                    ),
                    _ => Value::Seq(
                        flat.chunks(cols * 2)
                            .map(|plane| {
                                Value::Seq(
                                    plane
                                        .chunks(cols)
                                        .map(|r| {
                                            Value::Seq(r.iter().map(|&v| Value::Int(v)).collect())
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                };
                let inputs = vec![input];
                let whole = f.apply(&inputs)?;
                for p in 1..rows {
                    let left = f.apply_slice(&inputs, 0, p)?;
                    let right = f.apply_slice(&inputs, p, rows)?;
                    let joined = apply_join(program, vocab, join, &left, &right)?;
                    if joined != whole {
                        return Err(LangError::eval(format!(
                            "homomorphism law violated exhaustively at split {p}                              of a {rows}x{cols} input"
                        )));
                    }
                    performed += 1;
                }
                // Next assignment (odometer).
                let mut k = 0;
                loop {
                    if k == total {
                        break;
                    }
                    assignment[k] += 1;
                    if assignment[k] < values.len() {
                        break;
                    }
                    assignment[k] = 0;
                    k += 1;
                }
                if k == total {
                    break;
                }
            }
        }
    }
    Ok(performed)
}

/// Emit the Dafny-style proof obligations for a parallelization: the
/// homomorphism lemma, the auxiliary-invariant lemmas, and the generic
/// vector lemmas. The output is documentation-grade Dafny-like text (no
/// Dafny toolchain is available offline); the bounded analogue is
/// [`check_homomorphism_law`].
pub fn proof_obligations(parallelization: &Parallelization) -> String {
    let program = &parallelization.program;
    let mut out = String::new();
    out.push_str("// ==== ParSynt proof obligations (Dafny-style) ====\n");
    out.push_str("// Source program (after lifting / summarization):\n");
    for line in program_to_string(program).lines() {
        out.push_str("//   ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    match &parallelization.outcome {
        Outcome::DivideAndConquer { join, .. } => {
            out.push_str(
                "lemma HomomorphismJoin(x: seq<Row>, y: seq<Row>)\n  \
                 ensures H(x + y) == Join(H(x), H(y))\n{\n  \
                 // by induction on y, using LemmaFoldUnroll and the\n  \
                 // accumulator invariants below\n}\n\n",
            );
            for name in &parallelization.report.aux_homomorphism {
                out.push_str(&format!(
                    "lemma AuxInvariant_{name}(x: seq<Row>)\n  \
                     ensures H(x).{name} == Spec_{name}(x)\n\n"
                ));
            }
            if parallelization.report.looped_join {
                out.push_str(
                    "// Vector lemmas required for looped joins (the bold\n\
                     // benchmarks of Table 1):\n\
                     lemma VecAddMaxDistributes(x: Vec, y: Vec, z: Vec)\n  \
                     ensures VecAdd(x, VecMax(y, z)) == VecMax(VecAdd(x, y), VecAdd(x, z))\n\n",
                );
            }
            out.push_str("// Synthesized join ⊙:\n");
            for line in join.render(program).lines() {
                out.push_str("//   ");
                out.push_str(line);
                out.push('\n');
            }
        }
        Outcome::MapOnly => {
            out.push_str(
                "lemma MemorylessMap(d: State, row: Row)\n  \
                 ensures Step(d, row) == Merge(d, InnerFromZero(row))\n{\n  \
                 // Prop. 7.2: every member of the inner family is\n  \
                 // ⊚-homomorphic\n}\n",
            );
        }
        Outcome::Unparallelizable { reason } => {
            out.push_str(&format!("// no obligations: {reason}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::run_schema;
    use parsynt_lang::parse;
    use parsynt_synth::report::SynthConfig;

    fn parallelize(p: &parsynt_lang::ast::Program) -> Parallelization {
        run_schema(p, &InputProfile::default(), &SynthConfig::default()).unwrap()
    }

    #[test]
    fn law_holds_for_synthesized_sum_join() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let plan = parallelize(&p);
        let checks = homomorphism_law_checks(&plan, &InputProfile::default(), 50, 42).unwrap();
        assert_eq!(checks, 50);
    }

    #[test]
    fn exhaustive_check_covers_all_small_sums() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let plan = parallelize(&p);
        let checks = check_homomorphism_law_exhaustive(&plan, 3, 2, &[-1, 0, 1]).unwrap();
        // 2x1: 9 inputs x 1 split; 2x2: 81 x 1; 3x1: 27 x 2; 3x2: 729 x 2.
        assert_eq!(checks, 9 + 81 + 54 + 1458);
    }

    #[test]
    fn obligations_mention_join_and_lemmas() {
        let p = parse(
            "input a : seq<int>; state m : int = 0;\n\
             for i in 0 .. len(a) { m = max(m + a[i], 0); } return m;",
        )
        .unwrap();
        let plan = parallelize(&p);
        let text = proof_obligations(&plan);
        assert!(text.contains("HomomorphismJoin"));
        assert!(text.contains("AuxInvariant"), "text:\n{text}");
        assert!(text.contains("Synthesized join"));
    }
}
