//! The complexity budgets of §6 (Prop. 6.1, Def. 6.2, Cor. 6.3), as
//! checkable facts about a synthesized parallelization.
//!
//! A loop nest of depth `n` runs in `O(mⁿ)`; for the join-based
//! implementation to stay in `O(mⁿ)` over constantly many processors the
//! join must be `O(mⁿ⁻¹)` — operationally, a join over a summarized loop
//! of depth `k` may contain loops of depth at most `k − 1`, and lifted
//! auxiliaries may hold at most `O(mⁿ⁻¹)`-sized state (arrays of
//! dimension `< n`).

use crate::schema::{Outcome, Parallelization};
use parsynt_lang::ast::Stmt;
use parsynt_lang::error::{LangError, Result};

/// The budget facts derived from a parallelization (Def. 6.2 / Cor. 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Loop-nest depth `n` of the original program.
    pub n: usize,
    /// Summarized depth `k`.
    pub k: usize,
    /// Maximum loop depth permitted inside the join: `k − 1`.
    pub max_join_loop_depth: usize,
    /// Maximum dimension permitted for auxiliary state: `n − 1`.
    pub max_aux_dimension: usize,
}

/// Compute the budget for a parallelization.
pub fn budget_of(plan: &Parallelization) -> Budget {
    let n = plan.report.loop_depth;
    let k = plan.report.summarized_depth;
    Budget {
        n,
        k,
        max_join_loop_depth: k.saturating_sub(1),
        max_aux_dimension: n.saturating_sub(1),
    }
}

/// Validate that a divide-and-conquer parallelization respects its
/// complexity budget: the join's loop depth is at most `k − 1`
/// (Def. 6.2) and every state variable — including lifted auxiliaries —
/// has dimension at most `n − 1` (Cor. 6.3).
///
/// The synthesizer enforces these budgets by construction; this function
/// makes the invariant independently checkable (and is exercised over
/// the whole benchmark suite in the tests).
///
/// # Errors
///
/// Returns a descriptive error on the first violation; `Ok` for
/// map-only and failed outcomes (nothing to check).
pub fn validate_budget(plan: &Parallelization) -> Result<()> {
    let Outcome::DivideAndConquer { join, .. } = &plan.outcome else {
        return Ok(());
    };
    let budget = budget_of(plan);

    let join_depth = join.stmts.iter().map(Stmt::loop_depth).max().unwrap_or(0);
    if join_depth > budget.max_join_loop_depth {
        return Err(LangError::eval(format!(
            "join loop depth {join_depth} exceeds the budget k-1 = {} (Def. 6.2)",
            budget.max_join_loop_depth
        )));
    }

    for decl in &plan.program.state {
        let dim = decl.ty.dim();
        if dim > budget.max_aux_dimension {
            return Err(LangError::eval(format!(
                "state `{}` has dimension {dim}, beyond the O(m^{{n-1}}) space \
                 budget (Cor. 6.3)",
                plan.program.name(decl.name)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::run_schema;
    use parsynt_lang::parse;
    use parsynt_synth::examples::InputProfile;
    use parsynt_synth::report::SynthConfig;

    fn parallelize(p: &parsynt_lang::ast::Program) -> crate::schema::Parallelization {
        run_schema(p, &InputProfile::default(), &SynthConfig::default()).unwrap()
    }

    #[test]
    fn scalar_join_respects_budget() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let plan = parallelize(&p);
        let b = budget_of(&plan);
        assert_eq!(b.n, 2);
        assert_eq!(b.k, 1);
        assert_eq!(b.max_join_loop_depth, 0);
        validate_budget(&plan).expect("scalar join is loop-free");
    }

    #[test]
    fn looped_join_uses_exactly_the_budget() {
        // Column sums: k = 2, so the join may loop once — and does.
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; } }",
        )
        .unwrap();
        let plan = parallelize(&p);
        assert!(plan.report.looped_join);
        let b = budget_of(&plan);
        assert_eq!(b.max_join_loop_depth, 1);
        validate_budget(&plan).expect("single-loop join fits k-1 = 1");
    }

    #[test]
    fn map_only_plans_trivially_validate() {
        // Budget validation only constrains divide-and-conquer joins.
        let p = parse(
            "input a : seq<int>; state best : int = 0; state cur : int = 0;\n\
             for i in 0 .. len(a) {\n\
               if (a[i] == a[i]) { cur = cur + 1; } else { cur = 0; }\n\
               best = max(best, cur);\n\
             }",
        )
        .unwrap();
        // Whatever the outcome, validation must not fail spuriously.
        let plan = parallelize(&p);
        validate_budget(&plan).unwrap();
    }
}
