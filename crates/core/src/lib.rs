//! # parsynt-core
//!
//! The ParSynt parallelization schema (Figure 7 of *Modular
//! Divide-and-Conquer Parallelization of Nested Loops*), tying together
//! the language front end, the memoryless phase (summarization), the
//! lifting algorithms and join synthesis:
//!
//! ```text
//! sequential loop nest L
//!   └─ memoryless? ──no──▶ memoryless lift (⊚ synthesis + aux)   (IV, II)
//!   └─ summarized loop h_L
//!        └─ join ⊙ synthesis ──fail──▶ homomorphism lift (III) ──▶ retry
//!             └─ ok: divide-and-conquer parallel code            (I)
//!             └─ fail & n > k: parallelize the map only
//!             └─ fail & n = k: not efficiently parallelizable
//! ```
//!
//! The main entry point is the [`Pipeline`] builder, which runs the
//! schema under an ambient [`parsynt_trace`] tracer and returns a
//! [`PipelineReport`] with the parallelization, per-phase timings, and
//! event counters:
//!
//! ```
//! use parsynt_core::Pipeline;
//! let p = parsynt_lang::parse(
//!     "input a : seq<seq<int>>; state s : int = 0;\n\
//!      for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
//! ).unwrap();
//! let report = Pipeline::new(&p).run().unwrap();
//! assert!(report.parallelization.is_divide_and_conquer());
//! ```
//!
//! A run is configured through one [`PipelineConfig`] surface —
//! synthesis knobs ([`parsynt_synth::SynthConfig`], including parallel
//! candidate screening via `with_synth_threads`), execution knobs
//! ([`RunConfig`] for [`PipelineReport::execute`]) and tracing
//! ([`parsynt_trace::TraceConfig`]).
//!
//! The pre-0.2 free functions (`schema::parallelize`,
//! `schema::parallelize_with`, `proof::check_homomorphism_law`) remain
//! as deprecated module-level shims over the same schema body; they are
//! no longer re-exported at the crate root.

pub mod budget;
pub mod cache;
pub mod exec;
pub mod fingerprint;
pub mod pipeline;
pub mod proof;
pub mod schema;
pub mod stream;
#[cfg(test)]
mod testplans;

pub use budget::{budget_of, validate_budget, Budget};
pub use cache::{CacheStats, CachedSolution, SolutionCache};
pub use exec::{
    run_divide_and_conquer, run_divide_and_conquer_checked, run_map_only, run_map_only_checked,
    ExecOutcome,
};
pub use fingerprint::{fingerprint, fingerprint_hex};
pub use parsynt_runtime::{Backend, RunConfig};
pub use parsynt_trace::TraceConfig;
pub use parsynt_trace::{CancelToken, Deadline};
pub use pipeline::{
    Pipeline, PipelineConfig, PipelineReport, PipelineReportJson, SearchBudget, StreamReportJson,
    SCHEMA_VERSION,
};
pub use proof::{check_homomorphism_law_exhaustive, check_join_associativity, proof_obligations};
pub use schema::{Outcome, Parallelization, Report};
pub use stream::{chunk_value_inputs, run_stream_checked, StreamExecOutcome, StreamSnapshot};
