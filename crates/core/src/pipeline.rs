//! The [`Pipeline`] builder — the observable entry point to the
//! Figure-7 schema.
//!
//! Where the deprecated free functions ran the schema and returned only
//! the [`Parallelization`], a `Pipeline` run also *observes* it: every
//! instrumented stage (rewrite-rule firings, enumerator candidates,
//! CEGIS rounds, lifting attempts, per-phase wall clock) is streamed as
//! [`parsynt_trace`] events to an optional user sink and folded into the
//! [`PipelineReport`]'s `phase_timings` / `counters`.
//!
//! ```
//! use parsynt_core::Pipeline;
//! let p = parsynt_lang::parse(
//!     "input a : seq<seq<int>>; state s : int = 0;\n\
//!      for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
//! ).unwrap();
//! let report = Pipeline::new(&p).run().unwrap();
//! assert!(report.parallelization.is_divide_and_conquer());
//! assert!(report.phase_timings.contains_key("total"));
//! ```

use crate::proof::homomorphism_law_checks;
use crate::schema::{run_schema, Outcome, Parallelization, Report};
use parsynt_lang::ast::Program;
use parsynt_lang::error::Result;
use parsynt_synth::examples::InputProfile;
use parsynt_synth::report::SynthConfig;
use parsynt_trace as trace;
use parsynt_trace::sinks::{FanoutSink, PhaseAggregator};
use parsynt_trace::TraceSink;
use serde::{Deserialize, Serialize, Serializer};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A coarse cap on the synthesis search, applied on top of whatever
/// [`SynthConfig`] the pipeline carries. Named `SearchBudget` to keep it
/// distinct from the complexity [`crate::Budget`] of §6 (which bounds
/// the *solution*, not the search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Cap on sketch hole-filling attempts per variable.
    pub max_sketch_tries: usize,
    /// Examples every candidate must match during search.
    pub search_examples: usize,
    /// Extra examples used to boundedly verify a surviving candidate.
    pub verify_examples: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        let cfg = SynthConfig::default();
        SearchBudget {
            max_sketch_tries: cfg.max_sketch_tries,
            search_examples: cfg.search_examples,
            verify_examples: cfg.verify_examples,
        }
    }
}

impl SearchBudget {
    /// A small budget for smoke tests and interactive exploration.
    pub fn quick() -> Self {
        SearchBudget {
            max_sketch_tries: 50_000,
            search_examples: 16,
            verify_examples: 60,
        }
    }

    fn apply(self, mut cfg: SynthConfig) -> SynthConfig {
        cfg.max_sketch_tries = self.max_sketch_tries;
        cfg.search_examples = self.search_examples;
        cfg.verify_examples = self.verify_examples;
        cfg
    }
}

/// Builder for one observable schema run over a borrowed program.
///
/// Construction is cheap; nothing happens until [`Pipeline::run`].
pub struct Pipeline<'p> {
    program: &'p Program,
    profile: InputProfile,
    config: SynthConfig,
    budget: Option<SearchBudget>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl<'p> Pipeline<'p> {
    /// A pipeline over `program` with the default profile and config.
    pub fn new(program: &'p Program) -> Self {
        Pipeline {
            program,
            profile: InputProfile::default(),
            config: SynthConfig::default(),
            budget: None,
            sink: None,
        }
    }

    /// Set the input profile (shape/value distribution for bounded
    /// verification).
    pub fn profile(mut self, profile: InputProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the synthesis configuration.
    pub fn config(mut self, config: SynthConfig) -> Self {
        self.config = config;
        self
    }

    /// Cap the synthesis search; overrides the corresponding
    /// [`SynthConfig`] fields at [`Pipeline::run`] time.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Stream trace events to `sink` during the run. Sinks whose clones
    /// share state (e.g. `CollectingSink`) let the caller keep one end:
    /// `.sink(collecting.clone())`.
    pub fn sink<S: TraceSink + 'static>(self, sink: S) -> Self {
        self.sink_arc(Arc::new(sink))
    }

    /// Like [`Pipeline::sink`], for an already-shared sink.
    pub fn sink_arc(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Run the Figure-7 schema under an ambient tracer and aggregate the
    /// event stream into a [`PipelineReport`].
    ///
    /// # Errors
    ///
    /// Propagates interpreter/program errors; *failure to parallelize*
    /// is an outcome inside the report, not an error.
    pub fn run(self) -> Result<PipelineReport> {
        let cfg = match self.budget {
            Some(budget) => budget.apply(self.config),
            None => self.config,
        };
        let aggregator = PhaseAggregator::new();
        let tracer = match &self.sink {
            Some(user) => trace::Tracer::new(Arc::new(FanoutSink::new(vec![
                Arc::new(aggregator.clone()) as Arc<dyn TraceSink>,
                Arc::clone(user),
            ]))),
            None => trace::Tracer::from_sink(aggregator.clone()),
        };
        let guard = trace::set_ambient(tracer.clone());
        let started = Instant::now();
        let outcome = run_schema(self.program, &self.profile, &cfg);
        let total = started.elapsed();
        drop(guard);
        tracer.flush();
        let parallelization = outcome?;

        let mut phase_timings = aggregator.phase_timings();
        phase_timings.insert("total".to_owned(), total);
        Ok(PipelineReport {
            parallelization,
            phase_timings,
            counters: aggregator.counters(),
            profile: self.profile,
            seed: cfg.seed,
        })
    }
}

/// Everything one schema run produced: the parallelization itself plus
/// the aggregated observations.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The transformed program, outcome, and Table-1 statistics.
    pub parallelization: Parallelization,
    /// Total span wall-clock per phase (`analyze`, `summarize`,
    /// `join_search`, `normalize`, `synthesize`, `verify`, …) plus the
    /// overall `total`. Phases nest (e.g. `normalize` time also elapses
    /// inside `join_search`), so entries do not sum to `total`.
    pub phase_timings: BTreeMap<String, Duration>,
    /// Event counters keyed `"phase.name"` (e.g.
    /// `"synthesize.cegis_round"`, `"normalize.rule_fired"`).
    pub counters: BTreeMap<String, u64>,
    profile: InputProfile,
    seed: u64,
}

impl PipelineReport {
    /// The Table-1 statistics of the underlying run.
    pub fn report(&self) -> &Report {
        &self.parallelization.report
    }

    /// The input profile the run used (kept for re-verification).
    pub fn profile(&self) -> &InputProfile {
        &self.profile
    }

    /// The RNG seed the run used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-check the homomorphism law `h(x • y) = h(x) ⊙ h(y)` on
    /// `tests` random splits drawn from the run's own profile and seed.
    /// Returns the number of checks performed.
    ///
    /// # Errors
    ///
    /// Fails on the first violated instance, on interpreter errors, or
    /// if the plan is not divide-and-conquer.
    pub fn check_homomorphism(&self, tests: usize) -> Result<usize> {
        homomorphism_law_checks(&self.parallelization, &self.profile, tests, self.seed)
    }

    /// The serializable view of this report.
    pub fn to_json_struct(&self) -> PipelineReportJson {
        let report = self.report();
        let (outcome, reason) = match &self.parallelization.outcome {
            Outcome::DivideAndConquer { .. } => ("divide_and_conquer", None),
            Outcome::MapOnly => ("map_only", None),
            Outcome::Unparallelizable { reason } => ("unparallelizable", Some(reason.clone())),
        };
        PipelineReportJson {
            outcome: outcome.to_owned(),
            reason,
            loop_depth: report.loop_depth,
            summarized_depth: report.summarized_depth,
            aux_memoryless: report.aux_memoryless.clone(),
            aux_homomorphism: report.aux_homomorphism.clone(),
            already_memoryless: report.already_memoryless,
            looped_join: report.looped_join,
            seed: self.seed,
            phase_timings: self
                .phase_timings
                .iter()
                .map(|(phase, d)| (phase.clone(), d.as_secs_f64()))
                .collect(),
            counters: self.counters.clone(),
        }
    }

    /// One-line JSON rendering of [`PipelineReport::to_json_struct`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_json_struct()).expect("report serializes")
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_struct()).expect("report serializes")
    }
}

impl Serialize for PipelineReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        self.to_json_struct().serialize(serializer)
    }
}

/// The JSON shape of a [`PipelineReport`] — flat, stable, and
/// round-trippable (timings as fractional seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReportJson {
    /// `"divide_and_conquer"`, `"map_only"`, or `"unparallelizable"`.
    pub outcome: String,
    /// Failure reason when `outcome == "unparallelizable"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
    /// Loop-nest depth `n`.
    pub loop_depth: usize,
    /// Summarized depth `k`.
    pub summarized_depth: usize,
    /// Auxiliaries added by the memoryless lift.
    pub aux_memoryless: Vec<String>,
    /// Auxiliaries added by the homomorphism lift.
    pub aux_homomorphism: Vec<String>,
    /// Whether the loop was memoryless as written.
    pub already_memoryless: bool,
    /// Whether the synthesized join contains a loop.
    pub looped_join: bool,
    /// RNG seed the run used.
    pub seed: u64,
    /// Per-phase wall clock, in seconds.
    pub phase_timings: BTreeMap<String, f64>,
    /// Event counters keyed `"phase.name"`.
    pub counters: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;
    use parsynt_trace::sinks::CollectingSink;

    fn sum2d() -> Program {
        parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap()
    }

    #[test]
    fn pipeline_matches_free_function_outcome() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
        assert_eq!(report.report().aux_count(), 0);
    }

    #[test]
    fn phase_timings_cover_the_figure_seven_stages() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        for phase in ["analyze", "summarize", "join_search", "synthesize", "total"] {
            assert!(
                report.phase_timings.contains_key(phase),
                "missing phase `{phase}`: {:?}",
                report.phase_timings.keys().collect::<Vec<_>>()
            );
        }
        assert!(report.phase_timings["total"] > Duration::ZERO);
        assert_eq!(report.counters["schema.outcome"], 1);
    }

    #[test]
    fn user_sink_sees_the_event_stream() {
        let p = sum2d();
        let sink = CollectingSink::new();
        let report = Pipeline::new(&p).sink(sink.clone()).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
        assert!(!sink.is_empty());
        let names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
        assert!(names.iter().any(|n| n == "cegis_round"), "{names:?}");
        assert!(names.iter().any(|n| n == "outcome"), "{names:?}");
    }

    #[test]
    fn budget_overrides_config() {
        let p = sum2d();
        let budget = SearchBudget {
            max_sketch_tries: 10_000,
            search_examples: 12,
            verify_examples: 40,
        };
        let report = Pipeline::new(&p).budget(budget).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
    }

    #[test]
    fn check_homomorphism_reuses_run_profile() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        assert_eq!(report.check_homomorphism(20).unwrap(), 20);
    }

    #[test]
    fn report_json_round_trips() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        let json = report.to_json();
        let back: PipelineReportJson = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report.to_json_struct());
        assert_eq!(back.outcome, "divide_and_conquer");
        assert!(back.phase_timings["total"] > 0.0);
    }
}
