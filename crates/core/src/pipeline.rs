//! The [`Pipeline`] builder — the observable entry point to the
//! Figure-7 schema.
//!
//! Where the deprecated free functions ran the schema and returned only
//! the [`Parallelization`], a `Pipeline` run also *observes* it: every
//! instrumented stage (rewrite-rule firings, enumerator candidates,
//! CEGIS rounds, lifting attempts, per-phase wall clock) is streamed as
//! [`parsynt_trace`] events to an optional user sink and folded into the
//! [`PipelineReport`]'s `phase_timings` / `counters`.
//!
//! A run is configured through exactly one surface, [`PipelineConfig`],
//! applied with [`Pipeline::configure`]:
//!
//! ```
//! use parsynt_core::{Pipeline, PipelineConfig};
//! let p = parsynt_lang::parse(
//!     "input a : seq<seq<int>>; state s : int = 0;\n\
//!      for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
//! ).unwrap();
//! let report = Pipeline::new(&p)
//!     .configure(PipelineConfig::default().with_seed(7))
//!     .run()
//!     .unwrap();
//! assert!(report.parallelization.is_divide_and_conquer());
//! assert!(report.phase_timings.contains_key("total"));
//! ```
//!
//! Attaching a [`SolutionCache`] with [`Pipeline::cache`] short-circuits
//! the run when the program's normalized-form [`crate::fingerprint`] has
//! been solved before: the cached [`Parallelization`] and plan are
//! re-served without any synthesis, and the report carries a
//! `cache.hit` counter and no synthesis phase timings.

use crate::cache::{CachedSolution, SolutionCache};
use crate::exec::{run_divide_and_conquer_checked, run_map_only_checked};
use crate::fingerprint::{fingerprint, fingerprint_hex};
use crate::proof::homomorphism_law_checks;
use crate::schema::{run_schema, Outcome, Parallelization, Report};
use crate::stream::{chunk_value_inputs, run_stream_checked, StreamSnapshot};
use parsynt_lang::ast::Program;
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::interp::StateVec;
use parsynt_lang::Value;
use parsynt_runtime::RunConfig;
use parsynt_synth::examples::InputProfile;
use parsynt_synth::report::SynthConfig;
use parsynt_trace as trace;
use parsynt_trace::sinks::{FanoutSink, PhaseAggregator, WriterSink};
use parsynt_trace::{TraceConfig, TraceSink};
use serde::{Deserialize, Serialize, Serializer};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version of the [`PipelineReportJson`] wire format. Bumped whenever a
/// field is added, removed, or changes meaning; consumers (the CLI's
/// `--json` output and the daemon's responses share this one shape)
/// should reject versions they do not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// A coarse cap on the synthesis search, applied on top of whatever
/// [`SynthConfig`] the pipeline carries. Named `SearchBudget` to keep it
/// distinct from the complexity [`crate::Budget`] of §6 (which bounds
/// the *solution*, not the search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Cap on sketch hole-filling attempts per variable.
    pub max_sketch_tries: usize,
    /// Examples every candidate must match during search.
    pub search_examples: usize,
    /// Extra examples used to boundedly verify a surviving candidate.
    pub verify_examples: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        let cfg = SynthConfig::default();
        SearchBudget {
            max_sketch_tries: cfg.max_sketch_tries,
            search_examples: cfg.search_examples,
            verify_examples: cfg.verify_examples,
        }
    }
}

impl SearchBudget {
    /// A small budget for smoke tests and interactive exploration.
    pub fn quick() -> Self {
        SearchBudget {
            max_sketch_tries: 50_000,
            search_examples: 16,
            verify_examples: 60,
        }
    }

    fn apply(self, mut cfg: SynthConfig) -> SynthConfig {
        cfg.max_sketch_tries = self.max_sketch_tries;
        cfg.search_examples = self.search_examples;
        cfg.verify_examples = self.verify_examples;
        cfg
    }
}

/// The unified configuration surface of a pipeline run: what to
/// synthesize with ([`SynthConfig`]), how to execute the result
/// ([`RunConfig`]), what to observe ([`TraceConfig`]), which input
/// distribution to verify against ([`InputProfile`]), and an optional
/// [`SearchBudget`] cap.
///
/// ```
/// use parsynt_core::{PipelineConfig, SearchBudget};
/// let cfg = PipelineConfig::default()
///     .with_synth_threads(4)
///     .with_run_threads(8)
///     .with_budget(SearchBudget::quick())
///     .with_seed(7);
/// assert_eq!(cfg.synth.threads, 4);
/// assert_eq!(cfg.run.threads, 8);
/// assert!(cfg.budget.is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Synthesis-engine knobs (examples, sketches, screening threads).
    pub synth: SynthConfig,
    /// Execution knobs for [`PipelineReport::execute`] (threads, grain,
    /// backend).
    pub run: RunConfig,
    /// Tracing options (JSONL event stream).
    pub trace: TraceConfig,
    /// Shape/value distribution used for example generation and bounded
    /// verification.
    pub profile: InputProfile,
    /// Optional coarse search cap; overrides the corresponding `synth`
    /// fields at [`Pipeline::run`] time.
    pub budget: Option<SearchBudget>,
}

impl PipelineConfig {
    /// Replace the synthesis configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> Self {
        self.synth = synth;
        self
    }

    /// Replace the execution configuration.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Replace the tracing configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Set the input profile (shape/value distribution for bounded
    /// verification).
    pub fn with_profile(mut self, profile: InputProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Cap the synthesis search; overrides the corresponding
    /// [`SynthConfig`] fields at [`Pipeline::run`] time.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Set the candidate-screening thread count of the synthesis
    /// engine (clamped to at least 1; 1 = sequential CEGIS).
    pub fn with_synth_threads(mut self, threads: usize) -> Self {
        self.synth = self.synth.with_threads(threads);
        self
    }

    /// Set the worker-thread count used to execute the synthesized
    /// parallelization.
    pub fn with_run_threads(mut self, threads: usize) -> Self {
        self.run = self.run.with_threads(threads);
        self
    }

    /// Override the synthesis RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.synth = self.synth.with_seed(seed);
        self
    }

    /// Bound the synthesis search with a [`parsynt_trace::Deadline`];
    /// when it expires the run reports `Unparallelizable` with a
    /// `deadline exceeded` reason instead of searching further.
    ///
    /// There is exactly one deadline slot: this method and
    /// [`PipelineConfig::with_timeout_ms`] both write it, and the **last
    /// call wins** — `with_timeout_ms(5).with_deadline(Deadline::none())`
    /// is unlimited, and `with_deadline(d).with_timeout_ms(5)` is a 5 ms
    /// budget regardless of `d`.
    pub fn with_deadline(mut self, deadline: parsynt_trace::Deadline) -> Self {
        self.synth = self.synth.with_deadline(deadline);
        self
    }

    /// Shorthand for [`PipelineConfig::with_deadline`] with a deadline
    /// of `ms` milliseconds from now. Shares the single deadline slot
    /// with `with_deadline` — the last call wins.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.synth = self.synth.with_timeout_ms(ms);
        self
    }
}

/// Builder for one observable schema run over a borrowed program.
///
/// Construction is cheap; nothing happens until [`Pipeline::run`].
/// The canonical form is `Pipeline::new(program).configure(cfg).run()`;
/// everything a run needs besides the program, a sink, and a cache
/// lives in the [`PipelineConfig`].
pub struct Pipeline<'p> {
    program: &'p Program,
    config: PipelineConfig,
    sink: Option<Arc<dyn TraceSink>>,
    cache: Option<Arc<SolutionCache>>,
}

impl<'p> Pipeline<'p> {
    /// A pipeline over `program` with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Pipeline {
            program,
            config: PipelineConfig::default(),
            sink: None,
            cache: None,
        }
    }

    /// Set the full [`PipelineConfig`] (synthesis, execution, tracing,
    /// profile, and budget). This is the single configuration entry
    /// point; the pre-0.3 per-part setters (`profile`, `config`,
    /// `budget`) were removed in 0.4.0.
    pub fn configure(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Stream trace events to `sink` during the run. Sinks whose clones
    /// share state (e.g. `CollectingSink`) let the caller keep one end:
    /// `.sink(collecting.clone())`.
    pub fn sink<S: TraceSink + 'static>(self, sink: S) -> Self {
        self.sink_arc(Arc::new(sink))
    }

    /// Like [`Pipeline::sink`], for an already-shared sink.
    pub fn sink_arc(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Consult (and fill) `cache` during [`Pipeline::run`]: the
    /// program's normalized-form fingerprint is looked up first, and a
    /// hit re-serves the stored [`Parallelization`] and plan without
    /// running any synthesis. Fresh divide-and-conquer and map-only
    /// solutions are inserted after a miss; deadline-curtailed and
    /// unparallelizable outcomes are never cached (a retry with a larger
    /// budget could do better).
    pub fn cache(mut self, cache: Arc<SolutionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Run the Figure-7 schema under an ambient tracer and aggregate the
    /// event stream into a [`PipelineReport`].
    ///
    /// # Errors
    ///
    /// Propagates interpreter/program errors; *failure to parallelize*
    /// is an outcome inside the report, not an error.
    pub fn run(self) -> Result<PipelineReport> {
        let PipelineConfig {
            synth,
            run,
            trace: trace_cfg,
            profile,
            budget,
        } = self.config;
        let cfg = match budget {
            Some(budget) => budget.apply(synth),
            None => synth,
        };

        let key = self.cache.as_ref().map(|cache| {
            let key = fingerprint(self.program);
            (Arc::clone(cache), key)
        });
        if let Some((cache, key)) = &key {
            let started = Instant::now();
            if let Some(cached) = cache.lookup(*key) {
                let mut phase_timings = BTreeMap::new();
                phase_timings.insert("total".to_owned(), started.elapsed());
                let mut counters = BTreeMap::new();
                counters.insert("cache.hit".to_owned(), 1);
                return Ok(PipelineReport {
                    parallelization: cached.parallelization,
                    phase_timings,
                    counters,
                    degraded: false,
                    cache_hit: true,
                    plan: cached.plan,
                    profile,
                    seed: cached.seed,
                    run,
                    stream: None,
                });
            }
        }

        let aggregator = PhaseAggregator::new();
        let mut sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::new(aggregator.clone())];
        if let Some(user) = &self.sink {
            sinks.push(Arc::clone(user));
        }
        if let Some(path) = trace_cfg.jsonl_path() {
            let file_sink = WriterSink::to_file(path).map_err(|e| {
                LangError::eval(format!("cannot open trace file {}: {e}", path.display()))
            })?;
            sinks.push(Arc::new(file_sink));
        }
        let tracer = if sinks.len() == 1 {
            trace::Tracer::from_sink(aggregator.clone())
        } else {
            trace::Tracer::new(Arc::new(FanoutSink::new(sinks)))
        };
        let guard = trace::set_ambient(tracer.clone());
        let started = Instant::now();
        let outcome = run_schema(self.program, &profile, &cfg);
        let total = started.elapsed();
        drop(guard);
        tracer.flush();
        let parallelization = outcome?;
        let plan = parallelization.render_plan();

        if let Some((cache, key)) = &key {
            let worth_caching = !parallelization.report.deadline_exceeded
                && !matches!(parallelization.outcome, Outcome::Unparallelizable { .. });
            if worth_caching {
                cache.insert(
                    *key,
                    CachedSolution {
                        fingerprint: fingerprint_hex(*key),
                        parallelization: parallelization.clone(),
                        plan: plan.clone(),
                        seed: cfg.seed,
                    },
                );
            }
        }

        let mut phase_timings = aggregator.phase_timings();
        phase_timings.insert("total".to_owned(), total);
        Ok(PipelineReport {
            parallelization,
            phase_timings,
            counters: aggregator.counters(),
            degraded: false,
            cache_hit: false,
            plan,
            profile,
            seed: cfg.seed,
            run,
            stream: None,
        })
    }
}

/// Everything one schema run produced: the parallelization itself plus
/// the aggregated observations.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The transformed program, outcome, and Table-1 statistics.
    pub parallelization: Parallelization,
    /// Total span wall-clock per phase (`analyze`, `summarize`,
    /// `join_search`, `normalize`, `synthesize`, `verify`, …) plus the
    /// overall `total`. Phases nest (e.g. `normalize` time also elapses
    /// inside `join_search`), so entries do not sum to `total`. A cache
    /// hit has only `total` — no synthesis ran.
    pub phase_timings: BTreeMap<String, Duration>,
    /// Event counters keyed `"phase.name"` (e.g.
    /// `"synthesize.cegis_round"`, `"normalize.rule_fired"`). A cache
    /// hit has exactly one counter, `"cache.hit"`.
    pub counters: BTreeMap<String, u64>,
    /// Whether any [`PipelineReport::execute`] call on this report had
    /// to abandon its parallel plan and recover through the sequential
    /// interpreter (after a persistent worker panic).
    pub degraded: bool,
    /// Whether this report was re-served from a [`SolutionCache`]
    /// instead of a fresh synthesis run.
    pub cache_hit: bool,
    plan: String,
    profile: InputProfile,
    seed: u64,
    run: RunConfig,
    stream: Option<StreamReportJson>,
}

impl PipelineReport {
    /// The Table-1 statistics of the underlying run.
    pub fn report(&self) -> &Report {
        &self.parallelization.report
    }

    /// The rendered parallel plan. On a cache hit this is the stored
    /// byte-for-byte plan from the original synthesis.
    pub fn plan_text(&self) -> &str {
        &self.plan
    }

    /// The input profile the run used (kept for re-verification).
    pub fn profile(&self) -> &InputProfile {
        &self.profile
    }

    /// The RNG seed the run used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The execution configuration [`PipelineReport::execute`] uses.
    pub fn run_config(&self) -> &RunConfig {
        &self.run
    }

    /// Execute the synthesized parallelization on `inputs` with the
    /// pipeline's [`RunConfig`] thread count: divide-and-conquer plans
    /// run chunked with the synthesized join, map-only plans run the
    /// parallel map plus sequential fold.
    ///
    /// Worker panics are isolated: a panicking chunk is retried once,
    /// and persistent failures re-execute sequentially — in that case
    /// [`PipelineReport::degraded`] is set and a `fallback_sequential`
    /// trace event is emitted.
    ///
    /// # Errors
    ///
    /// Fails if the outcome is unparallelizable, on any interpreter
    /// error, or when even the sequential fallback panics.
    pub fn execute(&mut self, inputs: &[Value]) -> Result<StateVec> {
        let outcome = match &self.parallelization.outcome {
            Outcome::DivideAndConquer { .. } => {
                run_divide_and_conquer_checked(&self.parallelization, inputs, self.run.threads)?
            }
            Outcome::MapOnly => {
                run_map_only_checked(&self.parallelization, inputs, self.run.threads)?
            }
            Outcome::Unparallelizable { reason } => {
                return Err(LangError::eval(format!(
                    "cannot execute an unparallelizable plan ({reason})"
                )))
            }
        };
        self.degraded |= outcome.degraded;
        Ok(outcome.state)
    }

    /// Execute the synthesized parallelization as an online aggregation:
    /// the main input is consumed in `chunk_rows`-row chunks, each chunk
    /// summarized in parallel and folded into the running state (by the
    /// synthesized join for divide-and-conquer plans, by continuing the
    /// sequential outer fold for map-only plans). The end-of-input state
    /// is byte-identical to [`PipelineReport::execute`] on the whole
    /// input, and the run is summarized in the report's
    /// [`stream`](PipelineReport::stream_report) block.
    ///
    /// # Errors
    ///
    /// As [`PipelineReport::execute`], plus an error on an empty stream
    /// (zero rows leave input-dependent initializers undefined).
    pub fn execute_stream(&mut self, inputs: &[Value], chunk_rows: usize) -> Result<StateVec> {
        self.execute_stream_with(inputs, chunk_rows, 0, |_| {})
    }

    /// Like [`PipelineReport::execute_stream`], additionally handing
    /// every `snapshot_every`-th progressive partial-prefix
    /// [`StreamSnapshot`] to `on_snapshot` (0 = no snapshots).
    ///
    /// # Errors
    ///
    /// As [`PipelineReport::execute_stream`].
    pub fn execute_stream_with<F>(
        &mut self,
        inputs: &[Value],
        chunk_rows: usize,
        snapshot_every: usize,
        on_snapshot: F,
    ) -> Result<StateVec>
    where
        F: FnMut(&StreamSnapshot),
    {
        let chunks = chunk_value_inputs(&self.parallelization, inputs, chunk_rows)?;
        let out = run_stream_checked(
            &self.parallelization,
            chunks,
            self.run.threads,
            snapshot_every,
            on_snapshot,
        )?;
        self.degraded |= out.degraded_chunks > 0;
        self.stream = Some(StreamReportJson {
            chunks: out.chunks,
            elements: out.elements,
            snapshots: out.snapshots,
            degraded_chunks: out.degraded_chunks,
            recovered_chunks: out.recovered_chunks,
            elapsed_secs: out.elapsed.as_secs_f64(),
        });
        Ok(out.state)
    }

    /// The summary of the last [`PipelineReport::execute_stream`] run on
    /// this report, if any. Batch-only reports carry no stream block and
    /// serialize byte-identically to pre-0.4 documents.
    pub fn stream_report(&self) -> Option<&StreamReportJson> {
        self.stream.as_ref()
    }

    /// Re-check the homomorphism law `h(x • y) = h(x) ⊙ h(y)` on
    /// `tests` random splits drawn from the run's own profile and seed.
    /// Returns the number of checks performed.
    ///
    /// # Errors
    ///
    /// Fails on the first violated instance, on interpreter errors, or
    /// if the plan is not divide-and-conquer.
    pub fn check_homomorphism(&self, tests: usize) -> Result<usize> {
        homomorphism_law_checks(&self.parallelization, &self.profile, tests, self.seed)
    }

    /// The serializable view of this report.
    pub fn to_json_struct(&self) -> PipelineReportJson {
        let report = self.report();
        let (outcome, reason) = match &self.parallelization.outcome {
            Outcome::DivideAndConquer { .. } => ("divide_and_conquer", None),
            Outcome::MapOnly => ("map_only", None),
            Outcome::Unparallelizable { reason } => ("unparallelizable", Some(reason.clone())),
        };
        PipelineReportJson {
            schema_version: SCHEMA_VERSION,
            outcome: outcome.to_owned(),
            reason,
            loop_depth: report.loop_depth,
            summarized_depth: report.summarized_depth,
            aux_memoryless: report.aux_memoryless.clone(),
            aux_homomorphism: report.aux_homomorphism.clone(),
            already_memoryless: report.already_memoryless,
            looped_join: report.looped_join,
            deadline_exceeded: report.deadline_exceeded,
            degraded: self.degraded,
            cache_hit: self.cache_hit,
            seed: self.seed,
            phase_timings: self
                .phase_timings
                .iter()
                .map(|(phase, d)| (phase.clone(), d.as_secs_f64()))
                .collect(),
            counters: self.counters.clone(),
            stream: self.stream.clone(),
        }
    }

    /// One-line JSON rendering of [`PipelineReport::to_json_struct`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_json_struct()).expect("report serializes")
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_struct()).expect("report serializes")
    }
}

impl Serialize for PipelineReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        self.to_json_struct().serialize(serializer)
    }
}

/// The JSON shape of a [`PipelineReport`] — flat, stable, versioned,
/// and round-trippable (timings as fractional seconds). This is the one
/// wire format: the CLI's `--json` output and the daemon's responses
/// both serialize exactly this struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReportJson {
    /// Wire-format version ([`SCHEMA_VERSION`]). Absent in pre-0.3
    /// documents, which deserialize as version 0.
    #[serde(default)]
    pub schema_version: u32,
    /// `"divide_and_conquer"`, `"map_only"`, or `"unparallelizable"`.
    pub outcome: String,
    /// Failure reason when `outcome == "unparallelizable"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
    /// Loop-nest depth `n`.
    pub loop_depth: usize,
    /// Summarized depth `k`.
    pub summarized_depth: usize,
    /// Auxiliaries added by the memoryless lift.
    pub aux_memoryless: Vec<String>,
    /// Auxiliaries added by the homomorphism lift.
    pub aux_homomorphism: Vec<String>,
    /// Whether the loop was memoryless as written.
    pub already_memoryless: bool,
    /// Whether the synthesized join contains a loop.
    pub looped_join: bool,
    /// Whether the synthesis search was cut short by its deadline.
    #[serde(default)]
    pub deadline_exceeded: bool,
    /// Whether an execution of this plan degraded to the sequential
    /// fallback after a persistent worker panic.
    #[serde(default)]
    pub degraded: bool,
    /// Whether the report was re-served from the solution cache.
    #[serde(default)]
    pub cache_hit: bool,
    /// RNG seed the run used.
    pub seed: u64,
    /// Per-phase wall clock, in seconds.
    pub phase_timings: BTreeMap<String, f64>,
    /// Event counters keyed `"phase.name"`.
    pub counters: BTreeMap<String, u64>,
    /// Streaming-execution summary, present only when the report ran
    /// [`PipelineReport::execute_stream`]. Batch responses omit the key
    /// entirely, keeping them byte-identical to pre-0.4 documents under
    /// the same [`SCHEMA_VERSION`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stream: Option<StreamReportJson>,
}

/// The `stream` block of a [`PipelineReportJson`]: how the online
/// aggregation consumed its input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReportJson {
    /// Stream chunks consumed.
    pub chunks: usize,
    /// Outer-dimension elements consumed.
    pub elements: u64,
    /// Progressive snapshots emitted.
    pub snapshots: usize,
    /// Chunks that degraded to a sequential re-run after persistent
    /// faults.
    pub degraded_chunks: usize,
    /// Panicking attempts recovered by a retry.
    pub recovered_chunks: usize,
    /// Wall clock of the whole streaming run, in seconds.
    pub elapsed_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;
    use parsynt_trace::sinks::CollectingSink;

    fn sum2d() -> Program {
        parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap()
    }

    #[test]
    fn pipeline_matches_free_function_outcome() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
        assert_eq!(report.report().aux_count(), 0);
        assert!(!report.cache_hit);
        assert!(report.plan_text().contains("divide-and-conquer"));
    }

    #[test]
    fn phase_timings_cover_the_figure_seven_stages() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        for phase in ["analyze", "summarize", "join_search", "synthesize", "total"] {
            assert!(
                report.phase_timings.contains_key(phase),
                "missing phase `{phase}`: {:?}",
                report.phase_timings.keys().collect::<Vec<_>>()
            );
        }
        assert!(report.phase_timings["total"] > Duration::ZERO);
        assert_eq!(report.counters["schema.outcome"], 1);
    }

    #[test]
    fn user_sink_sees_the_event_stream() {
        let p = sum2d();
        let sink = CollectingSink::new();
        let report = Pipeline::new(&p).sink(sink.clone()).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
        assert!(!sink.is_empty());
        let names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
        assert!(names.iter().any(|n| n == "cegis_round"), "{names:?}");
        assert!(names.iter().any(|n| n == "outcome"), "{names:?}");
    }

    #[test]
    fn budget_overrides_config() {
        let p = sum2d();
        let budget = SearchBudget {
            max_sketch_tries: 10_000,
            search_examples: 12,
            verify_examples: 40,
        };
        let report = Pipeline::new(&p)
            .configure(PipelineConfig::default().with_budget(budget))
            .run()
            .unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
    }

    #[test]
    fn check_homomorphism_reuses_run_profile() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        assert_eq!(report.check_homomorphism(20).unwrap(), 20);
    }

    #[test]
    fn pipeline_config_builders_compose() {
        let cfg = PipelineConfig::default()
            .with_synth(SynthConfig::default().with_depth(5))
            .with_run(RunConfig::static_schedule(2))
            .with_synth_threads(4)
            .with_run_threads(6)
            .with_profile(InputProfile::default())
            .with_seed(99);
        assert_eq!(cfg.synth.enum_cfg.max_size, 5);
        assert_eq!(cfg.synth.threads, 4);
        assert_eq!(cfg.synth.seed, 99);
        assert_eq!(cfg.run.threads, 6);
        assert!(cfg.budget.is_none());
        assert!(!cfg.trace.is_enabled());
    }

    #[test]
    fn deadline_and_timeout_share_one_slot_last_call_wins() {
        use parsynt_trace::Deadline;
        // timeout then unlimited deadline → unlimited
        let cfg = PipelineConfig::default()
            .with_timeout_ms(5)
            .with_deadline(Deadline::none());
        assert!(!cfg.synth.deadline.is_limited());
        // unlimited deadline then timeout → limited
        let cfg = PipelineConfig::default()
            .with_deadline(Deadline::none())
            .with_timeout_ms(5);
        assert!(cfg.synth.deadline.is_limited());
        // two timeouts → still the later one (limited, and expiring)
        let cfg = PipelineConfig::default()
            .with_timeout_ms(60_000)
            .with_timeout_ms(0);
        assert!(cfg.synth.deadline.is_expired());
    }

    #[test]
    fn configured_pipeline_executes_its_plan() {
        let p = sum2d();
        let mut report = Pipeline::new(&p)
            .configure(PipelineConfig::default().with_run_threads(3))
            .run()
            .unwrap();
        assert_eq!(report.run_config().threads, 3);
        let input = parsynt_lang::Value::seq2_of_ints(&[vec![1, 2], vec![3], vec![4, 5, 6]]);
        let par = report.execute(std::slice::from_ref(&input)).unwrap();
        let seq = parsynt_lang::interp::run_program(
            &report.parallelization.program,
            std::slice::from_ref(&input),
        )
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn trace_config_streams_jsonl_to_disk() {
        let p = sum2d();
        let dir = std::env::temp_dir().join("parsynt-pipeline-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let cfg = PipelineConfig::default().with_trace(TraceConfig::default().jsonl(&path));
        let report = Pipeline::new(&p).configure(cfg).run().unwrap();
        assert!(report.parallelization.is_divide_and_conquer());
        let text = std::fs::read_to_string(&path).unwrap();
        // WriterSink drops lines when serialization fails (some build
        // environments stub serde_json out), so only require content
        // where serialization demonstrably works.
        if serde_json::to_string(&42u64).is_ok() {
            assert!(!text.is_empty());
            for line in text.lines() {
                let event: parsynt_trace::Event = serde_json::from_str(line).unwrap();
                assert!(!event.phase.is_empty());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_round_trips() {
        let p = sum2d();
        let report = Pipeline::new(&p).run().unwrap();
        let json = report.to_json();
        let back: PipelineReportJson = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report.to_json_struct());
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.outcome, "divide_and_conquer");
        assert!(back.phase_timings["total"] > 0.0);
        // Batch responses never carry the 0.4 stream block — the
        // serialized document is byte-identical to pre-0.4 output.
        assert!(back.stream.is_none());
        assert!(!json.contains("\"stream\""), "{json}");
    }

    #[test]
    fn execute_stream_matches_batch_and_fills_the_stream_block() {
        let p = sum2d();
        let mut report = Pipeline::new(&p)
            .configure(PipelineConfig::default().with_run_threads(3))
            .run()
            .unwrap();
        let input = parsynt_lang::Value::seq2_of_ints(&[
            vec![1, 2],
            vec![3],
            vec![4, 5, 6],
            vec![-7],
            vec![8, 9],
        ]);
        let inputs = vec![input];
        let batch = report.execute(&inputs).unwrap();
        assert!(report.stream_report().is_none(), "batch run adds no block");

        let mut snaps = Vec::new();
        let streamed = report
            .execute_stream_with(&inputs, 2, 1, |s| snaps.push(s.clone()))
            .unwrap();
        assert_eq!(streamed, batch);
        let block = report.stream_report().expect("stream block recorded");
        assert_eq!((block.chunks, block.elements), (3, 5));
        assert_eq!(block.snapshots, snaps.len());
        assert_eq!(block.degraded_chunks, 0);
        assert_eq!(snaps.last().map(|s| s.elements), Some(5));

        // The JSON now carries the stream block and still round-trips.
        let json = report.to_json();
        assert!(json.contains("\"stream\""), "{json}");
        let back: PipelineReportJson = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stream.as_ref(), Some(block));

        // An empty stream is a typed error, not a bogus state.
        let empty = vec![parsynt_lang::Value::seq2_of_ints(&[])];
        assert!(report.execute_stream(&empty, 4).is_err());
    }

    #[test]
    fn cache_hit_skips_synthesis_and_reserves_the_same_plan() {
        let p = sum2d();
        let cache = Arc::new(SolutionCache::in_memory(8));
        let first = Pipeline::new(&p).cache(Arc::clone(&cache)).run().unwrap();
        assert!(!first.cache_hit);
        assert_eq!(cache.stats().misses, 1);

        let second = Pipeline::new(&p).cache(Arc::clone(&cache)).run().unwrap();
        assert!(second.cache_hit);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(second.plan_text(), first.plan_text());
        assert_eq!(second.seed(), first.seed());
        // No synthesis ran: only the total timing, only the hit counter.
        assert_eq!(
            second.phase_timings.keys().collect::<Vec<_>>(),
            vec!["total"]
        );
        assert_eq!(second.counters.get("cache.hit"), Some(&1));
        assert!(!second.phase_timings.contains_key("synthesize"));
    }

    #[test]
    fn deadline_curtailed_runs_are_not_cached() {
        let p = sum2d();
        let cache = Arc::new(SolutionCache::in_memory(8));
        let report = Pipeline::new(&p)
            .configure(PipelineConfig::default().with_timeout_ms(0))
            .cache(Arc::clone(&cache))
            .run()
            .unwrap();
        assert!(report.report().deadline_exceeded);
        assert_eq!(
            cache.stats().resident,
            0,
            "curtailed run must not be cached"
        );
        // A later unconstrained run misses, synthesizes, and caches.
        let fresh = Pipeline::new(&p).cache(Arc::clone(&cache)).run().unwrap();
        assert!(!fresh.cache_hit);
        assert!(fresh.parallelization.is_divide_and_conquer());
        assert_eq!(cache.stats().resident, 1);
    }
}
