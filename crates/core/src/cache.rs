//! Content-addressed solution cache: in-memory LRU plus optional
//! versioned on-disk persistence.
//!
//! Keys are [`crate::fingerprint::fingerprint`] values of the
//! normalized program; values are complete, serializable
//! [`CachedSolution`]s — the final [`Parallelization`] plus the
//! rendered plan — so a hit re-serves a previous synthesis without
//! re-running any of it, across process restarts.
//!
//! Disk layout (wasmtime-style versioned artifact dir):
//!
//! ```text
//! <cache_dir>/
//!   v<CACHE_VERSION>/
//!     <fingerprint-hex16>.json
//! ```
//!
//! The version segment bakes in the crate version and a hand-bumped
//! rule-set revision: any change to the rewrite rules, the fingerprint
//! function, or the serialized shape lands in a fresh directory, so
//! stale entries are never deserialized — they are simply orphaned.

use crate::fingerprint::fingerprint_hex;
use crate::schema::Parallelization;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bump when the rewrite rule set, the fingerprint function, or the
/// serialized solution shape changes incompatibly.
pub const RULESET_REVISION: u32 = 1;

/// The cache-format version segment: crate version × rule-set revision.
pub fn cache_version() -> String {
    format!("{}-r{}", env!("CARGO_PKG_VERSION"), RULESET_REVISION)
}

/// A complete cached synthesis result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedSolution {
    /// The fingerprint this solution was stored under (hex, for
    /// self-description of on-disk files).
    pub fingerprint: String,
    /// The full parallelization: final program, outcome (including any
    /// synthesized join), and the Table-1 report.
    pub parallelization: Parallelization,
    /// The rendered plan, byte-for-byte as first produced.
    pub plan: String,
    /// Seed the original synthesis ran under.
    pub seed: u64,
}

/// Counters exposed through `/stats` and the CLI.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// In-memory entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
}

/// In-memory LRU over fingerprints, with optional disk persistence.
#[derive(Debug)]
pub struct SolutionCache {
    inner: Mutex<Lru>,
    /// `<cache_dir>/v<version>`; entries are written here if set.
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct Lru {
    entries: HashMap<u64, CachedSolution>,
    /// Least-recently-used first.
    order: Vec<u64>,
    capacity: usize,
}

impl Lru {
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push(key);
    }
}

/// Default in-memory entry bound. Solutions are small (a program AST
/// plus a join body); hundreds are cheap, and the disk tier holds the
/// long tail.
pub const DEFAULT_CAPACITY: usize = 256;

impl SolutionCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory(capacity: usize) -> Self {
        SolutionCache {
            inner: Mutex::new(Lru {
                entries: HashMap::new(),
                order: Vec::new(),
                capacity: capacity.max(1),
            }),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache persisted under `cache_dir` (in its versioned
    /// subdirectory, which is created if absent).
    ///
    /// # Errors
    ///
    /// Fails if the versioned directory cannot be created.
    pub fn persistent(cache_dir: &Path, capacity: usize) -> io::Result<Self> {
        let dir = cache_dir.join(format!("v{}", cache_version()));
        std::fs::create_dir_all(&dir)?;
        let mut cache = SolutionCache::in_memory(capacity);
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// The versioned directory entries are persisted in, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", fingerprint_hex(key))))
    }

    /// Look up a fingerprint: memory first, then disk. A disk hit is
    /// promoted into memory.
    pub fn lookup(&self, key: u64) -> Option<CachedSolution> {
        {
            let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(found) = lru.entries.get(&key).cloned() {
                lru.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(found);
            }
        }
        if let Some(path) = self.entry_path(key) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(solution) = serde_json::from_str::<CachedSolution>(&text) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_memory(key, solution.clone());
                    return Some(solution);
                }
                // Unreadable entry: drop it rather than serving garbage.
                let _ = std::fs::remove_file(&path);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a solution in memory and, if persistent, on disk
    /// (atomically: temp file + rename).
    pub fn insert(&self, key: u64, solution: CachedSolution) {
        if let Some(path) = self.entry_path(key) {
            if let Ok(text) = serde_json::to_string(&solution) {
                let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
                if std::fs::write(&tmp, text).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
        self.insert_memory(key, solution);
    }

    fn insert_memory(&self, key: u64, solution: CachedSolution) {
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if lru.entries.insert(key, solution).is_none() && lru.entries.len() > lru.capacity {
            let victim = lru.order.remove(0);
            lru.entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        lru.touch(key);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let resident = {
            let lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            lru.entries.len() as u64
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Outcome, Report};
    use parsynt_lang::parse;

    fn sample_solution(tag: &str) -> CachedSolution {
        let program = parse(
            "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s + a[i]; }",
        )
        .unwrap();
        CachedSolution {
            fingerprint: tag.to_owned(),
            parallelization: Parallelization {
                program,
                outcome: Outcome::MapOnly,
                report: Report::default(),
            },
            plan: format!("plan-{tag}"),
            seed: 42,
        }
    }

    #[test]
    fn memory_lru_evicts_least_recently_used() {
        let cache = SolutionCache::in_memory(2);
        cache.insert(1, sample_solution("1"));
        cache.insert(2, sample_solution("2"));
        assert!(cache.lookup(1).is_some()); // 1 is now more recent than 2
        cache.insert(3, sample_solution("3"));
        assert!(cache.lookup(2).is_none(), "2 was the LRU victim");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
    }

    #[test]
    fn disk_entries_survive_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("parsynt-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = SolutionCache::persistent(&dir, 4).unwrap();
            cache.insert(77, sample_solution("77"));
        }
        let reopened = SolutionCache::persistent(&dir, 4).unwrap();
        let found = reopened.lookup(77).expect("persisted entry");
        assert_eq!(found.plan, "plan-77");
        assert_eq!(reopened.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_segment_partitions_the_directory() {
        let dir = std::env::temp_dir().join(format!("parsynt-cache-ver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SolutionCache::persistent(&dir, 4).unwrap();
        let sub = cache.dir().unwrap().to_path_buf();
        assert!(sub.starts_with(&dir));
        assert!(sub
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with(&format!("v{}", env!("CARGO_PKG_VERSION"))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
