//! Test-only cache of synthesized plans shared across this crate's unit
//! tests. Join synthesis for the balanced-parentheses fixture costs
//! minutes in a debug build, so each fixture is synthesized once per
//! test binary and handed out by reference.

use crate::schema::{run_schema, Parallelization};
use parsynt_lang::parse;
use parsynt_synth::examples::InputProfile;
use parsynt_synth::report::SynthConfig;
use std::sync::OnceLock;

/// The 2-d sum loop — synthesizes to divide-and-conquer in milliseconds.
pub(crate) fn sum2d() -> &'static Parallelization {
    static PLAN: OnceLock<Parallelization> = OnceLock::new();
    PLAN.get_or_init(|| {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .expect("sum2d parses");
        run_schema(&p, &InputProfile::default(), &SynthConfig::default()).expect("sum2d plan")
    })
}

/// The §2.1 balanced-parentheses counter — the map-only outcome whose
/// failed join search dominates test wall-clock.
pub(crate) fn balanced_parens() -> &'static Parallelization {
    static PLAN: OnceLock<Parallelization> = OnceLock::new();
    PLAN.get_or_init(|| {
        let p = parse(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
                 if (offset + lo < 0) { bal = false; }\n\
               }\n\
               offset = offset + lo;\n\
               if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
             }\n\
             return cnt;",
        )
        .expect("balanced-parens parses");
        let profile = InputProfile::default().with_choices(&[-1, 1]);
        run_schema(&p, &profile, &SynthConfig::default()).expect("balanced-parens plan")
    })
}
