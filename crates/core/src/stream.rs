//! Streaming execution of a synthesized parallelization through the
//! interpreter: online aggregation over chunks of the main input.
//!
//! Divide-and-conquer plans stream by the homomorphism law — each chunk
//! is summarized in parallel with [`run_divide_and_conquer_checked`] and
//! folded into the running state with the synthesized join ⊙, so the
//! state after chunk *k* equals the sequential run over the first *k*
//! chunks' concatenation. Map-only plans (Prop. 4.3) have no join, but
//! their inner nests are memoryless: each chunk's rows map in parallel
//! from the zero state and the sequential outer fold simply continues
//! from the running state.
//!
//! Faults stay chunk-local: a panic inside a chunk is retried and then
//! degraded by the per-chunk executor; a panicking join (or fold)
//! degrades *that stream chunk only* to a sequential re-run of its rows
//! from the running state via [`run_program_from`] — the end-of-input
//! state is byte-identical to the batch path either way.

use crate::exec::{chunk_ranges, run_divide_and_conquer_checked};
use crate::schema::{Outcome, Parallelization};
use parsynt_lang::error::{LangError, Result};
use parsynt_lang::functional::RightwardFn;
use parsynt_lang::interp::{init_env, read_state, run_program_from, StateVec};
use parsynt_lang::Value;
use parsynt_synth::join::apply_join;
use parsynt_trace as trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A progressive partial-prefix result of a streaming execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Stream chunks consumed so far.
    pub chunks: usize,
    /// Outer-dimension elements consumed so far.
    pub elements: u64,
    /// The state vector over the consumed prefix.
    pub state: StateVec,
    /// Wall clock since the stream opened.
    pub elapsed: Duration,
    /// Stream chunks that degraded to a sequential re-run.
    pub degraded_chunks: usize,
    /// Panicking attempts recovered by a retry.
    pub recovered_chunks: usize,
}

impl StreamSnapshot {
    /// Consumption rate in elements per second of wall clock.
    pub fn elements_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.elements as f64 / secs
        } else {
            0.0
        }
    }
}

/// End-of-input outcome of a streaming execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamExecOutcome {
    /// The final state vector — byte-identical to the batch run on the
    /// concatenation of all chunks.
    pub state: StateVec,
    /// Total stream chunks consumed.
    pub chunks: usize,
    /// Total outer-dimension elements consumed.
    pub elements: u64,
    /// Wall clock over the whole stream.
    pub elapsed: Duration,
    /// Stream chunks that degraded to a sequential re-run.
    pub degraded_chunks: usize,
    /// Panicking attempts recovered by a retry.
    pub recovered_chunks: usize,
    /// Snapshots emitted to the callback.
    pub snapshots: usize,
}

/// Chunk a batch input set for streaming: every yielded input set is the
/// original with the main input replaced by a `chunk_rows`-row slice of
/// its outer dimension.
///
/// # Errors
///
/// Fails when the main input is not a sequence.
pub fn chunk_value_inputs(
    parallelization: &Parallelization,
    inputs: &[Value],
    chunk_rows: usize,
) -> Result<Vec<Vec<Value>>> {
    let f = RightwardFn::new(&parallelization.program)?;
    let main = f.main_input();
    let n = inputs[main]
        .len()
        .ok_or_else(|| LangError::eval("main input is not a sequence"))?;
    let chunk_rows = chunk_rows.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(chunk_rows).max(1));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk_rows).min(n);
        let mut chunk = inputs.to_vec();
        chunk[main] = inputs[main].slice(lo, hi);
        out.push(chunk);
        lo = hi;
    }
    Ok(out)
}

/// Execute a parallelization as an online aggregation over an iterator
/// of chunked input sets (see [`chunk_value_inputs`] for the in-memory
/// chunker). After every `snapshot_every`-th chunk (0 = never) the
/// running prefix state is handed to `on_snapshot`.
///
/// # Errors
///
/// Fails on an unparallelizable plan, an empty stream (input-dependent
/// initializers leave no defined state), any interpreter error, or when
/// even a chunk's sequential re-run panics.
pub fn run_stream_checked<I, F>(
    parallelization: &Parallelization,
    chunks: I,
    threads: usize,
    snapshot_every: usize,
    mut on_snapshot: F,
) -> Result<StreamExecOutcome>
where
    I: IntoIterator<Item = Vec<Value>>,
    F: FnMut(&StreamSnapshot),
{
    if parallelization.is_unparallelizable() {
        return Err(LangError::eval("not a parallelizable plan"));
    }
    let program = &parallelization.program;
    let f = RightwardFn::new(program)?;
    let main = f.main_input();
    let mut exec_span = trace::span("execute", "interp_stream");
    exec_span.record("threads", threads);

    let started = Instant::now();
    let mut running: Option<StateVec> = None;
    let mut stats = StreamStats::default();

    for chunk_inputs in chunks {
        let n = chunk_inputs[main]
            .len()
            .ok_or_else(|| LangError::eval("main input is not a sequence"))?;
        if n == 0 {
            continue;
        }
        let state = match &parallelization.outcome {
            Outcome::DivideAndConquer { join, vocab } => push_chunk_dnc(
                parallelization,
                join,
                vocab,
                &chunk_inputs,
                threads,
                running.as_ref(),
                &mut stats,
            )?,
            Outcome::MapOnly => {
                push_chunk_map_only(program, &f, &chunk_inputs, threads, running, &mut stats)?
            }
            Outcome::Unparallelizable { .. } => unreachable!("rejected above"),
        };
        stats.chunks += 1;
        stats.elements += n as u64;
        if trace::enabled() {
            trace::point(
                "execute",
                "stream_chunk",
                &[
                    ("chunk", (stats.chunks - 1).into()),
                    ("items", n.into()),
                    ("degraded", (stats.degraded_chunks > 0).into()),
                ],
            );
            trace::counter("execute", "stream_elements", n as u64);
        }
        if snapshot_every > 0 && stats.chunks % snapshot_every == 0 {
            let snap = StreamSnapshot {
                chunks: stats.chunks,
                elements: stats.elements,
                state: state.clone(),
                elapsed: started.elapsed(),
                degraded_chunks: stats.degraded_chunks,
                recovered_chunks: stats.recovered_chunks,
            };
            if trace::enabled() {
                trace::point(
                    "execute",
                    "stream_snapshot",
                    &[
                        ("chunks", snap.chunks.into()),
                        ("elements", snap.elements.into()),
                        ("elements_per_sec", (snap.elements_per_sec() as u64).into()),
                    ],
                );
            }
            on_snapshot(&snap);
            stats.snapshots += 1;
        }
        running = Some(state);
    }

    let state = running.ok_or_else(|| {
        LangError::eval("empty stream: no elements consumed, so the state is undefined")
    })?;
    Ok(StreamExecOutcome {
        state,
        chunks: stats.chunks,
        elements: stats.elements,
        elapsed: started.elapsed(),
        degraded_chunks: stats.degraded_chunks,
        recovered_chunks: stats.recovered_chunks,
        snapshots: stats.snapshots,
    })
}

#[derive(Default)]
struct StreamStats {
    chunks: usize,
    elements: u64,
    degraded_chunks: usize,
    recovered_chunks: usize,
    snapshots: usize,
}

/// Summarize one chunk in parallel and extend the running state with the
/// synthesized join. A panicking join retries once; a second panic
/// degrades this chunk to a sequential extension from the running state.
fn push_chunk_dnc(
    parallelization: &Parallelization,
    join: &parsynt_synth::join::SynthesizedJoin,
    vocab: &parsynt_synth::join::JoinVocab,
    chunk_inputs: &[Value],
    threads: usize,
    running: Option<&StateVec>,
    stats: &mut StreamStats,
) -> Result<StateVec> {
    let program = &parallelization.program;
    let out = run_divide_and_conquer_checked(parallelization, chunk_inputs, threads)?;
    stats.degraded_chunks += usize::from(out.degraded);
    stats.recovered_chunks += out.recovered_chunks;
    let Some(left) = running else {
        return Ok(out.state);
    };
    for attempt in 0..2u32 {
        match catch_unwind(AssertUnwindSafe(|| {
            apply_join(program, vocab, join, left, &out.state)
        })) {
            Ok(joined) => {
                stats.recovered_chunks += usize::from(attempt > 0);
                return joined;
            }
            Err(_) if attempt == 0 => {}
            Err(_) => break,
        }
    }
    // Join is persistently broken on this pair: extend the prefix by
    // re-running the loop body over this chunk's rows sequentially.
    stats.degraded_chunks += 1;
    catch_unwind(AssertUnwindSafe(|| {
        run_program_from(program, chunk_inputs, left)
    }))
    .unwrap_or_else(|_| Err(LangError::eval("sequential chunk re-run panicked")))
}

/// Map one chunk's rows in parallel from the zero state, then continue
/// the sequential outer fold from the running state. Any persistent
/// failure degrades this chunk to a sequential re-run of its rows.
fn push_chunk_map_only(
    program: &parsynt_lang::Program,
    f: &RightwardFn,
    chunk_inputs: &[Value],
    threads: usize,
    running: Option<StateVec>,
    stats: &mut StreamStats,
) -> Result<StateVec> {
    // The map phase runs inner nests from the zero state — only sound
    // for the (transformed) memoryless program.
    let analysis = parsynt_lang::analysis::analyze(program);
    if !analysis.is_syntactically_memoryless() {
        return Err(LangError::eval(
            "streaming map-only requires a memoryless program (run the schema first)",
        ));
    }
    let running = match running {
        Some(state) => state,
        // First chunk: the initial outer state comes from the program's
        // initializers evaluated against this chunk's inputs.
        None => {
            let env = init_env(program, chunk_inputs)?;
            read_state(program, &env)?
        }
    };
    let n = chunk_inputs[f.main_input()].len().unwrap_or_default();
    type InnerBlock = Result<Vec<parsynt_lang::functional::InnerResult>>;
    let map_chunk = |lo: usize, hi: usize| -> InnerBlock {
        (lo..hi)
            .map(|i| f.inner_phase_from_zero(chunk_inputs, i))
            .collect()
    };
    let ranges = chunk_ranges(n, threads);
    let guarded: Vec<std::result::Result<InnerBlock, ()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let map_chunk = &map_chunk;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| map_chunk(lo, hi))).map_err(drop)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(())))
            .collect()
    });

    let mut failed = false;
    let mut blocks: Vec<InnerBlock> = Vec::with_capacity(guarded.len());
    for (result, &(lo, hi)) in guarded.into_iter().zip(&ranges) {
        match result {
            Ok(block) => blocks.push(block),
            Err(()) => match catch_unwind(AssertUnwindSafe(|| map_chunk(lo, hi))) {
                Ok(block) => {
                    stats.recovered_chunks += 1;
                    blocks.push(block);
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            },
        }
    }

    if !failed {
        let folded = catch_unwind(AssertUnwindSafe(|| -> Result<StateVec> {
            let mut state = running.clone();
            let mut i = 0usize;
            for block in blocks {
                for inner in block? {
                    state = f.outer_phase_from(chunk_inputs, i, &state, &inner)?;
                    i += 1;
                }
            }
            Ok(state)
        }));
        if let Ok(state) = folded {
            return state;
        }
    }

    stats.degraded_chunks += 1;
    catch_unwind(AssertUnwindSafe(|| {
        run_program_from(program, chunk_inputs, &running)
    }))
    .unwrap_or_else(|_| Err(LangError::eval("sequential chunk re-run panicked")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testplans;
    use parsynt_lang::interp::run_program;

    fn rows(n: usize) -> Vec<Vec<i64>> {
        (0..n)
            .map(|i| {
                (0..3 + i % 4)
                    .map(|j| ((i * 7 + j * 13) % 23) as i64 - 11)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn dnc_stream_matches_batch_for_any_chunking() {
        let plan = testplans::sum2d();
        let input = Value::seq2_of_ints(&rows(37));
        let inputs = vec![input];
        let batch = run_program(&plan.program, &inputs).unwrap();
        for chunk_rows in [1, 4, 10, 37, 100] {
            let chunks = chunk_value_inputs(plan, &inputs, chunk_rows).unwrap();
            let mut snaps = Vec::new();
            let out = run_stream_checked(plan, chunks, 3, 1, |s| snaps.push(s.clone())).unwrap();
            assert_eq!(out.state, batch, "chunk_rows {chunk_rows}");
            assert_eq!(out.elements, 37);
            assert_eq!(out.degraded_chunks, 0);
            assert_eq!(out.snapshots, snaps.len());
            // Every snapshot is the batch state of exactly its prefix.
            for snap in &snaps {
                let prefix = vec![inputs[0].slice(0, snap.elements as usize)];
                let expect = run_program(&plan.program, &prefix).unwrap();
                assert_eq!(snap.state, expect, "prefix of {}", snap.elements);
            }
        }
    }

    #[test]
    fn map_only_stream_matches_batch() {
        let plan = testplans::balanced_parens();
        assert!(plan.is_map_only());
        let input = Value::seq2_of_ints(&[
            vec![1, 1, -1],
            vec![-1],
            vec![1, -1],
            vec![1, -1, 1, -1],
            vec![-1, 1],
        ]);
        let inputs = vec![input];
        let batch = run_program(&plan.program, &inputs).unwrap();
        for chunk_rows in [1, 2, 3, 5] {
            let chunks = chunk_value_inputs(plan, &inputs, chunk_rows).unwrap();
            let out = run_stream_checked(plan, chunks, 2, 0, |_| {}).unwrap();
            assert_eq!(
                out.state.scalar_named(&plan.program, "cnt"),
                batch.scalar_named(&plan.program, "cnt"),
                "chunk_rows {chunk_rows}"
            );
            assert_eq!(out.elements, 5);
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        let plan = testplans::sum2d();
        let err = run_stream_checked(plan, Vec::new(), 2, 0, |_| {}).unwrap_err();
        assert!(err.to_string().contains("empty stream"), "{err}");
    }
}
