//! Content-addressed fingerprints of a program's normalized form.
//!
//! The paper's observation is that a loop's *normalized functional
//! form* — not its surface text — determines its divide-and-conquer
//! parallelization. The fingerprint realizes that as a stable 64-bit
//! key:
//!
//! 1. **Symbol canonicalization** erases names: inputs are renumbered
//!    in declaration order, then state variables, then loop/`let`
//!    variables in body order. `for i`, `for idx` and `for qq` all
//!    fingerprint identically.
//! 2. **Expression normalization** erases surface algebra: every
//!    expression is constant-folded and chains of
//!    associative-commutative operators are flattened and sorted by
//!    their own content hash, so `s + a[i][j]` and `a[i][j] + s` agree.
//! 3. **Structural hashing** folds statements, declarations, types and
//!    the return list through the same SplitMix64 mixer that
//!    [`parsynt_synth::intern::TermPool::content_hash`] uses, with
//!    expressions hashed through an actual [`TermPool`].
//!
//! The result is the lookup key of [`crate::cache::SolutionCache`] —
//! stable across processes, platforms and interning orders.

use parsynt_lang::ast::{BinOp, Expr, LValue, Program, Stmt, Sym};
use parsynt_lang::Ty;
use parsynt_rewrite::rules::constant_fold;
use parsynt_synth::intern::TermPool;
use std::collections::HashMap;

/// One SplitMix64 mixing round folding `word` into `acc` (the same
/// mixer as `TermPool::content_hash`, re-stated here because the two
/// crates deliberately do not share private helpers).
fn fold(acc: u64, word: u64) -> u64 {
    let mut z = acc.wrapping_add(word).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Statement / structure discriminants. Fixed forever (cache format).
const TAG_LET: u64 = 0x11;
const TAG_ASSIGN: u64 = 0x12;
const TAG_IF: u64 = 0x13;
const TAG_FOR: u64 = 0x14;
const TAG_BLOCK_END: u64 = 0x15;
const TAG_INPUT: u64 = 0x21;
const TAG_STATE: u64 = 0x22;
const TAG_RETURNS: u64 = 0x23;
const TAG_TY_INT: u64 = 0x31;
const TAG_TY_BOOL: u64 = 0x32;
const TAG_TY_SEQ: u64 = 0x33;

/// Canonical renumbering of a program's symbols, independent of the
/// interner's insertion order and of every identifier's spelling.
struct Canon {
    map: HashMap<Sym, u32>,
    next: u32,
}

impl Canon {
    fn new(program: &Program) -> Self {
        let mut canon = Canon {
            map: HashMap::new(),
            next: 0,
        };
        for input in &program.inputs {
            canon.assign(input.name);
        }
        for state in &program.state {
            canon.assign(state.name);
        }
        canon
    }

    fn assign(&mut self, sym: Sym) -> u32 {
        let next = &mut self.next;
        *self.map.entry(sym).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        })
    }

    fn get(&mut self, sym: Sym) -> u32 {
        // Symbols first seen inside an expression (pathological but
        // possible for unchecked programs) are assigned on first use,
        // which is itself deterministic in traversal order.
        self.assign(sym)
    }
}

/// Normalize an expression: constant-fold, canonically renumber
/// variables, and sort the operand chains of associative-commutative
/// operators by content hash.
fn normal_form(e: &Expr, canon: &mut Canon, pool: &mut TermPool) -> Expr {
    let folded = constant_fold(e);
    ac_sorted(&renumber(&folded, canon), pool)
}

/// Rewrite every `Var` to its canonical number.
fn renumber(e: &Expr, canon: &mut Canon) -> Expr {
    match e {
        Expr::Int(_) | Expr::Bool(_) => e.clone(),
        Expr::Var(s) => Expr::Var(Sym(canon.get(*s))),
        Expr::Index(b, i) => {
            Expr::Index(Box::new(renumber(b, canon)), Box::new(renumber(i, canon)))
        }
        Expr::Len(x) => Expr::Len(Box::new(renumber(x, canon))),
        Expr::Zeros(x) => Expr::Zeros(Box::new(renumber(x, canon))),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(renumber(x, canon))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(renumber(a, canon)),
            Box::new(renumber(b, canon)),
        ),
        Expr::Ite(c, t, e2) => Expr::Ite(
            Box::new(renumber(c, canon)),
            Box::new(renumber(t, canon)),
            Box::new(renumber(e2, canon)),
        ),
    }
}

/// Flatten chains of one associative-commutative operator.
fn flatten_ac(e: &Expr, op: BinOp, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(o, a, b) if *o == op => {
            flatten_ac(a, op, out);
            flatten_ac(b, op, out);
        }
        other => out.push(other.clone()),
    }
}

/// Recursively sort AC-operator operand chains into hash order.
fn ac_sorted(e: &Expr, pool: &mut TermPool) -> Expr {
    match e {
        Expr::Binary(op, _, _) if op.is_associative() && op.is_commutative() => {
            let mut operands = Vec::new();
            flatten_ac(e, *op, &mut operands);
            let mut sorted: Vec<(u64, Expr)> = operands
                .iter()
                .map(|operand| {
                    let normalized = ac_sorted(operand, pool);
                    let id = pool.intern_expr(&normalized);
                    (pool.content_hash(id), normalized)
                })
                .collect();
            sorted.sort_by_key(|(hash, _)| *hash);
            let mut iter = sorted.into_iter().map(|(_, operand)| operand);
            let first = iter.next().expect("AC chain has at least two operands");
            iter.fold(first, |acc, operand| Expr::bin(*op, acc, operand))
        }
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => e.clone(),
        Expr::Index(b, i) => {
            Expr::Index(Box::new(ac_sorted(b, pool)), Box::new(ac_sorted(i, pool)))
        }
        Expr::Len(x) => Expr::Len(Box::new(ac_sorted(x, pool))),
        Expr::Zeros(x) => Expr::Zeros(Box::new(ac_sorted(x, pool))),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(ac_sorted(x, pool))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(ac_sorted(a, pool)),
            Box::new(ac_sorted(b, pool)),
        ),
        Expr::Ite(c, t, e2) => Expr::Ite(
            Box::new(ac_sorted(c, pool)),
            Box::new(ac_sorted(t, pool)),
            Box::new(ac_sorted(e2, pool)),
        ),
    }
}

fn hash_expr(acc: u64, e: &Expr, canon: &mut Canon, pool: &mut TermPool) -> u64 {
    let normalized = normal_form(e, canon, pool);
    let id = pool.intern_expr(&normalized);
    fold(acc, pool.content_hash(id))
}

fn hash_ty(acc: u64, ty: &Ty) -> u64 {
    match ty {
        Ty::Int => fold(acc, TAG_TY_INT),
        Ty::Bool => fold(acc, TAG_TY_BOOL),
        Ty::Seq(inner) => hash_ty(fold(acc, TAG_TY_SEQ), inner),
    }
}

fn hash_lvalue(acc: u64, lv: &LValue, canon: &mut Canon, pool: &mut TermPool) -> u64 {
    let mut acc = fold(acc, canon.get(lv.base) as u64);
    acc = fold(acc, lv.indices.len() as u64);
    for idx in &lv.indices {
        acc = hash_expr(acc, idx, canon, pool);
    }
    acc
}

fn hash_stmts(acc: u64, stmts: &[Stmt], canon: &mut Canon, pool: &mut TermPool) -> u64 {
    let mut acc = acc;
    for stmt in stmts {
        acc = match stmt {
            Stmt::Let { name, ty, init } => {
                let a = fold(acc, TAG_LET);
                let a = fold(a, canon.assign(*name) as u64);
                let a = hash_ty(a, ty);
                hash_expr(a, init, canon, pool)
            }
            Stmt::Assign { target, value } => {
                let a = fold(acc, TAG_ASSIGN);
                let a = hash_lvalue(a, target, canon, pool);
                hash_expr(a, value, canon, pool)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let a = fold(acc, TAG_IF);
                let a = hash_expr(a, cond, canon, pool);
                let a = hash_stmts(a, then_branch, canon, pool);
                let a = fold(a, TAG_BLOCK_END);
                let a = hash_stmts(a, else_branch, canon, pool);
                fold(a, TAG_BLOCK_END)
            }
            Stmt::For { var, bound, body } => {
                let a = fold(acc, TAG_FOR);
                let a = fold(a, canon.assign(*var) as u64);
                let a = hash_expr(a, bound, canon, pool);
                let a = hash_stmts(a, body, canon, pool);
                fold(a, TAG_BLOCK_END)
            }
        };
    }
    acc
}

/// Stable 64-bit fingerprint of `program`'s normalized form.
///
/// Two programs fingerprint identically iff they agree after name
/// erasure, constant folding, and AC-normalization — the equivalence
/// the solution cache is allowed to exploit. Semantically different
/// programs collide only with generic 64-bit-hash probability.
pub fn fingerprint(program: &Program) -> u64 {
    let mut canon = Canon::new(program);
    let mut pool = TermPool::new();
    let mut acc = 0x50_41_52_53_59_4e_54_00; // "PARSYNT\0"

    acc = fold(acc, program.inputs.len() as u64);
    for input in &program.inputs {
        let a = fold(acc, TAG_INPUT);
        let a = fold(a, canon.get(input.name) as u64);
        acc = hash_ty(a, &input.ty);
    }

    acc = fold(acc, program.state.len() as u64);
    for state in &program.state {
        let a = fold(acc, TAG_STATE);
        let a = fold(a, canon.get(state.name) as u64);
        let a = hash_ty(a, &state.ty);
        acc = hash_expr(a, &state.init, &mut canon, &mut pool);
    }

    acc = hash_stmts(acc, &program.body, &mut canon, &mut pool);

    acc = fold(acc, TAG_RETURNS);
    acc = fold(acc, program.returns.len() as u64);
    for ret in &program.returns {
        acc = fold(acc, canon.get(*ret) as u64);
    }

    acc
}

/// Render a fingerprint as the fixed-width hex token used in cache
/// file names and trace fields.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    const SUM: &str = "input a : seq<seq<int>>; state s : int = 0;\n\
         for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }";

    #[test]
    fn renaming_and_commutation_preserve_the_fingerprint() {
        // Same normal form: different identifiers, flipped `+` operands,
        // different whitespace, and a foldable initializer.
        let variant = "input xs : seq<seq<int>>;\n\
             state total : int = 1 - 1;\n\
             for outer in 0 .. len(xs) {\n\
               for inner in 0 .. len(xs[outer]) { total = xs[outer][inner] + total; }\n\
             }";
        let p1 = parse(SUM).unwrap();
        let p2 = parse(variant).unwrap();
        assert_eq!(fingerprint(&p1), fingerprint(&p2));
    }

    #[test]
    fn semantic_changes_change_the_fingerprint() {
        let different = [
            // max instead of +
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = max(s, a[i][j]); } }",
            // different initializer
            "input a : seq<seq<int>>; state s : int = 7;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
            // extra state variable
            "input a : seq<seq<int>>; state s : int = 0; state c : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; c = c + 1; } }",
        ];
        let base = fingerprint(&parse(SUM).unwrap());
        for src in different {
            assert_ne!(base, fingerprint(&parse(src).unwrap()), "{src}");
        }
    }

    #[test]
    fn non_commutative_operands_are_order_sensitive() {
        let sub_lr = "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = s - a[i]; }";
        let sub_rl = "input a : seq<int>; state s : int = 0;\n\
             for i in 0 .. len(a) { s = a[i] - s; }";
        assert_ne!(
            fingerprint(&parse(sub_lr).unwrap()),
            fingerprint(&parse(sub_rl).unwrap())
        );
    }

    #[test]
    fn fingerprint_is_deterministic_across_calls() {
        let p = parse(SUM).unwrap();
        assert_eq!(fingerprint(&p), fingerprint(&p));
        assert_eq!(fingerprint_hex(fingerprint(&p)).len(), 16);
    }
}
