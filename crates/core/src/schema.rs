//! The Figure-7 parallelization schema.

use parsynt_lang::analysis::analyze;
use parsynt_lang::ast::Program;
use parsynt_lang::error::Result;
use parsynt_lift::homomorphism::{homomorphism_lift, HomLiftOutcome};
use parsynt_lift::memoryless::memoryless_lift;
use parsynt_synth::examples::InputProfile;
use parsynt_synth::join::{JoinVocab, SynthesizedJoin};
use parsynt_synth::report::SynthConfig;
use parsynt_trace as trace;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How the loop nest was parallelized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Outcome {
    /// A full divide-and-conquer parallelization: split the input along
    /// the outer dimension, run the (memoryless, lifted) loop on each
    /// chunk, combine with the synthesized join.
    DivideAndConquer {
        /// The synthesized join `⊙`.
        join: SynthesizedJoin,
        /// Its vocabulary over the final program.
        vocab: JoinVocab,
    },
    /// The inner loop nest is a parallel map (Prop. 4.3) but the outer
    /// loop stays sequential — the summarized loop is not efficiently
    /// liftable to a homomorphism (the §2.1 balanced-parentheses case).
    MapOnly,
    /// No efficient divide-and-conquer parallelization exists within the
    /// complexity budget (Definition 6.2 / Theorem 6.4) — the ✗ entries
    /// of Table 1.
    Unparallelizable {
        /// Human-readable reason (which step failed).
        reason: String,
    },
}

/// Timing and lifting statistics — one column of Table 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Loop-nest depth `n`.
    pub loop_depth: usize,
    /// Summarized depth `k`.
    pub summarized_depth: usize,
    /// Time spent synthesizing the merge `⊚` ("summarization time").
    pub summarization_time: Duration,
    /// Time spent synthesizing the join `⊙` ("join synthesis time").
    pub join_time: Duration,
    /// Time spent in normalization-driven lifting (reported in §9 as
    /// "negligible", ≤ 12 ms).
    pub lift_time: Duration,
    /// Auxiliary accumulators added by the memoryless lift (the starred
    /// counts of Table 1).
    pub aux_memoryless: Vec<String>,
    /// Auxiliary accumulators added by the homomorphism lift.
    pub aux_homomorphism: Vec<String>,
    /// Whether the loop was memoryless as written.
    pub already_memoryless: bool,
    /// Whether the synthesized join contains a loop.
    pub looped_join: bool,
    /// Whether the run was cut short by the synthesis deadline. When
    /// set, the other fields describe the partial work done before the
    /// budget ran out.
    pub deadline_exceeded: bool,
}

impl Report {
    /// Total number of auxiliary accumulators ("# Aux required").
    pub fn aux_count(&self) -> usize {
        self.aux_memoryless.len() + self.aux_homomorphism.len()
    }
}

/// The result of running the schema on a program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Parallelization {
    /// The final program: memoryless-transformed and lifted; its
    /// sequential semantics (projected to `return`s) equals the input
    /// program's.
    pub program: Program,
    /// The parallelization outcome.
    pub outcome: Outcome,
    /// Statistics for the evaluation tables.
    pub report: Report,
}

impl Parallelization {
    /// Whether a full divide-and-conquer solution was produced.
    pub fn is_divide_and_conquer(&self) -> bool {
        matches!(self.outcome, Outcome::DivideAndConquer { .. })
    }

    /// Whether only the inner map was parallelized.
    pub fn is_map_only(&self) -> bool {
        matches!(self.outcome, Outcome::MapOnly)
    }

    /// Whether parallelization failed outright.
    pub fn is_unparallelizable(&self) -> bool {
        matches!(self.outcome, Outcome::Unparallelizable { .. })
    }

    /// Render the plan deterministically: the transformed program text
    /// plus, for divide-and-conquer outcomes, the synthesized join.
    ///
    /// This is the canonical textual form stored in the solution cache
    /// and served by the daemon — two renders of the same
    /// `Parallelization` are byte-identical.
    pub fn render_plan(&self) -> String {
        use parsynt_lang::pretty::program_to_string;
        match &self.outcome {
            Outcome::DivideAndConquer { join, .. } => format!(
                "outcome: divide-and-conquer\n{}\njoin:\n{}\n",
                program_to_string(&self.program),
                join.render(&self.program)
            ),
            Outcome::MapOnly => {
                format!("outcome: map-only\n{}\n", program_to_string(&self.program))
            }
            Outcome::Unparallelizable { reason } => {
                format!("outcome: unparallelizable ({reason})\n")
            }
        }
    }
}

/// Run the full schema with default input profile and synthesis budget.
///
/// # Errors
///
/// Propagates interpreter/program errors; *failure to parallelize* is an
/// [`Outcome`], not an error.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::new(program).run()` and read `.parallelization`"
)]
pub fn parallelize(program: &Program) -> Result<Parallelization> {
    run_schema(program, &InputProfile::default(), &SynthConfig::default())
}

/// Run the full schema with an explicit input profile (shape/value
/// distribution for bounded verification) and synthesis configuration.
///
/// # Errors
///
/// Propagates interpreter/program errors.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::new(program).configure(PipelineConfig::default()\
            .with_profile(..).with_synth(..)).run()`"
)]
pub fn parallelize_with(
    program: &Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<Parallelization> {
    run_schema(program, profile, cfg)
}

/// Record a deadline exhaustion as a trace point and build the
/// human-readable `Unparallelizable` reason for it.
fn emit_deadline_exceeded(candidates: usize) -> String {
    let reason = format!("deadline exceeded after {candidates} candidates");
    trace::point(
        "schema",
        "deadline_exceeded",
        &[
            ("reason", reason.as_str().into()),
            ("candidates", candidates.into()),
        ],
    );
    reason
}

/// Emit the final schema outcome as a trace point (one per run).
fn emit_outcome(outcome: &Outcome) {
    if trace::enabled() {
        let kind = match outcome {
            Outcome::DivideAndConquer { .. } => "divide_and_conquer",
            Outcome::MapOnly => "map_only",
            Outcome::Unparallelizable { .. } => "unparallelizable",
        };
        trace::point("schema", "outcome", &[("outcome", kind.into())]);
    }
}

/// The Figure-7 schema body, shared by [`crate::Pipeline`] and the
/// deprecated free-function entry points.
pub(crate) fn run_schema(
    program: &Program,
    profile: &InputProfile,
    cfg: &SynthConfig,
) -> Result<Parallelization> {
    let analysis = {
        let mut analyze_span = trace::span("analyze", "loop_nest");
        let analysis = analyze(program);
        analyze_span.record("loop_depth", analysis.loop_depth);
        analysis
    };
    let n = analysis.loop_depth;

    // Phase 1 (light grey in Figure 7): memorylessness, i.e. discovery
    // of the parallel map.
    let memoryless = memoryless_lift(program, profile, cfg)?;
    if memoryless.failed {
        let report = Report {
            loop_depth: n,
            summarized_depth: analysis.summarized_depth,
            summarization_time: memoryless.summarization_time,
            deadline_exceeded: memoryless.timed_out,
            ..Report::default()
        };
        let reason = if memoryless.timed_out {
            emit_deadline_exceeded(memoryless.candidates)
        } else {
            "no memoryless lift found (only the default lift of Prop. 5.4 applies)".to_owned()
        };
        let out = Parallelization {
            program: program.clone(),
            outcome: Outcome::Unparallelizable { reason },
            report,
        };
        emit_outcome(&out.outcome);
        return Ok(out);
    }
    let summarized = memoryless.program;
    let k = {
        let mut analyze_span = trace::span("analyze", "summarized_nest");
        let k = analyze(&summarized).summarized_depth;
        analyze_span.record("summarized_depth", k);
        k
    };

    // Phase 2 (light blue): parallelize the summarized loop — join
    // synthesis with homomorphism lifting.
    let hom = homomorphism_lift(&summarized, profile, cfg)?;
    match hom {
        HomLiftOutcome::Success {
            program: lifted,
            join,
            vocab,
            aux,
            join_time,
            lift_time,
            ..
        } => {
            let looped_join = join
                .stmts
                .iter()
                .any(|s| matches!(s, parsynt_lang::ast::Stmt::For { .. }));
            let report = Report {
                loop_depth: n,
                summarized_depth: k,
                summarization_time: memoryless.summarization_time,
                join_time,
                lift_time,
                aux_memoryless: memoryless.aux_added,
                aux_homomorphism: aux,
                already_memoryless: memoryless.already_memoryless,
                looped_join,
                deadline_exceeded: false,
            };
            let out = Parallelization {
                program: lifted,
                outcome: Outcome::DivideAndConquer { join, vocab },
                report,
            };
            emit_outcome(&out.outcome);
            Ok(out)
        }
        HomLiftOutcome::Failure {
            join_time,
            failed_var,
            timed_out,
            candidates,
        } => {
            let report = Report {
                loop_depth: n,
                summarized_depth: k,
                summarization_time: memoryless.summarization_time,
                join_time,
                aux_memoryless: memoryless.aux_added.clone(),
                already_memoryless: memoryless.already_memoryless,
                deadline_exceeded: timed_out,
                ..Report::default()
            };
            // A deadline exhaustion is not evidence the loop resists
            // parallelization — report it distinctly (with the partial
            // report) rather than claiming map-only is the best possible.
            let out = if timed_out {
                Parallelization {
                    program: summarized,
                    outcome: Outcome::Unparallelizable {
                        reason: emit_deadline_exceeded(memoryless.candidates + candidates),
                    },
                    report,
                }
            } else if n > k {
                // n > k: the inner nest still parallelizes as a map
                // (Prop. 4.3); otherwise summarization bought nothing and
                // the parallelization fails (§6.2).
                Parallelization {
                    program: summarized,
                    outcome: Outcome::MapOnly,
                    report,
                }
            } else {
                Parallelization {
                    program: summarized,
                    outcome: Outcome::Unparallelizable {
                        reason: format!(
                            "join synthesis failed{} and summarization does not reduce depth \
                             (n = k = {n})",
                            failed_var
                                .map(|v| format!(" at variable `{v}`"))
                                .unwrap_or_default()
                        ),
                    },
                    report,
                }
            };
            emit_outcome(&out.outcome);
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsynt_lang::parse;

    fn run_default(p: &Program) -> Parallelization {
        run_schema(p, &InputProfile::default(), &SynthConfig::default()).unwrap()
    }

    #[test]
    fn sum_parallelizes_without_aux() {
        let p = parse(
            "input a : seq<seq<int>>; state s : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
        )
        .unwrap();
        let out = run_default(&p);
        assert!(out.is_divide_and_conquer());
        assert_eq!(out.report.aux_count(), 0);
        // The inner loop updates `s` directly, so the schema synthesizes
        // the (trivial) merge `s = s + t` and summarizes.
        assert!(!out.report.already_memoryless);
        assert_eq!(out.report.loop_depth, 2);
        assert_eq!(out.report.summarized_depth, 1);
    }

    #[test]
    fn mbbs_needs_one_aux() {
        // Figure 1: mbbs lifts with aux_sum, then joins.
        let p = parse(
            "input a : seq<seq<seq<int>>>; state mbbs : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let plane : int = 0;\n\
               for j in 0 .. len(a[i]) { for k in 0 .. len(a[i][j]) {\n\
                 plane = plane + a[i][j][k]; } }\n\
               mbbs = max(mbbs + plane, 0);\n\
             }\n\
             return mbbs;",
        )
        .unwrap();
        let out = run_default(&p);
        assert!(out.is_divide_and_conquer());
        assert_eq!(
            out.report.aux_count(),
            1,
            "aux: {:?}",
            out.report.aux_homomorphism
        );
        assert_eq!(out.report.loop_depth, 3);
        assert_eq!(out.report.summarized_depth, 1);
        assert!(!out.report.looped_join);
    }

    #[test]
    fn bp_is_map_only() {
        // §2.1: after the memoryless lift, the summarized loop is not a
        // homomorphism and cannot be efficiently lifted — map only.
        let p = parse(
            "input a : seq<seq<int>>;\n\
             state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
             for i in 0 .. len(a) {\n\
               let lo : int = 0;\n\
               for j in 0 .. len(a[i]) {\n\
                 lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
                 if (offset + lo < 0) { bal = false; }\n\
               }\n\
               offset = offset + lo;\n\
               if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
             }\n\
             return cnt;",
        )
        .unwrap();
        let profile = InputProfile::default().with_choices(&[-1, 1]);
        let out = run_schema(&p, &profile, &SynthConfig::default()).unwrap();
        assert!(out.is_map_only(), "outcome: {:?}", out.outcome);
        assert_eq!(out.report.aux_memoryless.len(), 1);
    }

    #[test]
    fn mtls_parallelizes_with_looped_join() {
        let p = parse(
            "input a : seq<seq<int>>; state rec : seq<int> = zeros(len(a[0]));\n\
             state mtl : int = 0;\n\
             for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
               rec[j] = rec[j] + a[i][j]; mtl = max(mtl, rec[j]); } }\n\
             return mtl;",
        )
        .unwrap();
        let out = run_default(&p);
        assert!(out.is_divide_and_conquer(), "outcome: {:?}", out.outcome);
        assert!(out.report.looped_join);
        // §2.2: the max_rec[] array accumulator is required.
        assert!(out.report.aux_count() >= 1);
    }
}
