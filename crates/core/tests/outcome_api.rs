//! Black-box tests of the `Outcome` / `Parallelization` accessors and
//! the `Pipeline` report surface, from outside the crate.

use parsynt_core::{Outcome, Pipeline, PipelineConfig};
use parsynt_lang::parse;
use parsynt_synth::examples::InputProfile;

#[test]
fn accessors_agree_with_the_outcome_variant() {
    let p = parse(
        "input a : seq<seq<int>>; state s : int = 0;\n\
         for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
    )
    .unwrap();
    let plan = Pipeline::new(&p).run().unwrap().parallelization;
    assert!(matches!(plan.outcome, Outcome::DivideAndConquer { .. }));
    assert!(plan.is_divide_and_conquer());
    assert!(!plan.is_map_only());
    assert!(!plan.is_unparallelizable());
    // The lifted program keeps the input's sequential semantics
    // projected to its returns, so the report stats describe it.
    assert_eq!(plan.report.loop_depth, 2);
    assert_eq!(plan.report.summarized_depth, 1);
    assert_eq!(plan.report.aux_count(), 0);
}

#[test]
fn map_only_accessors() {
    // §2.1 balanced parentheses: summarizes but does not lift.
    let p = parse(
        "input a : seq<seq<int>>;\n\
         state offset : int = 0; state bal : bool = true; state cnt : int = 0;\n\
         for i in 0 .. len(a) {\n\
           let lo : int = 0;\n\
           for j in 0 .. len(a[i]) {\n\
             lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
             if (offset + lo < 0) { bal = false; }\n\
           }\n\
           offset = offset + lo;\n\
           if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
         }\n\
         return cnt;",
    )
    .unwrap();
    let profile = InputProfile::default().with_choices(&[-1, 1]);
    let report = Pipeline::new(&p)
        .configure(PipelineConfig::default().with_profile(profile))
        .run()
        .unwrap();
    let plan = &report.parallelization;
    assert!(matches!(plan.outcome, Outcome::MapOnly));
    assert!(plan.is_map_only());
    assert!(!plan.is_divide_and_conquer());
    assert!(!plan.is_unparallelizable());
    assert_eq!(report.counters["schema.outcome"], 1);
}

#[test]
fn unparallelizable_reason_is_reported() {
    // LCS-style cross-row dependence: no efficient lift (Table 1 ✗).
    let p = parse(
        "input a : seq<seq<int>>; state best : int = 0; state prev : int = 0;\n\
         for i in 0 .. len(a) { for j in 0 .. len(a[i]) {\n\
           prev = max(prev + a[i][j], best - prev);\n\
           best = max(best, prev); } }\n\
         return best;",
    )
    .unwrap();
    let plan = Pipeline::new(&p).run().unwrap().parallelization;
    if let Outcome::Unparallelizable { reason } = &plan.outcome {
        assert!(plan.is_unparallelizable());
        assert!(!reason.is_empty());
    } else {
        // Some search seeds may still find a lift; the accessor must
        // agree with the variant either way.
        assert_eq!(
            plan.is_divide_and_conquer(),
            matches!(plan.outcome, Outcome::DivideAndConquer { .. })
        );
    }
}
