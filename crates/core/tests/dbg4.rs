//! Scratch diagnostics (not part of the suite's assertions).
#[test]
#[ignore]
fn debug_placeholder() {}
