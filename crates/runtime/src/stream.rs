//! Streaming online aggregation over the synthesized homomorphism join.
//!
//! The paper's core guarantee — the synthesized join `⊙` is a
//! homomorphism, `h(x • y) = h(x) ⊙ h(y)` — is exactly what makes
//! incremental evaluation sound: the aggregate of a prefix can be
//! extended by one more chunk without revisiting anything already
//! consumed. A [`StreamSession`] exploits this to process chunked or
//! unbounded input (an iterator of chunks, a [`ReaderChunks`] text
//! source, or a [`PagedFileChunks`] out-of-core binary file larger than
//! RAM) while holding only the running aggregate and the current chunk
//! in memory.
//!
//! ```
//! use parsynt_runtime::{DncTask, Executor, RunConfig};
//! struct Sum;
//! impl DncTask for Sum {
//!     type Item = i64;
//!     type Acc = i64;
//!     fn identity(&self) -> i64 { 0 }
//!     fn work(&self, chunk: &[i64]) -> i64 { chunk.iter().sum() }
//!     fn join(&self, l: i64, r: i64) -> i64 { l + r }
//! }
//! let exec = Executor::new(RunConfig::work_stealing(2).with_grain(64));
//! let mut session = exec.stream(&Sum);
//! session.push_chunk(&[1, 2, 3]).unwrap();
//! let mid = session.snapshot(); // progressive partial-prefix result
//! assert_eq!((mid.value, mid.elements), (6, 3));
//! session.push_chunk(&[4, 5]).unwrap();
//! assert_eq!(session.finish().value, 15);
//! ```
//!
//! Each pushed chunk runs through the same panic-isolated parallel
//! machinery as a batch [`Executor::run`]: a faulting sub-chunk is
//! retried once and a persistent failure degrades *that stream chunk
//! only* to a sequential re-run, so the end-of-input aggregate stays
//! byte-identical to the batch path. Under the `fault-inject` feature
//! the executor's [`crate::faults::FaultPlan`] applies to every chunk;
//! fault sites are chunk-local (the same plan faults the same sub-chunk
//! positions in every stream chunk), keeping recovery deterministic for
//! any fixed chunking.
//!
//! Trace events (phase `execute`): `stream_chunk` per pushed chunk,
//! `stream_snapshot` per snapshot, and a `stream_elements` counter.

use crate::error::RuntimeError;
use crate::executor::{
    emit_worker_panic, payload_string, try_run_parallel_impl, Executor, RunOutcome,
};
use crate::task::DncTask;
use parsynt_trace as trace;
use std::fs::File;
use std::io::{self, BufRead};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

/// A progressive partial-prefix result: the aggregate of everything the
/// session has consumed so far.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot<A> {
    /// Stream chunks consumed so far.
    pub chunks: usize,
    /// Elements (outer-dimension items) consumed so far.
    pub elements: u64,
    /// The aggregate over the consumed prefix — by the homomorphism law
    /// equal to `work` on the concatenation of every chunk so far.
    pub value: A,
    /// Wall clock since the session opened.
    pub elapsed: Duration,
    /// Stream chunks that degraded to a sequential re-run.
    pub degraded_chunks: usize,
    /// Sub-chunk attempts that panicked (or were poisoned) and whose
    /// retry succeeded.
    pub recovered_chunks: usize,
}

impl<A> StreamSnapshot<A> {
    /// Consumption rate in elements per second of wall clock.
    pub fn elements_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.elements as f64 / secs
        } else {
            0.0
        }
    }
}

/// The end-of-input result of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome<A> {
    /// The aggregate over the whole stream.
    pub value: A,
    /// Total stream chunks consumed.
    pub chunks: usize,
    /// Total elements consumed.
    pub elements: u64,
    /// Wall clock from session open to finish.
    pub elapsed: Duration,
    /// Stream chunks that degraded to a sequential re-run.
    pub degraded_chunks: usize,
    /// Sub-chunk attempts recovered by the single retry.
    pub recovered_chunks: usize,
}

/// What can go wrong driving an I/O-backed stream: the source failed, or
/// the task itself is broken.
#[derive(Debug)]
pub enum StreamError {
    /// The chunk source failed to produce a chunk.
    Io(io::Error),
    /// A chunk or join panicked even after retry and sequential re-run.
    Runtime(RuntimeError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream source error: {e}"),
            StreamError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<RuntimeError> for StreamError {
    fn from(e: RuntimeError) -> Self {
        StreamError::Runtime(e)
    }
}

/// An open streaming aggregation over one task: push chunks, snapshot
/// the running prefix aggregate on demand, finish for the total.
///
/// Created by [`Executor::stream`]; the session borrows the executor's
/// configuration (and fault schedule) for every chunk it runs.
pub struct StreamSession<'e, T: DncTask> {
    exec: &'e Executor,
    task: &'e T,
    acc: Option<T::Acc>,
    chunks: usize,
    elements: u64,
    degraded_chunks: usize,
    recovered_chunks: usize,
    started: Instant,
}

impl<'e, T: DncTask> StreamSession<'e, T> {
    pub(crate) fn new(exec: &'e Executor, task: &'e T) -> Self {
        StreamSession {
            exec,
            task,
            acc: None,
            chunks: 0,
            elements: 0,
            degraded_chunks: 0,
            recovered_chunks: 0,
            started: Instant::now(),
        }
    }

    /// Consume one chunk: run it through the executor's panic-isolated
    /// parallel machinery, then extend the running aggregate with the
    /// synthesized join. Empty chunks are skipped (they would contribute
    /// the identity). A chunk whose sub-chunks fail persistently is
    /// re-run sequentially — degrading *this chunk only* — and a
    /// panicking join is retried once on cloned operands.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerPanicked`] only when even the sequential
    /// re-run of the chunk (or the join retry) panics — i.e. the task
    /// itself is broken. The session is left unchanged in that case.
    pub fn push_chunk(&mut self, chunk: &[T::Item]) -> Result<(), RuntimeError>
    where
        T::Acc: Clone,
    {
        if chunk.is_empty() {
            return Ok(());
        }
        let chunk_idx = self.chunks;
        let out: RunOutcome<T::Acc> =
            try_run_parallel_impl(self.task, chunk, self.exec.config(), self.exec.fault_arg())?;
        let value = match self.acc.take() {
            None => out.value,
            Some(left) => match join_guarded(self.task, left, out.value, chunk_idx) {
                Ok((joined, retried)) => {
                    self.recovered_chunks += usize::from(retried);
                    joined
                }
                Err((left, err)) => {
                    // Put the prefix back: the session survives a broken
                    // chunk and can keep streaming past it if the caller
                    // chooses to.
                    self.acc = Some(left);
                    return Err(err);
                }
            },
        };
        self.acc = Some(value);
        self.chunks += 1;
        self.elements += chunk.len() as u64;
        self.degraded_chunks += usize::from(out.degraded);
        self.recovered_chunks += out.recovered_chunks;
        if trace::enabled() {
            trace::point(
                "execute",
                "stream_chunk",
                &[
                    ("chunk", chunk_idx.into()),
                    ("items", chunk.len().into()),
                    ("degraded", out.degraded.into()),
                    ("recovered", out.recovered_chunks.into()),
                ],
            );
            trace::counter("execute", "stream_elements", chunk.len() as u64);
        }
        Ok(())
    }

    /// The progressive partial-prefix result: aggregate value, elements
    /// consumed, and wall clock. Before any chunk arrived the value is
    /// the task's identity.
    pub fn snapshot(&self) -> StreamSnapshot<T::Acc>
    where
        T::Acc: Clone,
    {
        let snap = StreamSnapshot {
            chunks: self.chunks,
            elements: self.elements,
            value: self.acc.clone().unwrap_or_else(|| self.task.identity()),
            elapsed: self.started.elapsed(),
            degraded_chunks: self.degraded_chunks,
            recovered_chunks: self.recovered_chunks,
        };
        if trace::enabled() {
            trace::point(
                "execute",
                "stream_snapshot",
                &[
                    ("chunks", snap.chunks.into()),
                    ("elements", snap.elements.into()),
                    ("elements_per_sec", (snap.elements_per_sec() as u64).into()),
                ],
            );
        }
        snap
    }

    /// Elements consumed so far.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Stream chunks consumed so far.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Close the session and return the end-of-input aggregate. For an
    /// empty stream the value is the task's identity.
    pub fn finish(self) -> StreamOutcome<T::Acc> {
        StreamOutcome {
            value: self.acc.unwrap_or_else(|| self.task.identity()),
            chunks: self.chunks,
            elements: self.elements,
            elapsed: self.started.elapsed(),
            degraded_chunks: self.degraded_chunks,
            recovered_chunks: self.recovered_chunks,
        }
    }
}

/// Join with panic isolation: retry once on cloned operands; on a second
/// panic hand the left (prefix) operand back so the session state
/// survives. Returns whether the retry path was taken.
#[allow(clippy::type_complexity)]
fn join_guarded<T: DncTask>(
    task: &T,
    left: T::Acc,
    right: T::Acc,
    chunk: usize,
) -> Result<(T::Acc, bool), (T::Acc, RuntimeError)>
where
    T::Acc: Clone,
{
    match catch_unwind(AssertUnwindSafe(|| task.join(left.clone(), right.clone()))) {
        Ok(acc) => Ok((acc, false)),
        Err(p) => {
            emit_worker_panic(chunk, 0, &payload_string(p.as_ref()));
            match catch_unwind(AssertUnwindSafe(|| task.join(left.clone(), right))) {
                Ok(acc) => Ok((acc, true)),
                Err(p) => {
                    let payload = payload_string(p.as_ref());
                    emit_worker_panic(chunk, 1, &payload);
                    Err((left, RuntimeError::WorkerPanicked { chunk, payload }))
                }
            }
        }
    }
}

/// Chunked text source: parses whitespace-separated `i64`s from any
/// [`BufRead`] into chunks of at most `chunk_len` items — `stdin`, a
/// pipe, or a log file streamed without ever materializing the whole
/// input.
pub struct ReaderChunks<R: BufRead> {
    reader: R,
    chunk_len: usize,
    carry: Vec<i64>,
    done: bool,
}

impl<R: BufRead> ReaderChunks<R> {
    /// Chunk `reader` into vectors of at most `chunk_len` parsed items.
    pub fn new(reader: R, chunk_len: usize) -> Self {
        ReaderChunks {
            reader,
            chunk_len: chunk_len.max(1),
            carry: Vec::new(),
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for ReaderChunks<R> {
    type Item = io::Result<Vec<i64>>;

    fn next(&mut self) -> Option<io::Result<Vec<i64>>> {
        if self.done {
            return None;
        }
        let mut chunk = std::mem::take(&mut self.carry);
        let mut line = String::new();
        while chunk.len() < self.chunk_len {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            for token in line.split_whitespace() {
                match token.parse::<i64>() {
                    Ok(v) => chunk.push(v),
                    Err(_) => {
                        self.done = true;
                        return Some(Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("not an integer: `{token}`"),
                        )));
                    }
                }
            }
        }
        // A long line can overshoot the chunk length; carry the excess
        // into the next chunk so chunk boundaries stay deterministic.
        if chunk.len() > self.chunk_len {
            self.carry = chunk.split_off(self.chunk_len);
        }
        if chunk.is_empty() {
            None
        } else {
            Some(Ok(chunk))
        }
    }
}

/// Out-of-core chunk source over a binary file of little-endian `i64`
/// records: fixed-size windows are paged in with positioned reads
/// (`pread`), the portable stand-in for an mmap'd view — only one
/// window is ever resident, so files larger than RAM stream fine.
#[cfg(unix)]
pub struct PagedFileChunks {
    file: File,
    window_items: usize,
    next_item: u64,
    total_items: u64,
}

#[cfg(unix)]
impl PagedFileChunks {
    /// Open `path` and page it in windows of `window_items` records.
    ///
    /// # Errors
    ///
    /// Propagates `open`/`metadata` failures; a file whose length is not
    /// a multiple of 8 bytes is invalid data.
    pub fn open(path: &Path, window_items: usize) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % 8 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of 8-byte records"),
            ));
        }
        Ok(PagedFileChunks {
            file,
            window_items: window_items.max(1),
            next_item: 0,
            total_items: len / 8,
        })
    }

    /// Total records in the file.
    pub fn total_items(&self) -> u64 {
        self.total_items
    }
}

#[cfg(unix)]
impl Iterator for PagedFileChunks {
    type Item = io::Result<Vec<i64>>;

    fn next(&mut self) -> Option<io::Result<Vec<i64>>> {
        use std::os::unix::fs::FileExt;
        if self.next_item >= self.total_items {
            return None;
        }
        let take = (self.total_items - self.next_item).min(self.window_items as u64) as usize;
        let mut raw = vec![0u8; take * 8];
        if let Err(e) = self.file.read_exact_at(&mut raw, self.next_item * 8) {
            self.next_item = self.total_items;
            return Some(Err(e));
        }
        self.next_item += take as u64;
        let window = raw
            .chunks_exact(8)
            .map(|b| i64::from_le_bytes(b.try_into().expect("8-byte chunk")))
            .collect();
        Some(Ok(window))
    }
}

/// Write a slice as the little-endian `i64` record format
/// [`PagedFileChunks`] reads — the fixture half of the out-of-core path
/// (benchmarks and tests generate inputs with it).
#[cfg(unix)]
pub fn write_i64_records(path: &Path, values: &[i64]) -> io::Result<()> {
    use std::io::Write;
    let mut out = io::BufWriter::new(File::create(path)?);
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    out.flush()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::executor::RunConfig;

    struct Sum;
    impl DncTask for Sum {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Non-commutative concatenation: catches reordered, dropped, or
    /// duplicated chunks.
    struct Concat;
    impl DncTask for Concat {
        type Item = i64;
        type Acc = Vec<i64>;
        fn identity(&self) -> Vec<i64> {
            Vec::new()
        }
        fn work(&self, chunk: &[i64]) -> Vec<i64> {
            chunk.to_vec()
        }
        fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
            l.extend(r);
            l
        }
    }

    fn data(n: usize) -> Vec<i64> {
        (0..n as i64).map(|x| (x * 7919) % 211 - 100).collect()
    }

    #[test]
    fn stream_equals_batch_for_any_chunking() {
        let d = data(5_000);
        let exec = Executor::new(RunConfig::work_stealing(3).with_grain(64));
        let batch = exec.run_sequential(&Concat, &d);
        for chunk_len in [1, 7, 64, 1_000, 5_000, 9_999] {
            let out = exec.run_stream(&Concat, d.chunks(chunk_len)).unwrap();
            assert_eq!(out.value, batch, "chunk_len {chunk_len}");
            assert_eq!(out.elements, d.len() as u64);
            assert_eq!(out.degraded_chunks, 0);
        }
    }

    #[test]
    fn snapshots_are_prefix_aggregates() {
        let d = data(1_000);
        let exec = Executor::new(RunConfig::work_stealing(2).with_grain(32));
        let mut session = exec.stream(&Concat);
        let mut consumed = 0usize;
        for chunk in d.chunks(137) {
            session.push_chunk(chunk).unwrap();
            consumed += chunk.len();
            let snap = session.snapshot();
            assert_eq!(snap.value, d[..consumed], "prefix of {consumed}");
            assert_eq!(snap.elements, consumed as u64);
        }
        assert_eq!(session.finish().value, d);
    }

    #[test]
    fn empty_stream_and_empty_chunks_yield_identity() {
        let exec = Executor::default();
        let out = exec.run_stream(&Sum, Vec::<Vec<i64>>::new()).unwrap();
        assert_eq!((out.value, out.chunks, out.elements), (0, 0, 0));
        let mut session = exec.stream(&Sum);
        session.push_chunk(&[]).unwrap();
        assert_eq!(session.snapshot().value, 0);
        let out = session.finish();
        assert_eq!((out.value, out.chunks), (0, 0));
    }

    #[test]
    fn persistent_chunk_failure_degrades_that_chunk_only() {
        /// Panics on any slice smaller than a whole 100-element stream
        /// chunk: every parallel sub-chunk attempt fails, the sequential
        /// re-run of the full chunk succeeds.
        struct SmallSlicePanic;
        impl DncTask for SmallSlicePanic {
            type Item = i64;
            type Acc = i64;
            fn identity(&self) -> i64 {
                0
            }
            fn work(&self, chunk: &[i64]) -> i64 {
                assert!(chunk.len() >= 100, "injected: chunk too small");
                chunk.iter().sum()
            }
            fn join(&self, l: i64, r: i64) -> i64 {
                l + r
            }
        }
        let d = data(500);
        let exec = Executor::new(RunConfig::work_stealing(4).with_grain(10));
        let out = exec.run_stream(&SmallSlicePanic, d.chunks(100)).unwrap();
        assert_eq!(out.value, d.iter().sum::<i64>());
        assert_eq!(out.degraded_chunks, 5, "every chunk degraded in place");
    }

    #[test]
    fn broken_join_is_a_typed_error_and_preserves_the_prefix() {
        struct JoinPanics;
        impl DncTask for JoinPanics {
            type Item = i64;
            type Acc = i64;
            fn identity(&self) -> i64 {
                0
            }
            fn work(&self, chunk: &[i64]) -> i64 {
                chunk.iter().sum()
            }
            fn join(&self, _l: i64, _r: i64) -> i64 {
                panic!("broken join")
            }
        }
        let exec = Executor::default();
        let mut session = exec.stream(&JoinPanics);
        session.push_chunk(&[1, 2, 3]).unwrap();
        let err = session.push_chunk(&[4]).unwrap_err();
        let RuntimeError::WorkerPanicked { payload, .. } = err;
        assert_eq!(payload, "broken join");
        // The prefix aggregate survived the failed push.
        assert_eq!(session.snapshot().value, 6);
    }

    #[test]
    fn reader_chunks_parse_and_chunk_deterministically() {
        let text = "1 2 3\n4\n\n5 6\n7 8 9 10\n";
        let chunks: Vec<Vec<i64>> = ReaderChunks::new(text.as_bytes(), 4)
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(
            chunks,
            vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10]]
        );
        let exec = Executor::default();
        let out = exec
            .run_stream_io(&Sum, ReaderChunks::new(text.as_bytes(), 4))
            .unwrap();
        assert_eq!(out.value, 55);
        assert_eq!(out.elements, 10);

        let err = exec
            .run_stream_io(&Sum, ReaderChunks::new("1 two 3".as_bytes(), 4))
            .unwrap_err();
        assert!(matches!(err, StreamError::Io(_)), "{err:?}");
    }

    #[cfg(unix)]
    #[test]
    fn paged_file_chunks_round_trip_out_of_core() {
        let d = data(10_000);
        let path =
            std::env::temp_dir().join(format!("parsynt-paged-chunks-{}.bin", std::process::id()));
        write_i64_records(&path, &d).unwrap();

        let source = PagedFileChunks::open(&path, 777).unwrap();
        assert_eq!(source.total_items(), d.len() as u64);
        let exec = Executor::new(RunConfig::work_stealing(2).with_grain(100));
        let out = exec.run_stream_io(&Concat, source).unwrap();
        assert_eq!(out.value, d, "paged windows re-concatenate exactly");
        assert_eq!(out.chunks, d.len().div_ceil(777));

        // A truncated (non-record-aligned) file is invalid data.
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        assert!(PagedFileChunks::open(&path, 10).is_err());
        std::fs::remove_file(&path).ok();
    }
}
