//! The parallel executors: work-stealing and static scheduling.

use crate::task::{DncTask, MapOnlyTask};
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;
use parsynt_trace as trace;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Scheduling backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// TBB-flavoured: grain-sized tasks on per-worker deques with
    /// stealing. Better load balance, slightly higher overhead.
    WorkStealing,
    /// OpenMP-flavoured static scheduling: one contiguous chunk per
    /// thread, no stealing.
    Static,
}

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Grain size in items (the paper's experiments use 50k elements).
    /// Only the work-stealing backend uses it.
    pub grain: usize,
    /// Scheduling backend.
    pub backend: Backend,
}

impl RunConfig {
    /// A work-stealing configuration with the paper's 50k grain.
    pub fn work_stealing(threads: usize) -> Self {
        RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::WorkStealing,
        }
    }

    /// A static-scheduling configuration.
    pub fn static_schedule(threads: usize) -> Self {
        RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::Static,
        }
    }

    /// Override the grain size.
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// Override the scheduling backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for RunConfig {
    /// Work-stealing over every available core with the paper's 50k
    /// grain — the setup of the §9 experiments.
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        RunConfig::work_stealing(threads)
    }
}

/// Run the task sequentially (the baseline all speedups are relative
/// to).
pub fn run_sequential<T: DncTask>(task: &T, data: &[T::Item]) -> T::Acc {
    task.work(data)
}

/// Run the task in parallel according to `config`.
///
/// Equivalent to `task.work(data)` whenever the join satisfies the
/// homomorphism law; chunk results are always joined in input order, so
/// non-commutative joins are safe.
pub fn run_parallel<T: DncTask>(task: &T, data: &[T::Item], config: RunConfig) -> T::Acc {
    let threads = config.threads.max(1);
    // `RunConfig::with_grain` clamps, but the struct is constructible
    // literally; a zero grain must never reach the chunk math.
    let grain = config.grain.max(1);
    if threads == 1 || data.len() <= grain {
        return task.work(data);
    }
    let mut exec_span = trace::span("execute", "run_parallel");
    if exec_span.is_enabled() {
        exec_span.record("threads", threads);
        exec_span.record("grain", grain);
        exec_span.record(
            "backend",
            match config.backend {
                Backend::WorkStealing => "work_stealing",
                Backend::Static => "static",
            },
        );
        exec_span.record("items", data.len());
    }
    match config.backend {
        Backend::Static => run_static(task, data, threads),
        Backend::WorkStealing => run_stealing(task, data, threads, grain),
    }
}

/// Static scheduling: exactly one contiguous chunk per thread, results
/// joined in order.
fn run_static<T: DncTask>(task: &T, data: &[T::Item], threads: usize) -> T::Acc {
    let n = data.len();
    let parts = threads.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    let partials: Vec<T::Acc> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || task.work(&data[lo..hi])))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    if trace::enabled() {
        trace::counter("execute", "chunks", partials.len() as u64);
        trace::counter("execute", "joins", partials.len().saturating_sub(1) as u64);
    }
    partials
        .into_iter()
        .reduce(|l, r| task.join(l, r))
        .unwrap_or_else(|| task.identity())
}

/// Work-stealing execution: the input is cut into grain-sized tasks,
/// dealt round-robin onto per-worker deques; idle workers steal. Each
/// chunk's result lands in an index-ordered slot so the final reduction
/// preserves input order.
fn run_stealing<T: DncTask>(task: &T, data: &[T::Item], threads: usize, grain: usize) -> T::Acc {
    let n = data.len();
    let grain = grain.max(1);
    let num_chunks = n.div_ceil(grain);
    if num_chunks <= 1 {
        return task.work(data);
    }

    // Per-worker deques seeded round-robin, like a TBB arena.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for chunk in 0..num_chunks {
        workers[chunk % threads].push(chunk);
    }

    let remaining = AtomicUsize::new(num_chunks);
    let slots: Vec<Mutex<Option<T::Acc>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    // Per-worker tallies; workers run on foreign threads (no ambient
    // tracer there), so events are emitted from the calling thread once
    // the scope closes.
    let steal_counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let chunk_counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let remaining = &remaining;
            let slots = &slots;
            let steal_counts = &steal_counts;
            let chunk_counts = &chunk_counts;
            scope.spawn(move || {
                loop {
                    // Drain the local deque first, then steal.
                    let chunk = worker.pop().or_else(|| {
                        stealers.iter().find_map(|s| loop {
                            match s.steal() {
                                Steal::Success(c) => {
                                    steal_counts[wid].fetch_add(1, Ordering::Relaxed);
                                    return Some(c);
                                }
                                Steal::Empty => return None,
                                Steal::Retry => continue,
                            }
                        })
                    });
                    let Some(chunk) = chunk else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        // Yield rather than spin: on oversubscribed (or
                        // single-core) hosts a spinning idler starves the
                        // workers that still hold chunks.
                        std::thread::yield_now();
                        continue;
                    };
                    chunk_counts[wid].fetch_add(1, Ordering::Relaxed);
                    let lo = chunk * grain;
                    let hi = (lo + grain).min(n);
                    let acc = task.work(&data[lo..hi]);
                    *slots[chunk].lock() = Some(acc);
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
            });
        }
    });

    if trace::enabled() {
        trace::counter("execute", "chunks", num_chunks as u64);
        trace::counter("execute", "joins", num_chunks as u64 - 1);
        for (wid, (steals, worked)) in steal_counts.iter().zip(&chunk_counts).enumerate() {
            trace::counter_with(
                "execute",
                "worker_steals",
                steals.load(Ordering::Relaxed),
                &[("worker", wid.into())],
            );
            trace::counter_with(
                "execute",
                "worker_chunks",
                worked.load(Ordering::Relaxed),
                &[("worker", wid.into())],
            );
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("chunk computed"))
        .reduce(|l, r| task.join(l, r))
        .unwrap_or_else(|| task.identity())
}

/// Join a list of chunk partials as a balanced binary tree, with each
/// round's joins executed in parallel. For `c` chunks this takes
/// `⌈log₂ c⌉` parallel rounds instead of `c − 1` sequential joins —
/// relevant when the join itself is expensive (the looped joins of the
/// mtls family, `O(m)` each).
///
/// Requires only associativity (which every synthesized join has by
/// Definition 3.2): adjacent partials are always joined in input order.
pub fn reduce_tree<T: DncTask>(task: &T, mut partials: Vec<T::Acc>) -> T::Acc {
    while partials.len() > 1 {
        let leftover = if partials.len() % 2 == 1 {
            partials.pop()
        } else {
            None
        };
        let mut iter = partials.into_iter();
        let mut pairs: Vec<(T::Acc, T::Acc)> = Vec::new();
        while let (Some(l), Some(r)) = (iter.next(), iter.next()) {
            pairs.push((l, r));
        }
        partials = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(l, r)| scope.spawn(move || task.join(l, r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join worker panicked"))
                .collect()
        });
        if let Some(last) = leftover {
            partials.push(last);
        }
    }
    partials
        .into_iter()
        .next()
        .unwrap_or_else(|| task.identity())
}

/// Run a map-only task: the `map` phase over all items in parallel
/// (static partition), then the sequential `fold` in input order.
pub fn run_map_only<T: MapOnlyTask>(task: &T, data: &[T::Item], threads: usize) -> T::Acc {
    let threads = threads.max(1);
    if threads == 1 || data.len() < 2 {
        return data
            .iter()
            .fold(task.init(), |acc, item| task.fold(acc, task.map(item)));
    }
    let n = data.len();
    let parts = threads.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    let mapped: Vec<Vec<T::Mapped>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || data[lo..hi].iter().map(|x| task.map(x)).collect())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut acc = task.init();
    for block in mapped {
        for m in block {
            acc = task.fold(acc, m);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum task: trivially a homomorphism.
    struct Sum;
    impl DncTask for Sum {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// A deliberately non-commutative join: string-like concatenation
    /// encoded as (first, last) of the chunk — detects any executor that
    /// reorders chunks.
    struct FirstLast;
    impl DncTask for FirstLast {
        type Item = i64;
        type Acc = Vec<i64>;
        fn identity(&self) -> Vec<i64> {
            Vec::new()
        }
        fn work(&self, chunk: &[i64]) -> Vec<i64> {
            chunk.to_vec()
        }
        fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
            l.extend(r);
            l
        }
    }

    fn data(n: usize) -> Vec<i64> {
        (0..n as i64).map(|x| (x * 7919) % 101 - 50).collect()
    }

    #[test]
    fn static_backend_matches_sequential() {
        let d = data(10_000);
        let seq = run_sequential(&Sum, &d);
        for threads in [1, 2, 4, 16] {
            let cfg = RunConfig::static_schedule(threads).with_grain(128);
            assert_eq!(run_parallel(&Sum, &d, cfg), seq);
        }
    }

    #[test]
    fn stealing_backend_matches_sequential() {
        let d = data(10_000);
        let seq = run_sequential(&Sum, &d);
        for threads in [2, 3, 8] {
            let cfg = RunConfig::work_stealing(threads).with_grain(97);
            assert_eq!(run_parallel(&Sum, &d, cfg), seq);
        }
    }

    #[test]
    fn chunk_order_is_preserved_for_noncommutative_joins() {
        let d = data(5_000);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 64,
                backend,
            };
            let out = run_parallel(&FirstLast, &d, cfg);
            assert_eq!(out, d, "backend {backend:?} reordered chunks");
        }
    }

    #[test]
    fn small_inputs_short_circuit() {
        let d = data(10);
        let cfg = RunConfig::work_stealing(8); // grain 50k > len
        assert_eq!(run_parallel(&Sum, &d, cfg), run_sequential(&Sum, &d));
    }

    struct CountPositive;
    impl MapOnlyTask for CountPositive {
        type Item = i64;
        type Mapped = bool;
        type Acc = usize;
        fn init(&self) -> usize {
            0
        }
        fn map(&self, item: &i64) -> bool {
            *item > 0
        }
        fn fold(&self, acc: usize, mapped: bool) -> usize {
            acc + usize::from(mapped)
        }
    }

    #[test]
    fn map_only_matches_sequential_fold() {
        let d = data(3_333);
        let seq = run_map_only(&CountPositive, &d, 1);
        for threads in [2, 5, 9] {
            assert_eq!(run_map_only(&CountPositive, &d, threads), seq);
        }
    }

    #[test]
    fn tree_reduction_matches_sequential_fold() {
        let d = data(4_000);
        // Non-commutative task: order must be preserved through the tree.
        let partials: Vec<Vec<i64>> = d.chunks(173).map(|c| FirstLast.work(c)).collect();
        let tree = reduce_tree(&FirstLast, partials);
        assert_eq!(tree, d);
        // And for odd chunk counts.
        let partials: Vec<Vec<i64>> = d.chunks(313).map(|c| FirstLast.work(c)).collect();
        assert_eq!(partials.len() % 2, 1);
        assert_eq!(reduce_tree(&FirstLast, partials), d);
    }

    #[test]
    fn tree_reduction_of_empty_and_singleton() {
        assert_eq!(reduce_tree(&Sum, vec![]), 0);
        assert_eq!(reduce_tree(&Sum, vec![41]), 41);
    }

    #[test]
    fn default_config_is_work_stealing_on_all_cores() {
        let cfg = RunConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.backend, Backend::WorkStealing);
        assert_eq!(cfg.grain, 50_000);
        let cfg = cfg
            .with_backend(Backend::Static)
            .with_threads(3)
            .with_grain(10);
        assert_eq!(cfg.backend, Backend::Static);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.grain, 10);
    }

    #[test]
    fn stealing_emits_chunk_and_worker_counters() {
        use parsynt_trace::sinks::PhaseAggregator;
        let agg = PhaseAggregator::new();
        let _guard = trace::set_ambient(trace::Tracer::from_sink(agg.clone()));
        let d = data(10_000);
        let cfg = RunConfig::work_stealing(4).with_grain(97);
        assert_eq!(run_parallel(&Sum, &d, cfg), run_sequential(&Sum, &d));
        let counters = agg.counters();
        let chunks = 10_000u64.div_ceil(97);
        assert_eq!(counters["execute.chunks"], chunks);
        assert_eq!(counters["execute.joins"], chunks - 1);
        // Every processed chunk is tallied against some worker.
        assert_eq!(counters["execute.worker_chunks"], chunks);
        assert!(counters.contains_key("execute.worker_steals"));
        assert!(agg.phase_timings().contains_key("execute"));
    }

    #[test]
    fn zero_grain_is_floored_to_one() {
        // A literal `grain: 0` bypasses the `with_grain` clamp; the
        // executor must treat it as 1 (one item per chunk), not divide
        // by zero or spin.
        let d = data(257);
        let seq = run_sequential(&Sum, &d);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 0,
                backend,
            };
            assert_eq!(run_parallel(&Sum, &d, cfg), seq, "backend {backend:?}");
        }
        assert_eq!(
            run_parallel(
                &FirstLast,
                &d,
                RunConfig {
                    threads: 3,
                    grain: 0,
                    backend: Backend::WorkStealing
                }
            ),
            d
        );
    }

    #[test]
    fn zero_and_one_element_inputs() {
        let empty: Vec<i64> = Vec::new();
        let cfg = RunConfig::work_stealing(4).with_grain(1);
        assert_eq!(run_parallel(&Sum, &empty, cfg), 0);
        assert_eq!(run_parallel(&Sum, &[42], cfg), 42);
    }
}
