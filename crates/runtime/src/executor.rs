//! The parallel executors: work-stealing and static scheduling, behind
//! the unified [`Executor`] entry point.
//!
//! All chunk and join work runs panic-isolated: a panicking worker is
//! caught ([`std::panic::catch_unwind`]), its chunk retried once on the
//! calling thread, and if the retry fails too the whole plan degrades to
//! a sequential re-execution — reported via [`RunOutcome::degraded`].
//!
//! Since 0.4.0 every execution mode is a method on [`Executor`]
//! (`run`, `run_map_only`, `reduce_tree`, and the streaming
//! [`Executor::stream`] / [`Executor::run_stream`] sessions of
//! [`crate::stream`]); the nine pre-0.4 free functions remain as
//! deprecated shims over the same machinery.

use crate::error::RuntimeError;
use crate::task::{DncTask, MapOnlyTask};
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;
use parsynt_trace as trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Fault-injection argument threaded through the executors: a real
/// [`crate::faults::FaultPlan`] under the `fault-inject` feature, an
/// uninhabited placeholder otherwise so release builds compile every
/// injection site away.
#[cfg(feature = "fault-inject")]
pub(crate) type FaultArg<'a> = Option<&'a crate::faults::FaultPlan>;
#[cfg(not(feature = "fault-inject"))]
pub(crate) type FaultArg<'a> = Option<&'a std::convert::Infallible>;

#[cfg(feature = "fault-inject")]
#[inline]
fn inject(faults: FaultArg<'_>, chunk: usize, attempt: u32) -> bool {
    faults.is_some_and(|plan| plan.apply(chunk, attempt))
}

#[cfg(not(feature = "fault-inject"))]
#[inline]
fn inject(_faults: FaultArg<'_>, _chunk: usize, _attempt: u32) -> bool {
    false
}

/// Render a panic payload for trace events and [`RuntimeError`]s.
pub(crate) fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

pub(crate) fn emit_worker_panic(chunk: usize, attempt: u32, payload: &str) {
    if trace::enabled() {
        trace::point(
            "execute",
            "worker_panic",
            &[
                ("chunk", chunk.into()),
                ("attempt", attempt.into()),
                ("payload", payload.into()),
            ],
        );
    }
}

/// The result of a panic-isolated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome<A> {
    /// The computed accumulator.
    pub value: A,
    /// Whether the parallel plan was abandoned and the value computed by
    /// the sequential fallback instead.
    pub degraded: bool,
    /// Chunks whose first attempt panicked (or was poisoned) and whose
    /// retry succeeded.
    pub recovered_chunks: usize,
}

/// Run one chunk with panic isolation (and, under `fault-inject`, the
/// scheduled fault for this `(chunk, attempt)` site applied).
fn work_guarded<T: DncTask>(
    task: &T,
    slice: &[T::Item],
    chunk: usize,
    attempt: u32,
    faults: FaultArg<'_>,
) -> Result<T::Acc, String> {
    match catch_unwind(AssertUnwindSafe(|| {
        let poisoned = inject(faults, chunk, attempt);
        (poisoned, task.work(slice))
    })) {
        Ok((false, acc)) => Ok(acc),
        Ok((true, _)) => Err(format!("injected fault: poisoned result at chunk {chunk}")),
        Err(payload) => Err(payload_string(payload.as_ref())),
    }
}

/// Scheduling backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// TBB-flavoured: grain-sized tasks on per-worker deques with
    /// stealing. Better load balance, slightly higher overhead.
    WorkStealing,
    /// OpenMP-flavoured static scheduling: one contiguous chunk per
    /// thread, no stealing.
    Static,
}

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Grain size in items (the paper's experiments use 50k elements).
    /// Only the work-stealing backend uses it.
    pub grain: usize,
    /// Scheduling backend.
    pub backend: Backend,
}

impl RunConfig {
    /// A work-stealing configuration with the paper's 50k grain.
    pub fn work_stealing(threads: usize) -> Self {
        RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::WorkStealing,
        }
    }

    /// A static-scheduling configuration.
    pub fn static_schedule(threads: usize) -> Self {
        RunConfig {
            threads,
            grain: 50_000,
            backend: Backend::Static,
        }
    }

    /// Override the grain size.
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain.max(1);
        self
    }

    /// Override the scheduling backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for RunConfig {
    /// Work-stealing over every available core with the paper's 50k
    /// grain — the setup of the §9 experiments.
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        RunConfig::work_stealing(threads)
    }
}

/// The unified executor: one configured entry point for every execution
/// mode — batch divide-and-conquer ([`Executor::run`]), map-only
/// ([`Executor::run_map_only`]), partial-list reduction
/// ([`Executor::reduce_tree`]), and streaming online aggregation
/// ([`Executor::stream`] / [`Executor::run_stream`]).
///
/// Construction is free; the executor holds only configuration and can
/// be reused across runs (and shared: it is `Clone`). It replaces the
/// nine pre-0.4 free functions (`run_parallel`, `try_run_parallel`,
/// `run_parallel_with_faults`, …), which remain as deprecated shims.
///
/// ```
/// use parsynt_runtime::{DncTask, Executor, RunConfig};
/// struct Sum;
/// impl DncTask for Sum {
///     type Item = i64;
///     type Acc = i64;
///     fn identity(&self) -> i64 { 0 }
///     fn work(&self, chunk: &[i64]) -> i64 { chunk.iter().sum() }
///     fn join(&self, l: i64, r: i64) -> i64 { l + r }
/// }
/// let exec = Executor::new(RunConfig::work_stealing(4).with_grain(2));
/// let data = [1i64, 2, 3, 4, 5];
/// assert_eq!(exec.run(&Sum, &data).unwrap().value, 15);
/// assert_eq!(exec.run_sequential(&Sum, &data), 15);
/// // Streaming: same result, one chunk at a time.
/// assert_eq!(exec.run_stream(&Sum, data.chunks(2)).unwrap().value, 15);
/// ```
///
/// Under the `fault-inject` cargo feature, [`Executor::with_faults`]
/// attaches a deterministic [`crate::faults::FaultPlan`] applied to
/// every chunk attempt of every run on this executor (the harness entry
/// point that used to be the `*_with_faults` free functions).
#[derive(Debug, Clone, Default)]
pub struct Executor {
    config: RunConfig,
    #[cfg(feature = "fault-inject")]
    faults: Option<crate::faults::FaultPlan>,
}

impl Executor {
    /// An executor scheduling with `config`.
    pub fn new(config: RunConfig) -> Self {
        Executor {
            config,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// The execution configuration this executor schedules with.
    pub fn config(&self) -> RunConfig {
        self.config
    }

    /// Attach a deterministic fault schedule, applied to every chunk
    /// attempt of every subsequent run on this executor.
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault schedule as the internal executor argument.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_arg(&self) -> FaultArg<'_> {
        self.faults.as_ref()
    }

    /// Without the `fault-inject` feature there is never a schedule.
    #[cfg(not(feature = "fault-inject"))]
    pub(crate) fn fault_arg(&self) -> FaultArg<'_> {
        None
    }

    /// Run the task sequentially on the calling thread (the baseline all
    /// speedups are relative to). Exactly `task.work(data)`.
    pub fn run_sequential<T: DncTask>(&self, task: &T, data: &[T::Item]) -> T::Acc {
        task.work(data)
    }

    /// Run the task in parallel according to the executor's config.
    ///
    /// Equivalent to `task.work(data)` whenever the join satisfies the
    /// homomorphism law; chunk results are always joined in input order,
    /// so non-commutative joins are safe. A panicking chunk is retried
    /// once on the calling thread; persistent failures degrade the run
    /// to a sequential re-execution ([`RunOutcome::degraded`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerPanicked`] only when even the sequential
    /// fallback panics (i.e. the task itself is broken).
    pub fn run<T: DncTask>(
        &self,
        task: &T,
        data: &[T::Item],
    ) -> Result<RunOutcome<T::Acc>, RuntimeError> {
        try_run_parallel_impl(task, data, self.config, self.fault_arg())
    }

    /// Run a map-only task: the `map` phase over all items in parallel
    /// (static partition over the config's thread count), then the
    /// sequential `fold` in input order. Panic isolation and recovery
    /// mirror [`Executor::run`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerPanicked`] only when even the sequential
    /// fallback panics.
    pub fn run_map_only<T: MapOnlyTask>(
        &self,
        task: &T,
        data: &[T::Item],
    ) -> Result<RunOutcome<T::Acc>, RuntimeError> {
        try_run_map_only_impl(task, data, self.config.threads, self.fault_arg())
    }

    /// Join a list of chunk partials as a balanced binary tree, each
    /// round's joins in parallel: `⌈log₂ c⌉` rounds instead of `c − 1`
    /// sequential joins — relevant when the join itself is expensive
    /// (the looped joins of the mtls family, `O(m)` each). Requires only
    /// associativity: adjacent partials are joined in input order.
    ///
    /// A panicking join is retried once on the calling thread (operands
    /// are cloned so the retry has them).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerPanicked`] when a join fails twice — with
    /// only partials in hand there is no raw input to re-run.
    pub fn reduce_tree<T: DncTask>(
        &self,
        task: &T,
        partials: Vec<T::Acc>,
    ) -> Result<RunOutcome<T::Acc>, RuntimeError>
    where
        T::Acc: Clone,
    {
        try_reduce_tree_impl(task, partials)
    }

    /// Open a streaming session: push chunks with
    /// [`crate::stream::StreamSession::push_chunk`], observe progressive
    /// partial-prefix aggregates with
    /// [`crate::stream::StreamSession::snapshot`], and close with
    /// [`crate::stream::StreamSession::finish`].
    pub fn stream<'e, T: DncTask>(&'e self, task: &'e T) -> crate::stream::StreamSession<'e, T> {
        crate::stream::StreamSession::new(self, task)
    }

    /// Drive a whole chunk iterator through a streaming session and
    /// return the end-of-input aggregate. By the homomorphism law the
    /// value is byte-identical to [`Executor::run_sequential`] on the
    /// concatenation of the chunks, for *any* chunking.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerPanicked`] when a chunk or join fails even
    /// after retry and sequential re-execution of that chunk.
    pub fn run_stream<T, I>(
        &self,
        task: &T,
        chunks: I,
    ) -> Result<crate::stream::StreamOutcome<T::Acc>, RuntimeError>
    where
        T: DncTask,
        T::Acc: Clone,
        I: IntoIterator,
        I::Item: AsRef<[T::Item]>,
    {
        let mut session = self.stream(task);
        for chunk in chunks {
            session.push_chunk(chunk.as_ref())?;
        }
        Ok(session.finish())
    }

    /// [`Executor::run_stream`] over a fallible (I/O-backed) chunk
    /// source such as [`crate::stream::ReaderChunks`] or
    /// [`crate::stream::PagedFileChunks`].
    ///
    /// # Errors
    ///
    /// [`crate::stream::StreamError::Io`] on a source error,
    /// [`crate::stream::StreamError::Runtime`] on an unrecoverable
    /// worker panic.
    pub fn run_stream_io<T, I>(
        &self,
        task: &T,
        chunks: I,
    ) -> Result<crate::stream::StreamOutcome<T::Acc>, crate::stream::StreamError>
    where
        T: DncTask,
        T::Acc: Clone,
        I: IntoIterator<Item = std::io::Result<Vec<T::Item>>>,
    {
        let mut session = self.stream(task);
        for chunk in chunks {
            session.push_chunk(&chunk?)?;
        }
        Ok(session.finish())
    }
}

/// Run the task sequentially (the baseline all speedups are relative
/// to).
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::run_sequential` (or call `task.work(data)` directly)"
)]
pub fn run_sequential<T: DncTask>(task: &T, data: &[T::Item]) -> T::Acc {
    task.work(data)
}

/// Run the task in parallel according to `config`.
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::new(config).run(task, data)` and take `RunOutcome::value`"
)]
pub fn run_parallel<T: DncTask>(task: &T, data: &[T::Item], config: RunConfig) -> T::Acc {
    match try_run_parallel_impl(task, data, config, None) {
        Ok(outcome) => outcome.value,
        Err(e) => panic!("{e}"),
    }
}

/// Panic-isolated parallel run, reporting retries and sequential
/// degradation through [`RunOutcome`].
#[deprecated(since = "0.4.0", note = "use `Executor::new(config).run(task, data)`")]
pub fn try_run_parallel<T: DncTask>(
    task: &T,
    data: &[T::Item],
    config: RunConfig,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    try_run_parallel_impl(task, data, config, None)
}

/// Parallel run with a deterministic fault schedule applied to every
/// chunk attempt.
#[cfg(feature = "fault-inject")]
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::new(config).with_faults(plan.clone()).run(task, data)`"
)]
pub fn run_parallel_with_faults<T: DncTask>(
    task: &T,
    data: &[T::Item],
    config: RunConfig,
    plan: &crate::faults::FaultPlan,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    try_run_parallel_impl(task, data, config, Some(plan))
}

pub(crate) fn try_run_parallel_impl<T: DncTask>(
    task: &T,
    data: &[T::Item],
    config: RunConfig,
    faults: FaultArg<'_>,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    let threads = config.threads.max(1);
    let n = data.len();
    // `RunConfig::with_grain` clamps, but the struct is constructible
    // literally; a zero grain must never reach the chunk math.
    let grain = config.grain.max(1);
    // `chunk_grain` is the stride chunks were actually cut at, so a
    // failed chunk can be re-sliced for retry.
    let (partials, chunk_grain): (Vec<Result<T::Acc, String>>, usize) = if threads == 1
        || n <= grain
    {
        // Sequential short-circuit: one chunk on the calling thread,
        // no span or counters (matching pre-isolation observability).
        (vec![work_guarded(task, data, 0, 0, faults)], n.max(1))
    } else {
        let mut exec_span = trace::span("execute", "run_parallel");
        if exec_span.is_enabled() {
            exec_span.record("threads", threads);
            exec_span.record("grain", grain);
            exec_span.record(
                "backend",
                match config.backend {
                    Backend::WorkStealing => "work_stealing",
                    Backend::Static => "static",
                },
            );
            exec_span.record("items", data.len());
        }
        match config.backend {
            Backend::Static => {
                // One contiguous chunk per thread, grain-aligned.
                let static_grain = n.div_ceil(threads.min(n)).max(1);
                (
                    static_partials(task, data, static_grain, faults),
                    static_grain,
                )
            }
            Backend::WorkStealing => (stealing_partials(task, data, threads, grain, faults), grain),
        }
    };
    finish_partials(task, data, partials, chunk_grain, faults)
}

/// Retry failed chunks once on the calling thread, reduce the partials
/// in order, and degrade to sequential re-execution when anything still
/// fails (including a panicking join).
fn finish_partials<T: DncTask>(
    task: &T,
    data: &[T::Item],
    partials: Vec<Result<T::Acc, String>>,
    grain: usize,
    faults: FaultArg<'_>,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    let n = data.len();
    let num_chunks = partials.len();
    let mut recovered = 0usize;
    let mut failed: Vec<usize> = Vec::new();
    let mut accs: Vec<Option<T::Acc>> = Vec::with_capacity(num_chunks);
    for (chunk, partial) in partials.into_iter().enumerate() {
        match partial {
            Ok(acc) => accs.push(Some(acc)),
            Err(payload) => {
                emit_worker_panic(chunk, 0, &payload);
                // Recompute this chunk's slice: a single-chunk run covers
                // all of `data`, otherwise chunks are grain-sized.
                let (lo, hi) = if num_chunks == 1 {
                    (0, n)
                } else {
                    (chunk * grain, (chunk * grain + grain).min(n))
                };
                match work_guarded(task, &data[lo..hi], chunk, 1, faults) {
                    Ok(acc) => {
                        recovered += 1;
                        accs.push(Some(acc));
                    }
                    Err(payload) => {
                        emit_worker_panic(chunk, 1, &payload);
                        failed.push(chunk);
                        accs.push(None);
                    }
                }
            }
        }
    }
    if failed.is_empty() {
        // The join can panic too (it is synthesized code): guard the
        // ordered reduction and fall back like a failed chunk.
        let reduced = catch_unwind(AssertUnwindSafe(|| {
            accs.into_iter()
                .flatten()
                .reduce(|l, r| task.join(l, r))
                .unwrap_or_else(|| task.identity())
        }));
        if let Ok(value) = reduced {
            return Ok(RunOutcome {
                value,
                degraded: false,
                recovered_chunks: recovered,
            });
        }
    }
    fallback_sequential(task, data, &failed, recovered)
}

/// Last-resort recovery: re-run the whole input sequentially on the
/// calling thread. Faults are never injected here — the harness tests
/// recovery of the *parallel* plan, and a broken task panics on its own.
fn fallback_sequential<T: DncTask>(
    task: &T,
    data: &[T::Item],
    failed: &[usize],
    recovered: usize,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    if trace::enabled() {
        trace::point(
            "execute",
            "fallback_sequential",
            &[("failed_chunks", failed.len().into())],
        );
    }
    match catch_unwind(AssertUnwindSafe(|| task.work(data))) {
        Ok(value) => Ok(RunOutcome {
            value,
            degraded: true,
            recovered_chunks: recovered,
        }),
        Err(payload) => Err(RuntimeError::WorkerPanicked {
            chunk: failed.first().copied().unwrap_or(0),
            payload: payload_string(payload.as_ref()),
        }),
    }
}

/// Static scheduling: one contiguous grain-sized chunk per thread (the
/// caller picks `grain = ⌈n / threads⌉`), results collected in order.
fn static_partials<T: DncTask>(
    task: &T,
    data: &[T::Item],
    grain: usize,
    faults: FaultArg<'_>,
) -> Vec<Result<T::Acc, String>> {
    let n = data.len();
    let num_chunks = n.div_ceil(grain);
    let partials: Vec<Result<T::Acc, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_chunks)
            .map(|chunk| {
                let lo = chunk * grain;
                let hi = (lo + grain).min(n);
                scope.spawn(move || work_guarded(task, &data[lo..hi], chunk, 0, faults))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                // `work_guarded` already catches task panics; reaching
                // here means the runtime itself failed.
                Err(payload) => Err(payload_string(payload.as_ref())),
            })
            .collect()
    });
    if trace::enabled() {
        trace::counter("execute", "chunks", partials.len() as u64);
        trace::counter("execute", "joins", partials.len().saturating_sub(1) as u64);
    }
    partials
}

/// Work-stealing execution: the input is cut into grain-sized tasks,
/// dealt round-robin onto per-worker deques; idle workers steal. Each
/// chunk's result lands in an index-ordered slot so the final reduction
/// preserves input order. A panicking chunk is recorded as failed, not
/// propagated: the scope always joins cleanly.
fn stealing_partials<T: DncTask>(
    task: &T,
    data: &[T::Item],
    threads: usize,
    grain: usize,
    faults: FaultArg<'_>,
) -> Vec<Result<T::Acc, String>> {
    let n = data.len();
    let grain = grain.max(1);
    let num_chunks = n.div_ceil(grain);
    if num_chunks <= 1 {
        return vec![work_guarded(task, data, 0, 0, faults)];
    }

    // Per-worker deques seeded round-robin, like a TBB arena.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for chunk in 0..num_chunks {
        workers[chunk % threads].push(chunk);
    }

    // One slot per chunk; `None` means the chunk never completed.
    type Slot<A> = Mutex<Option<Result<A, String>>>;
    let remaining = AtomicUsize::new(num_chunks);
    let slots: Vec<Slot<T::Acc>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    // Per-worker tallies; workers run on foreign threads (no ambient
    // tracer there), so events are emitted from the calling thread once
    // the scope closes.
    let steal_counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let chunk_counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let remaining = &remaining;
            let slots = &slots;
            let steal_counts = &steal_counts;
            let chunk_counts = &chunk_counts;
            scope.spawn(move || {
                loop {
                    // Drain the local deque first, then steal.
                    let chunk = worker.pop().or_else(|| {
                        stealers.iter().find_map(|s| loop {
                            match s.steal() {
                                Steal::Success(c) => {
                                    steal_counts[wid].fetch_add(1, Ordering::Relaxed);
                                    return Some(c);
                                }
                                Steal::Empty => return None,
                                Steal::Retry => continue,
                            }
                        })
                    });
                    let Some(chunk) = chunk else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        // Yield rather than spin: on oversubscribed (or
                        // single-core) hosts a spinning idler starves the
                        // workers that still hold chunks.
                        std::thread::yield_now();
                        continue;
                    };
                    chunk_counts[wid].fetch_add(1, Ordering::Relaxed);
                    let lo = chunk * grain;
                    let hi = (lo + grain).min(n);
                    let partial = work_guarded(task, &data[lo..hi], chunk, 0, faults);
                    *slots[chunk].lock() = Some(partial);
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
            });
        }
    });

    if trace::enabled() {
        trace::counter("execute", "chunks", num_chunks as u64);
        trace::counter("execute", "joins", num_chunks as u64 - 1);
        for (wid, (steals, worked)) in steal_counts.iter().zip(&chunk_counts).enumerate() {
            trace::counter_with(
                "execute",
                "worker_steals",
                steals.load(Ordering::Relaxed),
                &[("worker", wid.into())],
            );
            trace::counter_with(
                "execute",
                "worker_chunks",
                worked.load(Ordering::Relaxed),
                &[("worker", wid.into())],
            );
        }
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(chunk, slot)| {
            slot.into_inner()
                .unwrap_or_else(|| Err(format!("chunk {chunk} never completed")))
        })
        .collect()
}

/// Join a list of chunk partials as a balanced binary tree, with each
/// round's joins executed in parallel. For `c` chunks this takes
/// `⌈log₂ c⌉` parallel rounds instead of `c − 1` sequential joins —
/// relevant when the join itself is expensive (the looped joins of the
/// mtls family, `O(m)` each).
///
/// Requires only associativity (which every synthesized join has by
/// Definition 3.2): adjacent partials are always joined in input order.
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::reduce_tree` (panic-isolated, returns a `RunOutcome`)"
)]
pub fn reduce_tree<T: DncTask>(task: &T, mut partials: Vec<T::Acc>) -> T::Acc {
    while partials.len() > 1 {
        let leftover = if partials.len() % 2 == 1 {
            partials.pop()
        } else {
            None
        };
        let mut iter = partials.into_iter();
        let mut pairs: Vec<(T::Acc, T::Acc)> = Vec::new();
        while let (Some(l), Some(r)) = (iter.next(), iter.next()) {
            pairs.push((l, r));
        }
        partials = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(l, r)| scope.spawn(move || task.join(l, r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join worker panicked"))
                .collect()
        });
        if let Some(last) = leftover {
            partials.push(last);
        }
    }
    partials
        .into_iter()
        .next()
        .unwrap_or_else(|| task.identity())
}

/// Panic-isolated tree reduction: a panicking join is retried once on
/// the calling thread (operands are cloned so the retry has them); a
/// second failure is an error — with only partials in hand there is no
/// raw input to re-run sequentially.
#[deprecated(since = "0.4.0", note = "use `Executor::reduce_tree`")]
pub fn try_reduce_tree<T: DncTask>(
    task: &T,
    partials: Vec<T::Acc>,
) -> Result<RunOutcome<T::Acc>, RuntimeError>
where
    T::Acc: Clone,
{
    try_reduce_tree_impl(task, partials)
}

pub(crate) fn try_reduce_tree_impl<T: DncTask>(
    task: &T,
    mut partials: Vec<T::Acc>,
) -> Result<RunOutcome<T::Acc>, RuntimeError>
where
    T::Acc: Clone,
{
    let mut recovered = 0usize;
    while partials.len() > 1 {
        let leftover = if partials.len() % 2 == 1 {
            partials.pop()
        } else {
            None
        };
        let mut iter = partials.into_iter();
        let mut pairs: Vec<(T::Acc, T::Acc)> = Vec::new();
        while let (Some(l), Some(r)) = (iter.next(), iter.next()) {
            pairs.push((l, r));
        }
        let joined: Vec<Result<T::Acc, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|(l, r)| {
                    let (l, r) = (l.clone(), r.clone());
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| task.join(l, r)))
                            .map_err(|p| payload_string(p.as_ref()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(payload) => Err(payload_string(payload.as_ref())),
                })
                .collect()
        });
        let mut next = Vec::with_capacity(joined.len() + 1);
        for (pair_idx, (result, (l, r))) in joined.into_iter().zip(pairs).enumerate() {
            match result {
                Ok(acc) => next.push(acc),
                Err(payload) => {
                    emit_worker_panic(pair_idx, 0, &payload);
                    match catch_unwind(AssertUnwindSafe(|| task.join(l, r))) {
                        Ok(acc) => {
                            recovered += 1;
                            next.push(acc);
                        }
                        Err(p) => {
                            let payload = payload_string(p.as_ref());
                            emit_worker_panic(pair_idx, 1, &payload);
                            return Err(RuntimeError::WorkerPanicked {
                                chunk: pair_idx,
                                payload,
                            });
                        }
                    }
                }
            }
        }
        if let Some(last) = leftover {
            next.push(last);
        }
        partials = next;
    }
    Ok(RunOutcome {
        value: partials
            .into_iter()
            .next()
            .unwrap_or_else(|| task.identity()),
        degraded: false,
        recovered_chunks: recovered,
    })
}

/// Run a map-only task: the `map` phase over all items in parallel
/// (static partition), then the sequential `fold` in input order.
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::new(RunConfig::default().with_threads(threads))\
            .run_map_only(task, data)` and take `RunOutcome::value`"
)]
pub fn run_map_only<T: MapOnlyTask>(task: &T, data: &[T::Item], threads: usize) -> T::Acc {
    match try_run_map_only_impl(task, data, threads, None) {
        Ok(outcome) => outcome.value,
        Err(e) => panic!("{e}"),
    }
}

/// Panic-isolated map-only run, reporting retries and sequential
/// degradation through [`RunOutcome`].
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::new(RunConfig::default().with_threads(threads))\
            .run_map_only(task, data)`"
)]
pub fn try_run_map_only<T: MapOnlyTask>(
    task: &T,
    data: &[T::Item],
    threads: usize,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    try_run_map_only_impl(task, data, threads, None)
}

/// Map-only run with a deterministic fault schedule applied to every
/// map-block attempt.
#[cfg(feature = "fault-inject")]
#[deprecated(
    since = "0.4.0",
    note = "use `Executor::new(RunConfig::default().with_threads(threads))\
            .with_faults(plan.clone()).run_map_only(task, data)`"
)]
pub fn run_map_only_with_faults<T: MapOnlyTask>(
    task: &T,
    data: &[T::Item],
    threads: usize,
    plan: &crate::faults::FaultPlan,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    try_run_map_only_impl(task, data, threads, Some(plan))
}

/// Map a block of items with panic isolation, mirroring [`work_guarded`].
fn map_guarded<T: MapOnlyTask>(
    task: &T,
    slice: &[T::Item],
    chunk: usize,
    attempt: u32,
    faults: FaultArg<'_>,
) -> Result<Vec<T::Mapped>, String> {
    match catch_unwind(AssertUnwindSafe(|| {
        let poisoned = inject(faults, chunk, attempt);
        (
            poisoned,
            slice.iter().map(|x| task.map(x)).collect::<Vec<_>>(),
        )
    })) {
        Ok((false, mapped)) => Ok(mapped),
        Ok((true, _)) => Err(format!("injected fault: poisoned result at chunk {chunk}")),
        Err(payload) => Err(payload_string(payload.as_ref())),
    }
}

/// The sequential semantics of a map-only task (also its fallback).
fn seq_map_fold<T: MapOnlyTask>(task: &T, data: &[T::Item]) -> T::Acc {
    data.iter()
        .fold(task.init(), |acc, item| task.fold(acc, task.map(item)))
}

fn try_run_map_only_impl<T: MapOnlyTask>(
    task: &T,
    data: &[T::Item],
    threads: usize,
    faults: FaultArg<'_>,
) -> Result<RunOutcome<T::Acc>, RuntimeError> {
    let threads = threads.max(1);
    let n = data.len();
    let ranges: Vec<(usize, usize)> = if threads == 1 || n < 2 {
        vec![(0, n)]
    } else {
        let parts = threads.min(n);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut lo = 0usize;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            ranges.push((lo, lo + len));
            lo += len;
        }
        ranges
    };
    let mapped: Vec<Result<Vec<T::Mapped>, String>> = if ranges.len() == 1 {
        vec![map_guarded(task, data, 0, 0, faults)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(chunk, &(lo, hi))| {
                    scope.spawn(move || map_guarded(task, &data[lo..hi], chunk, 0, faults))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(partial) => partial,
                    Err(payload) => Err(payload_string(payload.as_ref())),
                })
                .collect()
        })
    };
    let mut recovered = 0usize;
    let mut failed: Vec<usize> = Vec::new();
    let mut blocks: Vec<Option<Vec<T::Mapped>>> = Vec::with_capacity(mapped.len());
    for (chunk, (result, &(lo, hi))) in mapped.into_iter().zip(&ranges).enumerate() {
        match result {
            Ok(block) => blocks.push(Some(block)),
            Err(payload) => {
                emit_worker_panic(chunk, 0, &payload);
                match map_guarded(task, &data[lo..hi], chunk, 1, faults) {
                    Ok(block) => {
                        recovered += 1;
                        blocks.push(Some(block));
                    }
                    Err(payload) => {
                        emit_worker_panic(chunk, 1, &payload);
                        failed.push(chunk);
                        blocks.push(None);
                    }
                }
            }
        }
    }
    if failed.is_empty() {
        // The fold phase can panic too; guard it and degrade like a
        // failed chunk.
        let folded = catch_unwind(AssertUnwindSafe(|| {
            let mut acc = task.init();
            for block in blocks.into_iter().flatten() {
                for m in block {
                    acc = task.fold(acc, m);
                }
            }
            acc
        }));
        if let Ok(value) = folded {
            return Ok(RunOutcome {
                value,
                degraded: false,
                recovered_chunks: recovered,
            });
        }
    }
    if trace::enabled() {
        trace::point(
            "execute",
            "fallback_sequential",
            &[("failed_chunks", failed.len().into())],
        );
    }
    match catch_unwind(AssertUnwindSafe(|| seq_map_fold(task, data))) {
        Ok(value) => Ok(RunOutcome {
            value,
            degraded: true,
            recovered_chunks: recovered,
        }),
        Err(payload) => Err(RuntimeError::WorkerPanicked {
            chunk: failed.first().copied().unwrap_or(0),
            payload: payload_string(payload.as_ref()),
        }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// `Executor` shorthands shared by every test below.
    fn par<T: DncTask>(task: &T, data: &[T::Item], cfg: RunConfig) -> T::Acc {
        Executor::new(cfg).run(task, data).expect("run").value
    }
    fn seq<T: DncTask>(task: &T, data: &[T::Item]) -> T::Acc {
        Executor::default().run_sequential(task, data)
    }
    fn map_only<T: MapOnlyTask>(task: &T, data: &[T::Item], threads: usize) -> T::Acc {
        Executor::new(RunConfig::default().with_threads(threads))
            .run_map_only(task, data)
            .expect("map-only run")
            .value
    }

    /// Sum task: trivially a homomorphism.
    struct Sum;
    impl DncTask for Sum {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// A deliberately non-commutative join: string-like concatenation
    /// encoded as (first, last) of the chunk — detects any executor that
    /// reorders chunks.
    struct FirstLast;
    impl DncTask for FirstLast {
        type Item = i64;
        type Acc = Vec<i64>;
        fn identity(&self) -> Vec<i64> {
            Vec::new()
        }
        fn work(&self, chunk: &[i64]) -> Vec<i64> {
            chunk.to_vec()
        }
        fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
            l.extend(r);
            l
        }
    }

    fn data(n: usize) -> Vec<i64> {
        (0..n as i64).map(|x| (x * 7919) % 101 - 50).collect()
    }

    #[test]
    fn static_backend_matches_sequential() {
        let d = data(10_000);
        let seq = seq(&Sum, &d);
        for threads in [1, 2, 4, 16] {
            let cfg = RunConfig::static_schedule(threads).with_grain(128);
            assert_eq!(par(&Sum, &d, cfg), seq);
        }
    }

    #[test]
    fn stealing_backend_matches_sequential() {
        let d = data(10_000);
        let seq = seq(&Sum, &d);
        for threads in [2, 3, 8] {
            let cfg = RunConfig::work_stealing(threads).with_grain(97);
            assert_eq!(par(&Sum, &d, cfg), seq);
        }
    }

    #[test]
    fn chunk_order_is_preserved_for_noncommutative_joins() {
        let d = data(5_000);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 64,
                backend,
            };
            let out = par(&FirstLast, &d, cfg);
            assert_eq!(out, d, "backend {backend:?} reordered chunks");
        }
    }

    #[test]
    fn small_inputs_short_circuit() {
        let d = data(10);
        let cfg = RunConfig::work_stealing(8); // grain 50k > len
        assert_eq!(par(&Sum, &d, cfg), seq(&Sum, &d));
    }

    struct CountPositive;
    impl MapOnlyTask for CountPositive {
        type Item = i64;
        type Mapped = bool;
        type Acc = usize;
        fn init(&self) -> usize {
            0
        }
        fn map(&self, item: &i64) -> bool {
            *item > 0
        }
        fn fold(&self, acc: usize, mapped: bool) -> usize {
            acc + usize::from(mapped)
        }
    }

    #[test]
    fn map_only_matches_sequential_fold() {
        let d = data(3_333);
        let seq = map_only(&CountPositive, &d, 1);
        for threads in [2, 5, 9] {
            assert_eq!(map_only(&CountPositive, &d, threads), seq);
        }
    }

    #[test]
    fn tree_reduction_matches_sequential_fold() {
        let d = data(4_000);
        // Non-commutative task: order must be preserved through the tree.
        let partials: Vec<Vec<i64>> = d.chunks(173).map(|c| FirstLast.work(c)).collect();
        let tree = Executor::default()
            .reduce_tree(&FirstLast, partials)
            .unwrap()
            .value;
        assert_eq!(tree, d);
        // And for odd chunk counts.
        let partials: Vec<Vec<i64>> = d.chunks(313).map(|c| FirstLast.work(c)).collect();
        assert_eq!(partials.len() % 2, 1);
        assert_eq!(
            Executor::default()
                .reduce_tree(&FirstLast, partials)
                .unwrap()
                .value,
            d
        );
    }

    #[test]
    fn tree_reduction_of_empty_and_singleton() {
        let exec = Executor::default();
        assert_eq!(exec.reduce_tree(&Sum, vec![]).unwrap().value, 0);
        assert_eq!(exec.reduce_tree(&Sum, vec![41]).unwrap().value, 41);
    }

    #[test]
    fn default_config_is_work_stealing_on_all_cores() {
        let cfg = RunConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.backend, Backend::WorkStealing);
        assert_eq!(cfg.grain, 50_000);
        let cfg = cfg
            .with_backend(Backend::Static)
            .with_threads(3)
            .with_grain(10);
        assert_eq!(cfg.backend, Backend::Static);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.grain, 10);
    }

    #[test]
    fn stealing_emits_chunk_and_worker_counters() {
        use parsynt_trace::sinks::PhaseAggregator;
        let agg = PhaseAggregator::new();
        let _guard = trace::set_ambient(trace::Tracer::from_sink(agg.clone()));
        let d = data(10_000);
        let cfg = RunConfig::work_stealing(4).with_grain(97);
        assert_eq!(par(&Sum, &d, cfg), seq(&Sum, &d));
        let counters = agg.counters();
        let chunks = 10_000u64.div_ceil(97);
        assert_eq!(counters["execute.chunks"], chunks);
        assert_eq!(counters["execute.joins"], chunks - 1);
        // Every processed chunk is tallied against some worker.
        assert_eq!(counters["execute.worker_chunks"], chunks);
        assert!(counters.contains_key("execute.worker_steals"));
        assert!(agg.phase_timings().contains_key("execute"));
    }

    #[test]
    fn zero_grain_is_floored_to_one() {
        // A literal `grain: 0` bypasses the `with_grain` clamp; the
        // executor must treat it as 1 (one item per chunk), not divide
        // by zero or spin.
        let d = data(257);
        let seq = seq(&Sum, &d);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 0,
                backend,
            };
            assert_eq!(par(&Sum, &d, cfg), seq, "backend {backend:?}");
        }
        assert_eq!(
            par(
                &FirstLast,
                &d,
                RunConfig {
                    threads: 3,
                    grain: 0,
                    backend: Backend::WorkStealing
                }
            ),
            d
        );
    }

    #[test]
    fn zero_and_one_element_inputs() {
        let empty: Vec<i64> = Vec::new();
        let cfg = RunConfig::work_stealing(4).with_grain(1);
        assert_eq!(par(&Sum, &empty, cfg), 0);
        assert_eq!(par(&Sum, &[42], cfg), 42);
    }

    /// Sum, but every chunk attempt on an unnamed thread panics. Scoped
    /// executor workers are unnamed while the calling (test) thread is
    /// named, so every chunk fails its parallel attempt and every retry
    /// — which runs on the calling thread — succeeds.
    struct WorkerShySum;
    impl DncTask for WorkerShySum {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            if std::thread::current().name().is_none() {
                panic!("no tasks on worker threads");
            }
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Sum that panics on any slice shorter than the whole input — the
    /// parallel plan always fails (attempt and retry see chunk-sized
    /// slices) while the sequential fallback succeeds.
    struct SmallSlicePanic {
        full_len: usize,
    }
    impl DncTask for SmallSlicePanic {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            assert!(chunk.len() >= self.full_len, "injected: chunk too small");
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// A task that panics on every slice, even the full input.
    struct AlwaysPanics;
    impl DncTask for AlwaysPanics {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, _chunk: &[i64]) -> i64 {
            panic!("broken task")
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    #[test]
    fn transient_worker_panics_recover_via_retry() {
        let d = data(1_000);
        let seq = seq(&Sum, &d);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 100,
                backend,
            };
            let out = Executor::new(cfg).run(&WorkerShySum, &d).unwrap();
            assert_eq!(out.value, seq, "backend {backend:?}");
            assert!(!out.degraded, "backend {backend:?} should recover in place");
            assert!(out.recovered_chunks > 0, "backend {backend:?}");
        }
    }

    #[test]
    fn persistent_worker_panics_degrade_to_sequential() {
        let d = data(300);
        let seq = seq(&Sum, &d);
        let task = SmallSlicePanic { full_len: d.len() };
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 100,
                backend,
            };
            let out = Executor::new(cfg).run(&task, &d).unwrap();
            assert_eq!(out.value, seq, "backend {backend:?}");
            assert!(out.degraded, "backend {backend:?} should have degraded");
        }
        // The infallible wrapper recovers transparently too.
        assert_eq!(
            par(&task, &d, RunConfig::work_stealing(4).with_grain(100)),
            seq
        );
    }

    #[test]
    fn broken_task_is_a_typed_error() {
        let d = data(300);
        let cfg = RunConfig::work_stealing(4).with_grain(100);
        let err = Executor::new(cfg).run(&AlwaysPanics, &d).unwrap_err();
        let RuntimeError::WorkerPanicked { payload, .. } = err;
        assert_eq!(payload, "broken task");
    }

    #[test]
    fn panicking_join_degrades_to_sequential() {
        /// Work succeeds but every join panics: the guarded reduction
        /// must hand over to the sequential fallback.
        struct JoinPanics;
        impl DncTask for JoinPanics {
            type Item = i64;
            type Acc = i64;
            fn identity(&self) -> i64 {
                0
            }
            fn work(&self, chunk: &[i64]) -> i64 {
                chunk.iter().sum()
            }
            fn join(&self, _l: i64, _r: i64) -> i64 {
                panic!("broken join")
            }
        }
        let d = data(300);
        let out = Executor::new(RunConfig::static_schedule(3).with_grain(50))
            .run(&JoinPanics, &d)
            .unwrap();
        assert_eq!(out.value, seq(&Sum, &d));
        assert!(out.degraded);
    }

    #[test]
    fn tree_reduction_retries_panicking_joins() {
        use std::sync::atomic::AtomicUsize;
        /// Concatenating join that panics on its first invocation only.
        struct FlakyJoin {
            calls: AtomicUsize,
        }
        impl DncTask for FlakyJoin {
            type Item = i64;
            type Acc = Vec<i64>;
            fn identity(&self) -> Vec<i64> {
                Vec::new()
            }
            fn work(&self, chunk: &[i64]) -> Vec<i64> {
                chunk.to_vec()
            }
            fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky join");
                }
                l.extend(r);
                l
            }
        }
        let d = data(1_000);
        let task = FlakyJoin {
            calls: AtomicUsize::new(0),
        };
        let partials: Vec<Vec<i64>> = d.chunks(173).map(|c| c.to_vec()).collect();
        let out = Executor::default().reduce_tree(&task, partials).unwrap();
        assert_eq!(out.value, d);
        assert_eq!(out.recovered_chunks, 1);
        assert!(!out.degraded);
    }

    #[test]
    fn map_only_recovers_from_worker_panics() {
        /// Count positives, but map panics on unnamed (worker) threads.
        struct WorkerShyCount;
        impl MapOnlyTask for WorkerShyCount {
            type Item = i64;
            type Mapped = bool;
            type Acc = usize;
            fn init(&self) -> usize {
                0
            }
            fn map(&self, item: &i64) -> bool {
                if std::thread::current().name().is_none() {
                    panic!("no maps on worker threads");
                }
                *item > 0
            }
            fn fold(&self, acc: usize, mapped: bool) -> usize {
                acc + usize::from(mapped)
            }
        }
        let d = data(1_000);
        let seq = map_only(&CountPositive, &d, 1);
        let out = Executor::new(RunConfig::default().with_threads(4))
            .run_map_only(&WorkerShyCount, &d)
            .unwrap();
        assert_eq!(out.value, seq);
        assert!(!out.degraded);
        assert_eq!(out.recovered_chunks, 4);
    }

    #[test]
    fn map_only_fold_panic_degrades_to_sequential() {
        use std::sync::atomic::AtomicUsize;
        /// Count positives, but the first fold call ever panics — the
        /// guarded fold phase fails, the sequential fallback succeeds.
        struct FlakyFold {
            calls: AtomicUsize,
        }
        impl MapOnlyTask for FlakyFold {
            type Item = i64;
            type Mapped = bool;
            type Acc = usize;
            fn init(&self) -> usize {
                0
            }
            fn map(&self, item: &i64) -> bool {
                *item > 0
            }
            fn fold(&self, acc: usize, mapped: bool) -> usize {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky fold");
                }
                acc + usize::from(mapped)
            }
        }
        let d = data(1_000);
        let seq = map_only(&CountPositive, &d, 1);
        let task = FlakyFold {
            calls: AtomicUsize::new(0),
        };
        let out = Executor::new(RunConfig::default().with_threads(4))
            .run_map_only(&task, &d)
            .unwrap();
        assert_eq!(out.value, seq);
        assert!(out.degraded);
    }

    #[test]
    fn worker_panics_and_fallback_are_traced() {
        use parsynt_trace::sinks::PhaseAggregator;
        let agg = PhaseAggregator::new();
        let _guard = trace::set_ambient(trace::Tracer::from_sink(agg.clone()));
        let d = data(300);
        let task = SmallSlicePanic { full_len: d.len() };
        let cfg = RunConfig::work_stealing(4).with_grain(100);
        let out = Executor::new(cfg).run(&task, &d).unwrap();
        assert!(out.degraded);
        let counters = agg.counters();
        // Chunk/join counters still reflect the attempted parallel plan.
        assert_eq!(counters["execute.chunks"], 3);
    }

    /// The pre-0.4 free functions remain faithful shims over the
    /// `Executor` machinery — deprecated, not removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_free_functions_are_faithful_shims() {
        let d = data(2_000);
        let cfg = RunConfig::work_stealing(3).with_grain(128);
        let exec = Executor::new(cfg);
        assert_eq!(run_sequential(&Sum, &d), exec.run_sequential(&Sum, &d));
        assert_eq!(
            run_parallel(&Sum, &d, cfg),
            exec.run(&Sum, &d).unwrap().value
        );
        assert_eq!(
            try_run_parallel(&Sum, &d, cfg).unwrap(),
            exec.run(&Sum, &d).unwrap()
        );
        assert_eq!(
            run_map_only(&CountPositive, &d, 3),
            exec.run_map_only(&CountPositive, &d).unwrap().value
        );
        assert_eq!(
            try_run_map_only(&CountPositive, &d, 3).unwrap().value,
            map_only(&CountPositive, &d, 3)
        );
        let partials: Vec<Vec<i64>> = d.chunks(173).map(|c| c.to_vec()).collect();
        assert_eq!(reduce_tree(&FirstLast, partials.clone()), d);
        assert_eq!(try_reduce_tree(&FirstLast, partials).unwrap().value, d);
    }
}
