//! Deterministic, seeded fault injection for the executors.
//!
//! Only compiled under the `fault-inject` cargo feature; production
//! builds carry none of this code. A [`FaultPlan`] decides, purely as a
//! function of `(seed, chunk, attempt)`, whether a worker should panic,
//! stall, or report its chunk result as poisoned — so every fault
//! scenario is reproducible from its seed alone, across thread
//! interleavings and repeat runs.

use std::time::Duration;

/// What a fault site does to the worker that hits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker (caught by the executor's isolation).
    Panic,
    /// Sleep before doing the work (exercises stragglers/stealing).
    Delay(Duration),
    /// Complete the work but mark the chunk result as poisoned — the
    /// executor must discard it and recover, exactly as it would for a
    /// result that failed validation.
    Poison,
}

/// A seeded, deterministic fault schedule.
///
/// Rates are evaluated independently per `(chunk, attempt)` site by
/// hashing it together with the seed; a site either always faults or
/// never does, for a fixed plan. By default faults fire only on the
/// first attempt (`attempt == 0`), so a single retry recovers;
/// [`FaultPlan::persistent`] makes them fire on every attempt, forcing
/// the sequential fallback.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    poison_rate: f64,
    delay_rate: f64,
    delay: Duration,
    persistent: bool,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are configured.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            poison_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            persistent: false,
        }
    }

    /// Fraction of fault sites that panic.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of fault sites that poison their chunk result.
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        self.poison_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of fault sites that sleep for `delay` before working.
    pub fn with_delay(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Make faults fire on retries too (default: first attempt only),
    /// which drives the executor all the way to its sequential fallback.
    pub fn persistent(mut self, yes: bool) -> Self {
        self.persistent = yes;
        self
    }

    /// The fault (if any) scheduled at `(chunk, attempt)`.
    pub fn decide(&self, chunk: usize, attempt: u32) -> Option<FaultKind> {
        if !self.persistent && attempt > 0 {
            return None;
        }
        // The site key ignores the attempt: a faulty site stays faulty
        // across retries of a persistent plan.
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(chunk as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let u = unit_interval(splitmix64(key));
        if u < self.panic_rate {
            Some(FaultKind::Panic)
        } else if u < self.panic_rate + self.poison_rate {
            Some(FaultKind::Poison)
        } else if u < self.panic_rate + self.poison_rate + self.delay_rate {
            Some(FaultKind::Delay(self.delay))
        } else {
            None
        }
    }

    /// Execute the fault scheduled at `(chunk, attempt)`, if any:
    /// panics for [`FaultKind::Panic`], sleeps for [`FaultKind::Delay`],
    /// and returns `true` when the chunk result must be treated as
    /// poisoned.
    pub fn apply(&self, chunk: usize, attempt: u32) -> bool {
        match self.decide(chunk, attempt) {
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic at chunk {chunk} attempt {attempt}")
            }
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(FaultKind::Poison) => true,
            None => false,
        }
    }
}

/// SplitMix64 finalizer — a full-avalanche hash, so consecutive chunk
/// indices land uniformly in `[0, 2^64)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` using the top 53 bits (exact in an `f64`).
fn unit_interval(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::seeded(42)
            .with_panic_rate(0.3)
            .with_poison_rate(0.2);
        let a: Vec<_> = (0..64).map(|c| plan.decide(c, 0)).collect();
        let b: Vec<_> = (0..64).map(|c| plan.decide(c, 0)).collect();
        assert_eq!(a, b);
        // A different seed produces a different schedule (overwhelmingly
        // likely over 64 sites at these rates).
        let other = FaultPlan::seeded(43)
            .with_panic_rate(0.3)
            .with_poison_rate(0.2);
        let c: Vec<_> = (0..64).map(|ch| other.decide(ch, 0)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn transient_faults_never_fire_on_retry() {
        let plan = FaultPlan::seeded(7).with_panic_rate(1.0);
        assert_eq!(plan.decide(0, 0), Some(FaultKind::Panic));
        assert_eq!(plan.decide(0, 1), None);
    }

    #[test]
    fn persistent_faults_fire_on_every_attempt() {
        let plan = FaultPlan::seeded(7).with_panic_rate(1.0).persistent(true);
        for attempt in 0..3 {
            assert_eq!(plan.decide(5, attempt), Some(FaultKind::Panic));
        }
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let plan = FaultPlan::seeded(1)
            .with_panic_rate(0.25)
            .with_poison_rate(0.25)
            .with_delay(0.25, Duration::from_millis(1));
        let mut seen = [0usize; 4];
        for chunk in 0..4000 {
            match plan.decide(chunk, 0) {
                Some(FaultKind::Panic) => seen[0] += 1,
                Some(FaultKind::Poison) => seen[1] += 1,
                Some(FaultKind::Delay(_)) => seen[2] += 1,
                None => seen[3] += 1,
            }
        }
        for (i, count) in seen.iter().enumerate() {
            assert!(
                (600..=1400).contains(count),
                "bucket {i} badly skewed: {seen:?}"
            );
        }
    }

    #[test]
    fn apply_reports_poison_and_swallows_delay() {
        let plan = FaultPlan::seeded(9).with_poison_rate(1.0);
        assert!(plan.apply(3, 0));
        let quiet = FaultPlan::seeded(9);
        assert!(!quiet.apply(3, 0));
    }
}
