//! # parsynt-runtime
//!
//! A divide-and-conquer parallel execution runtime for the skeletons
//! ParSynt synthesizes: the programmer (or the synthesizer) supplies the
//! *split* (implicitly: inverse of concatenation over the outer
//! dimension), the *work* (the sequential loop on a chunk) and the
//! *join* (the synthesized `⊙`), and the runtime schedules chunks over
//! OS threads.
//!
//! Two scheduling backends reproduce the paper's §9 comparison:
//!
//! * [`Backend::WorkStealing`] — TBB-flavoured: the input is divided
//!   into grain-sized tasks, distributed over per-worker deques, and
//!   idle workers steal; partial results join in chunk order (joins need
//!   not be commutative).
//! * [`Backend::Static`] — OpenMP-flavoured static scheduling: exactly
//!   one contiguous chunk per thread.
//!
//! Since 0.4.0 every execution mode is a method on one entry point,
//! [`Executor`]:
//!
//! * [`Executor::run`] — batch divide-and-conquer over a finished slice;
//! * [`Executor::run_map_only`] — the Prop. 4.3 case where the inner
//!   loop nest parallelizes but the outer fold stays sequential
//!   (balanced parentheses, §2.1);
//! * [`Executor::run_stream`] / [`Executor::stream`] — online
//!   aggregation over chunked or unbounded input, emitting progressive
//!   partial-prefix snapshots (the [`stream`]-module; sources include
//!   [`stream::ReaderChunks`] and out-of-core [`stream::PagedFileChunks`]).
//!
//! The nine pre-0.4 free functions (`run_parallel`, `try_run_parallel`,
//! …) remain as deprecated shims over the same machinery.
//!
//! All executors are panic-isolated: a worker panic is caught, its
//! chunk retried once, and persistent failures degrade the run (or, when
//! streaming, that stream chunk only) to sequential re-execution (see
//! [`RunOutcome`]). The `fault-inject` cargo feature adds a seeded,
//! deterministic fault-injection harness ([`faults`]-module) for
//! exercising those recovery paths; [`Executor::with_faults`] applies a
//! plan to every run.

#![warn(clippy::unwrap_used)]

pub mod error;
pub mod executor;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod stream;
pub mod task;

pub use error::RuntimeError;
#[allow(deprecated)]
pub use executor::{
    reduce_tree, run_map_only, run_parallel, run_sequential, try_reduce_tree, try_run_map_only,
    try_run_parallel,
};
#[allow(deprecated)]
#[cfg(feature = "fault-inject")]
pub use executor::{run_map_only_with_faults, run_parallel_with_faults};
pub use executor::{Backend, Executor, RunConfig, RunOutcome};
#[cfg(feature = "fault-inject")]
pub use faults::{FaultKind, FaultPlan};
#[cfg(unix)]
pub use stream::{write_i64_records, PagedFileChunks};
pub use stream::{ReaderChunks, StreamError, StreamOutcome, StreamSession, StreamSnapshot};
pub use task::{DncTask, MapOnlyTask};
